//! Fig. 10 — distribution of prediction errors for UIPCC, PMF and AMF.
//!
//! "AMF achieves denser distribution around the center 0, while UIPCC and
//! PMF have flat error distributions."

use crate::methods::Approach;
use crate::Scale;
use qos_dataset::sampling::split_matrix;
use qos_dataset::Attribute;
use qos_metrics::ErrorDistribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One approach's signed-error distribution.
#[derive(Debug, Clone)]
pub struct ApproachDistribution {
    /// The approach.
    pub approach: Approach,
    /// Error distribution over the plotted interval.
    pub distribution: ErrorDistribution,
}

/// Fig. 10 result for one attribute.
#[derive(Debug, Clone)]
pub struct Fig10Result {
    /// Attribute short name.
    pub attribute: String,
    /// Density used (the paper plots the 10% setting).
    pub density: f64,
    /// UIPCC, PMF, AMF distributions in paper legend order.
    pub distributions: Vec<ApproachDistribution>,
}

/// The paper plots errors within roughly ±3 s for RT.
pub const ERROR_LIMIT: f64 = 3.0;
/// Band used for the central-mass comparison.
pub const CENTER_BAND: f64 = 0.5;

/// Runs the experiment at density 10% on the slice-1 RT matrix.
pub fn run(scale: &Scale) -> Fig10Result {
    run_with(scale, Attribute::ResponseTime, 0.10)
}

/// Parameterized variant.
pub fn run_with(scale: &Scale, attr: Attribute, density: f64) -> Fig10Result {
    let dataset = super::dataset_for(scale);
    let interval = dataset.config().slice_interval_secs;
    let matrix = dataset.slice_matrix(attr, 0);
    let mut rng = StdRng::seed_from_u64(scale.seed);
    let split = split_matrix(&matrix, density, &mut rng);
    let actual = split.test_actuals();

    let distributions = [Approach::Uipcc, Approach::Pmf, Approach::Amf]
        .into_iter()
        .map(|approach| {
            let trained = approach.train(&split, attr, scale.seed, 0, interval);
            let predicted = trained.predict_split(&split);
            let distribution =
                ErrorDistribution::evaluate(&actual, &predicted, ERROR_LIMIT, 60, CENTER_BAND)
                    .expect("non-empty test set");
            ApproachDistribution {
                approach,
                distribution,
            }
        })
        .collect();

    Fig10Result {
        attribute: attr.short_name().to_string(),
        density,
        distributions,
    }
}

impl Fig10Result {
    /// Central mass (fraction of errors within ±[`CENTER_BAND`]) per
    /// approach, in legend order.
    pub fn central_masses(&self) -> Vec<(Approach, f64)> {
        self.distributions
            .iter()
            .map(|d| (d.approach, d.distribution.central_mass()))
            .collect()
    }

    /// Renders the three distributions as a multi-column series.
    pub fn render(&self) -> String {
        let mut out = format!(
            "# Fig 10 ({}, density {:.0}%): prediction-error distributions\n",
            self.attribute,
            self.density * 100.0
        );
        for d in &self.distributions {
            out.push_str(&format!(
                "# {} central mass (|err| <= {CENTER_BAND}): {:.3}, bias {:.3}\n",
                d.approach.name(),
                d.distribution.central_mass(),
                d.distribution.mean()
            ));
        }
        let x: Vec<f64> = self.distributions[0]
            .distribution
            .series()
            .iter()
            .map(|&(x, _)| x)
            .collect();
        let series: Vec<(&str, Vec<f64>)> = self
            .distributions
            .iter()
            .map(|d| {
                (
                    d.approach.name(),
                    d.distribution.series().iter().map(|&(_, y)| y).collect(),
                )
            })
            .collect();
        out.push_str(&crate::report::render_multi_series("error", &x, &series));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Fig10Result {
        // Large enough that AMF's accuracy advantage is not swamped by
        // initialization noise — at e.g. 24x80 the central-mass ordering
        // depends on the RNG stream.
        run(&Scale {
            users: 60,
            services: 160,
            time_slices: 2,
            repetitions: 1,
            seed: 5,
        })
    }

    #[test]
    fn three_approaches_in_order() {
        let r = result();
        let names: Vec<&str> = r.distributions.iter().map(|d| d.approach.name()).collect();
        assert_eq!(names, vec!["UIPCC", "PMF", "AMF"]);
    }

    #[test]
    fn amf_has_densest_center() {
        // The paper's visual claim, quantified: AMF's central mass is at
        // least as large as both baselines'.
        let r = result();
        let masses = r.central_masses();
        let amf = masses[2].1;
        assert!(
            amf >= masses[0].1 * 0.95,
            "AMF {} vs UIPCC {}",
            amf,
            masses[0].1
        );
        assert!(
            amf >= masses[1].1 * 0.95,
            "AMF {} vs PMF {}",
            amf,
            masses[1].1
        );
    }

    #[test]
    fn render_mentions_every_approach() {
        let text = result().render();
        for needle in ["UIPCC", "PMF", "AMF", "central mass"] {
            assert!(text.contains(needle));
        }
    }
}
