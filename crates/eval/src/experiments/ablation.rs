//! Ablations beyond the paper's figures: isolate the contribution of the
//! adaptive weights (under churn) and of the relative loss.
//!
//! DESIGN.md ids E-ABL1 (adaptive weights) and E-ABL2 (loss). The paper
//! motivates both mechanisms but only ablates the transformation (Fig. 11);
//! these experiments complete the ablation matrix.

use crate::experiments::fig14::{self, ChurnOptions, Fig14Result};
use crate::methods::Approach;
use crate::Scale;
use amf_core::AmfConfig;
use qos_dataset::Attribute;
use qos_metrics::AccuracySummary;

/// E-ABL1: the same churn run with and without adaptive weights.
#[derive(Debug, Clone)]
pub struct WeightsAblation {
    /// Churn run with adaptive weights (the paper's AMF).
    pub adaptive: Fig14Result,
    /// Churn run with fixed (full) step weights.
    pub fixed: Fig14Result,
}

/// Runs the adaptive-weights ablation.
pub fn run_weights(scale: &Scale) -> WeightsAblation {
    let adaptive = fig14::run_with(
        scale,
        ChurnOptions {
            amf: AmfConfig::response_time().with_seed(scale.seed),
            ..Default::default()
        },
    );
    let fixed = fig14::run_with(
        scale,
        ChurnOptions {
            amf: AmfConfig {
                adaptive_weights: false,
                ..AmfConfig::response_time().with_seed(scale.seed)
            },
            ..Default::default()
        },
    );
    WeightsAblation { adaptive, fixed }
}

impl WeightsAblation {
    /// Churn disturbance ratio (worst post-join existing MRE over pre-join
    /// existing MRE) for both variants: `(adaptive, fixed)`. Lower is better.
    pub fn disturbance(&self) -> (f64, f64) {
        (
            self.adaptive.existing_worst_after_join() / self.adaptive.existing_before_join(),
            self.fixed.existing_worst_after_join() / self.fixed.existing_before_join(),
        )
    }

    /// Renders both runs plus the disturbance summary.
    pub fn render(&self) -> String {
        let (a, f) = self.disturbance();
        let mut out = String::from("# Ablation E-ABL1: adaptive weights under churn\n");
        out.push_str(&format!(
            "# disturbance ratio (worst-after/before): adaptive {a:.3}, fixed {f:.3}\n\n"
        ));
        out.push_str("## adaptive weights (paper AMF)\n");
        out.push_str(&self.adaptive.render());
        out.push_str("\n## fixed weights\n");
        out.push_str(&self.fixed.render());
        out
    }
}

/// One cell of the 2×2 loss × transform ablation grid.
#[derive(Debug, Clone)]
pub struct LossCell {
    /// Attribute short name.
    pub attribute: String,
    /// Loss variant ("relative" / "squared").
    pub loss: &'static str,
    /// Transform variant ("boxcox" / "linear").
    pub transform: &'static str,
    /// Measured accuracy.
    pub summary: AccuracySummary,
}

/// E-ABL2: loss function × transform interaction at one density.
///
/// The paper motivates the relative loss in isolation; this grid shows the
/// interaction: with a good Box–Cox `α` the transformed domain already
/// equalizes relative errors, so the two losses nearly tie — the loss choice
/// matters most when the transform is disabled (Limitation 1 territory).
#[derive(Debug, Clone)]
pub struct LossAblation {
    /// Density used.
    pub density: f64,
    /// All grid cells (2 losses × 2 transforms × attributes).
    pub cells: Vec<LossCell>,
}

/// Runs the loss × transform grid at density 10%.
pub fn run_loss(scale: &Scale) -> LossAblation {
    use amf_core::LossKind;
    use qos_dataset::sampling::split_matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let density = 0.10;
    let dataset = super::dataset_for(scale);
    let mut cells = Vec::new();
    for attr in [Attribute::ResponseTime, Attribute::Throughput] {
        let matrix = dataset.slice_matrix(attr, 0);
        let mut rng = StdRng::seed_from_u64(scale.seed);
        let split = split_matrix(&matrix, density, &mut rng);
        let actual = split.test_actuals();
        let base = Approach::Amf
            .amf_config(attr, scale.seed)
            .expect("AMF has a config");
        for (loss_name, loss) in [
            ("relative", LossKind::Relative),
            ("squared", LossKind::Squared),
        ] {
            for (transform_name, alpha) in [("boxcox", base.alpha), ("linear", 1.0)] {
                let config = AmfConfig {
                    loss,
                    alpha,
                    ..base
                };
                let mut trainer = amf_core::AmfTrainer::new(config).expect("valid config");
                crate::methods::train_amf_on_split(&mut trainer, &split, 0, 900, scale.seed);
                let fallback = split.train.mean().unwrap_or(1.0);
                let predicted: Vec<f64> = split
                    .test
                    .iter()
                    .map(|e| trainer.model().predict_or(e.row, e.col, fallback))
                    .collect();
                cells.push(LossCell {
                    attribute: attr.short_name().to_string(),
                    loss: loss_name,
                    transform: transform_name,
                    summary: AccuracySummary::evaluate(&actual, &predicted)
                        .expect("non-empty test set"),
                });
            }
        }
    }
    LossAblation { density, cells }
}

impl LossAblation {
    /// The cell for `(attribute, loss, transform)`, if present.
    pub fn cell(&self, attribute: &str, loss: &str, transform: &str) -> Option<&LossCell> {
        self.cells
            .iter()
            .find(|c| c.attribute == attribute && c.loss == loss && c.transform == transform)
    }

    /// Renders the grid.
    pub fn render(&self) -> String {
        let mut out = format!(
            "# Ablation E-ABL2: loss x transform grid (density {:.0}%)\n",
            self.density * 100.0
        );
        let mut table = crate::report::TextTable::new(vec![
            "attr".into(),
            "loss".into(),
            "transform".into(),
            "MAE".into(),
            "MRE".into(),
            "NPRE".into(),
        ]);
        for c in &self.cells {
            table.row(vec![
                c.attribute.clone(),
                c.loss.to_string(),
                c.transform.to_string(),
                format!("{:.3}", c.summary.mae),
                format!("{:.3}", c.summary.mre),
                format!("{:.3}", c.summary.npre),
            ]);
        }
        out.push_str(&table.render());
        out
    }
}

/// E-ABL3: hand-tuned α (the paper's −0.007) vs automatically estimated α
/// (Box–Cox profile MLE on the observed training values) vs no transform.
///
/// The paper tunes α by hand; this experiment shows the MLE estimator from
/// `qos_transform::estimate` recovers a value that performs on par, making
/// the pipeline usable on QoS attributes nobody hand-tuned.
#[derive(Debug, Clone)]
pub struct AlphaAblation {
    /// Density used.
    pub density: f64,
    /// The α chosen by the MLE estimator on the training data.
    pub estimated_alpha: f64,
    /// Accuracy with the paper's hand-tuned α.
    pub hand_tuned: AccuracySummary,
    /// Accuracy with the estimated α.
    pub estimated: AccuracySummary,
    /// Accuracy with α = 1 (no transform).
    pub linear: AccuracySummary,
}

/// Runs the α-estimation ablation on response time at density 10%.
pub fn run_alpha(scale: &Scale) -> AlphaAblation {
    use qos_dataset::sampling::split_matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let density = 0.10;
    let dataset = super::dataset_for(scale);
    let matrix = dataset.slice_matrix(Attribute::ResponseTime, 0);
    let mut rng = StdRng::seed_from_u64(scale.seed);
    let split = split_matrix(&matrix, density, &mut rng);
    let actual = split.test_actuals();

    // Estimate alpha from the *training* values only (no test leakage).
    let observed = split.train.observed_values();
    let estimated_alpha = qos_transform::estimate::estimate_mle(&observed, -1.0, 1.0, 81)
        .expect("training data is non-empty and positive");

    let evaluate = |alpha: f64| {
        let config = AmfConfig {
            alpha,
            ..AmfConfig::response_time().with_seed(scale.seed)
        };
        let mut trainer = amf_core::AmfTrainer::new(config).expect("valid config");
        crate::methods::train_amf_on_split(&mut trainer, &split, 0, 900, scale.seed);
        let fallback = split.train.mean().unwrap_or(1.0);
        let predicted: Vec<f64> = split
            .test
            .iter()
            .map(|e| trainer.model().predict_or(e.row, e.col, fallback))
            .collect();
        AccuracySummary::evaluate(&actual, &predicted).expect("non-empty test set")
    };

    AlphaAblation {
        density,
        estimated_alpha,
        hand_tuned: evaluate(-0.007),
        estimated: evaluate(estimated_alpha),
        linear: evaluate(1.0),
    }
}

impl AlphaAblation {
    /// Renders the three-way comparison.
    pub fn render(&self) -> String {
        let mut out = format!(
            "# Ablation E-ABL3: alpha selection (density {:.0}%)\n# estimated alpha (profile MLE): {:.4}\n",
            self.density * 100.0,
            self.estimated_alpha
        );
        let mut table = crate::report::TextTable::new(vec![
            "alpha".into(),
            "MAE".into(),
            "MRE".into(),
            "NPRE".into(),
        ]);
        for (label, s) in [
            ("-0.007 (paper)".to_string(), self.hand_tuned),
            (format!("{:.4} (MLE)", self.estimated_alpha), self.estimated),
            ("1.0 (none)".to_string(), self.linear),
        ] {
            table.row(vec![
                label,
                format!("{:.3}", s.mae),
                format!("{:.3}", s.mre),
                format!("{:.3}", s.npre),
            ]);
        }
        out.push_str(&table.render());
        out
    }
}

/// E-ABL4: sampling protocol — uniform cell sampling (the protocol used in
/// every experiment, matching the paper) vs per-row sampling ("each user
/// invokes exactly d·M services"). Checks that the headline conclusion is
/// robust to how the sparse matrix is simulated.
#[derive(Debug, Clone)]
pub struct SamplingAblation {
    /// Density used.
    pub density: f64,
    /// AMF accuracy under uniform cell sampling.
    pub uniform: AccuracySummary,
    /// AMF accuracy under per-row sampling.
    pub per_row: AccuracySummary,
}

/// Runs the sampling-protocol ablation on response time at density 10%.
pub fn run_sampling(scale: &Scale) -> SamplingAblation {
    use qos_dataset::sampling::{split_matrix, split_matrix_per_row};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let density = 0.10;
    let dataset = super::dataset_for(scale);
    let matrix = dataset.slice_matrix(Attribute::ResponseTime, 0);

    let evaluate = |split: &qos_dataset::MatrixSplit| {
        let mut trainer =
            amf_core::AmfTrainer::new(AmfConfig::response_time().with_seed(scale.seed))
                .expect("valid config");
        crate::methods::train_amf_on_split(&mut trainer, split, 0, 900, scale.seed);
        let fallback = split.train.mean().unwrap_or(1.0);
        let actual = split.test_actuals();
        let predicted: Vec<f64> = split
            .test
            .iter()
            .map(|e| trainer.model().predict_or(e.row, e.col, fallback))
            .collect();
        AccuracySummary::evaluate(&actual, &predicted).expect("non-empty test set")
    };

    let mut rng = StdRng::seed_from_u64(scale.seed);
    let uniform = evaluate(&split_matrix(&matrix, density, &mut rng));
    let mut rng = StdRng::seed_from_u64(scale.seed);
    let per_row = evaluate(&split_matrix_per_row(&matrix, density, &mut rng));

    SamplingAblation {
        density,
        uniform,
        per_row,
    }
}

impl SamplingAblation {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut out = format!(
            "# Ablation E-ABL4: sampling protocol (density {:.0}%, RT)\n",
            self.density * 100.0
        );
        let mut table = crate::report::TextTable::new(vec![
            "protocol".into(),
            "MAE".into(),
            "MRE".into(),
            "NPRE".into(),
        ]);
        for (name, s) in [("uniform-cells", self.uniform), ("per-row", self.per_row)] {
            table.row(vec![
                name.into(),
                format!("{:.3}", s.mae),
                format!("{:.3}", s.mre),
                format!("{:.3}", s.npre),
            ]);
        }
        out.push_str(&table.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale() -> Scale {
        Scale {
            users: 24,
            services: 80,
            time_slices: 2,
            repetitions: 1,
            seed: 17,
        }
    }

    #[test]
    fn weights_ablation_completes_both_runs() {
        let ab = run_weights(&scale());
        assert_eq!(ab.adaptive.points.len(), ab.fixed.points.len());
        let (a, f) = ab.disturbance();
        assert!(a.is_finite() && f.is_finite());
        assert!(a > 0.0 && f > 0.0);
    }

    #[test]
    fn weights_ablation_renders() {
        let text = run_weights(&scale()).render();
        assert!(text.contains("adaptive"));
        assert!(text.contains("fixed"));
        assert!(text.contains("disturbance ratio"));
    }

    #[test]
    fn loss_grid_is_complete_and_relative_never_loses_badly() {
        let ab = run_loss(&scale());
        assert_eq!(ab.cells.len(), 8); // 2 losses x 2 transforms x 2 attrs
        for attr in ["RT", "TP"] {
            for transform in ["boxcox", "linear"] {
                let rel = ab.cell(attr, "relative", transform).unwrap().summary;
                let sq = ab.cell(attr, "squared", transform).unwrap().summary;
                // At the paper's operating point (Box–Cox active) the two
                // losses nearly tie. The linear cells are the deliberately
                // mis-tuned configuration where both losses are degenerate
                // (MRE in the 5–8 range) and their gap is initialization
                // noise, so only a loose sanity factor applies there.
                let slack = if transform == "boxcox" { 1.15 } else { 1.5 };
                assert!(
                    rel.mre <= sq.mre * slack,
                    "{attr}/{transform}: relative MRE {} vs squared {}",
                    rel.mre,
                    sq.mre
                );
            }
        }
    }

    #[test]
    fn boxcox_dominates_linear_within_each_loss() {
        // The grid's headline: the transform is the bigger lever.
        let ab = run_loss(&scale());
        for attr in ["RT", "TP"] {
            for loss in ["relative", "squared"] {
                let boxcox = ab.cell(attr, loss, "boxcox").unwrap().summary;
                let linear = ab.cell(attr, loss, "linear").unwrap().summary;
                assert!(
                    boxcox.mre <= linear.mre * 1.05,
                    "{attr}/{loss}: boxcox MRE {} vs linear {}",
                    boxcox.mre,
                    linear.mre
                );
            }
        }
    }

    #[test]
    fn loss_ablation_renders() {
        let text = run_loss(&scale()).render();
        assert!(text.contains("relative"));
        assert!(text.contains("squared"));
        assert!(text.contains("boxcox"));
        assert!(text.contains("NPRE"));
    }

    #[test]
    fn estimated_alpha_is_competitive() {
        // The MLE alpha should be negative-ish (log-normal-like data) and
        // perform at least as well as no transform, within a margin of the
        // hand-tuned value.
        let ab = run_alpha(&Scale {
            users: 60,
            services: 150,
            time_slices: 2,
            repetitions: 1,
            seed: 23,
        });
        assert!(
            ab.estimated_alpha < 0.5,
            "estimated alpha {} should reflect skewed data",
            ab.estimated_alpha
        );
        assert!(
            ab.estimated.mre <= ab.linear.mre * 1.02,
            "estimated-alpha MRE {} should beat no-transform {}",
            ab.estimated.mre,
            ab.linear.mre
        );
        assert!(
            ab.estimated.mre <= ab.hand_tuned.mre * 1.25,
            "estimated-alpha MRE {} too far from hand-tuned {}",
            ab.estimated.mre,
            ab.hand_tuned.mre
        );
    }

    #[test]
    fn alpha_ablation_renders() {
        let text = run_alpha(&scale()).render();
        assert!(text.contains("E-ABL3"));
        assert!(text.contains("MLE"));
        assert!(text.contains("(paper)"));
    }

    #[test]
    fn sampling_protocols_agree_on_the_headline() {
        // AMF accuracy should be in the same band regardless of how the
        // sparse observation pattern is simulated.
        let ab = run_sampling(&scale());
        assert!(ab.uniform.mre.is_finite() && ab.per_row.mre.is_finite());
        let ratio = ab.uniform.mre / ab.per_row.mre;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "protocols disagree: uniform {} vs per-row {}",
            ab.uniform.mre,
            ab.per_row.mre
        );
    }

    #[test]
    fn sampling_ablation_renders() {
        let text = run_sampling(&scale()).render();
        assert!(text.contains("uniform-cells"));
        assert!(text.contains("per-row"));
    }
}
