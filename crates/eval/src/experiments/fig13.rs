//! Fig. 13 — efficiency: convergence time per time slice for UIPCC, PMF and
//! AMF.
//!
//! UIPCC and PMF retrain from scratch every slice; AMF warm-starts from the
//! previous slice's model and only needs incremental updates — "despite the
//! long convergence time for the first time slice, our AMF approach becomes
//! quite fast in the following time slices".

use crate::methods::{replay_options_for, train_amf_on_split, Approach};
use crate::report::render_multi_series;
use crate::Scale;
use amf_core::{AmfConfig, AmfTrainer};
use qos_dataset::sampling::split_matrix;
use qos_dataset::Attribute;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Per-slice timing of the three approaches.
#[derive(Debug, Clone)]
pub struct Fig13Result {
    /// UIPCC full-retrain time per slice.
    pub uipcc: Vec<Duration>,
    /// PMF full-retrain time per slice.
    pub pmf: Vec<Duration>,
    /// AMF incremental-update time per slice.
    pub amf: Vec<Duration>,
    /// AMF replay iterations per slice (a hardware-independent proxy for the
    /// same shape).
    pub amf_iterations: Vec<usize>,
    /// Density used.
    pub density: f64,
}

/// Runs the timing comparison at density 10% over the scale's slices.
pub fn run(scale: &Scale) -> Fig13Result {
    run_with(scale, 0.10, scale.time_slices)
}

/// Parameterized variant.
pub fn run_with(scale: &Scale, density: f64, slices: usize) -> Fig13Result {
    let dataset = super::dataset_for(scale);
    let interval = dataset.config().slice_interval_secs;
    let slices = slices.min(dataset.time_slices());
    let attr = Attribute::ResponseTime;

    let mut uipcc = Vec::with_capacity(slices);
    let mut pmf = Vec::with_capacity(slices);
    let mut amf = Vec::with_capacity(slices);
    let mut amf_iterations = Vec::with_capacity(slices);

    // One persistent AMF trainer across slices — the online model.
    let mut trainer = AmfTrainer::new(AmfConfig::response_time().with_seed(scale.seed))
        .expect("paper config is valid");

    for slice in 0..slices {
        let matrix = dataset.slice_matrix(attr, slice);
        let mut rng = StdRng::seed_from_u64(scale.seed.wrapping_add(slice as u64));
        let split = split_matrix(&matrix, density, &mut rng);
        let slice_start = dataset.slice_start_time(slice);

        // Offline baselines: full retrain per slice.
        let trained = Approach::Uipcc.train(&split, attr, scale.seed, slice_start, interval);
        uipcc.push(trained.train_time());
        let trained = Approach::Pmf.train(&split, attr, scale.seed, slice_start, interval);
        pmf.push(trained.train_time());

        // AMF: incremental update of the persistent model.
        let start = std::time::Instant::now();
        let report = train_amf_on_split(&mut trainer, &split, slice_start, interval, scale.seed);
        amf.push(start.elapsed());
        amf_iterations.push(report.iterations);
        let _ = replay_options_for(split.train.nnz()); // documented linkage
    }

    Fig13Result {
        uipcc,
        pmf,
        amf,
        amf_iterations,
        density,
    }
}

impl Fig13Result {
    /// Mean AMF time over slices after the first (the "steady online" cost).
    pub fn amf_steady_mean(&self) -> Duration {
        if self.amf.len() <= 1 {
            return self.amf.first().copied().unwrap_or_default();
        }
        let total: Duration = self.amf[1..].iter().sum();
        total / (self.amf.len() - 1) as u32
    }

    /// Renders the three timing curves (seconds) plus AMF iterations.
    pub fn render(&self) -> String {
        let x: Vec<f64> = (0..self.uipcc.len()).map(|t| t as f64).collect();
        let secs = |v: &[Duration]| -> Vec<f64> { v.iter().map(Duration::as_secs_f64).collect() };
        let mut out = format!(
            "# Fig 13 (density {:.0}%): convergence time per time slice (seconds)\n",
            self.density * 100.0
        );
        out.push_str(&render_multi_series(
            "time_slice",
            &x,
            &[
                ("UIPCC", secs(&self.uipcc)),
                ("PMF", secs(&self.pmf)),
                ("AMF", secs(&self.amf)),
                (
                    "AMF_iterations",
                    self.amf_iterations.iter().map(|&i| i as f64).collect(),
                ),
            ],
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Fig13Result {
        run_with(
            &Scale {
                users: 60,
                services: 150,
                time_slices: 4,
                repetitions: 1,
                seed: 11,
            },
            0.15,
            4,
        )
    }

    #[test]
    fn one_measurement_per_slice() {
        let r = result();
        assert_eq!(r.uipcc.len(), 4);
        assert_eq!(r.pmf.len(), 4);
        assert_eq!(r.amf.len(), 4);
        assert_eq!(r.amf_iterations.len(), 4);
        assert!(r.uipcc.iter().all(|d| *d > Duration::ZERO));
        assert!(r.pmf.iter().all(|d| *d > Duration::ZERO));
    }

    #[test]
    fn amf_warm_start_needs_fewer_iterations() {
        // Hardware-independent shape check: later slices replay less than
        // the cold-start slice.
        let r = result();
        let first = r.amf_iterations[0];
        let later_max = *r.amf_iterations[1..].iter().max().unwrap();
        assert!(
            later_max <= first,
            "warm-start iterations {later_max} exceed cold start {first}"
        );
    }

    #[test]
    fn render_has_all_curves() {
        let text = result().render();
        for needle in ["UIPCC", "PMF", "AMF", "time_slice"] {
            assert!(text.contains(needle));
        }
    }

    #[test]
    fn steady_mean_defined() {
        let r = result();
        assert!(r.amf_steady_mean() > Duration::ZERO);
    }
}
