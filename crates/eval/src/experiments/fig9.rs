//! Fig. 9 — sorted normalized singular values of the user–service matrices.
//!
//! "Except the first few largest singular values, most of them are close
//! to 0" — the low-rank evidence justifying matrix factorization.

use crate::report::render_multi_series;
use crate::Scale;
use qos_dataset::Attribute;
use qos_linalg::svd::normalized_singular_values;
use serde::{Deserialize, Serialize};

/// Fig. 9 data: normalized singular values per attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Result {
    /// Normalized singular values of the RT matrix (descending; largest = 1).
    pub response_time: Vec<f64>,
    /// Normalized singular values of the TP matrix.
    pub throughput: Vec<f64>,
    /// How many values are plotted (the paper shows the top 50).
    pub shown: usize,
}

/// Runs the experiment on the slice-1 matrices, keeping the top 50 values as
/// the paper plots.
pub fn run(scale: &Scale) -> Fig9Result {
    let dataset = super::dataset_for(scale);
    let mut rt = normalized_singular_values(&dataset.slice_matrix(Attribute::ResponseTime, 0))
        .expect("non-degenerate RT matrix");
    let mut tp = normalized_singular_values(&dataset.slice_matrix(Attribute::Throughput, 0))
        .expect("non-degenerate TP matrix");
    let shown = 50.min(rt.len()).min(tp.len());
    rt.truncate(shown);
    tp.truncate(shown);
    Fig9Result {
        response_time: rt,
        throughput: tp,
        shown,
    }
}

impl Fig9Result {
    /// Fraction of squared "energy" captured by the top `k` singular values
    /// of the RT matrix — a scalar summary of Fig. 9's message.
    pub fn rt_energy_top(&self, k: usize) -> f64 {
        let total: f64 = self.response_time.iter().map(|v| v * v).sum();
        let top: f64 = self.response_time.iter().take(k).map(|v| v * v).sum();
        if total == 0.0 {
            0.0
        } else {
            top / total
        }
    }

    /// Renders the two curves in the paper's axes.
    pub fn render(&self) -> String {
        let x: Vec<f64> = (1..=self.shown).map(|i| i as f64).collect();
        let mut out = String::from("# Fig 9: sorted normalized singular values\n");
        out.push_str(&render_multi_series(
            "singular_value_id",
            &x,
            &[
                ("response_time", self.response_time.clone()),
                ("throughput", self.throughput.clone()),
            ],
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Fig9Result {
        run(&Scale::small())
    }

    #[test]
    fn values_normalized_and_descending() {
        let r = result();
        for sv in [&r.response_time, &r.throughput] {
            assert!((sv[0] - 1.0).abs() < 1e-9, "largest must be 1");
            assert!(sv.windows(2).all(|w| w[0] >= w[1] - 1e-12));
            assert!(sv.iter().all(|&v| (0.0..=1.0 + 1e-9).contains(&v)));
        }
    }

    #[test]
    fn tail_is_near_zero() {
        // The paper's observation: beyond the first few, values are close
        // to 0.
        let r = result();
        let tail_start = 15.min(r.response_time.len() - 1);
        assert!(
            r.response_time[tail_start] < 0.2,
            "RT singular value {} at rank {tail_start} too large",
            r.response_time[tail_start]
        );
        assert!(r.throughput[tail_start] < 0.2);
    }

    #[test]
    fn top_energy_dominates() {
        let r = result();
        assert!(
            r.rt_energy_top(10) > 0.85,
            "top-10 energy only {}",
            r.rt_energy_top(10)
        );
    }

    #[test]
    fn render_has_both_series() {
        let text = result().render();
        assert!(text.contains("response_time"));
        assert!(text.contains("throughput"));
    }
}
