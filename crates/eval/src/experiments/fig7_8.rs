//! Figs. 7 and 8 — QoS value distributions before and after the data
//! transformation.
//!
//! Fig. 7 plots the raw response-time and throughput densities (cut off at
//! 10 s / 150 kbps for visualization) and shows them "highly skewed"; Fig. 8
//! plots the same data after Box–Cox + normalization and shows them
//! near-normal. The skewness numbers quantify the visual claim.

use crate::report::render_series;
use crate::Scale;
use qos_dataset::Attribute;
use qos_linalg::{stats, Histogram};
use qos_transform::QosTransform;
use serde::{Deserialize, Serialize};

/// Distribution data for one attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeDistributions {
    /// Attribute short name ("RT"/"TP").
    pub attribute: String,
    /// Raw-value histogram (paper's visualization cutoff applied).
    pub raw: Histogram,
    /// Transformed-value histogram over `[0, 1]`.
    pub transformed: Histogram,
    /// Skewness of the raw sample.
    pub raw_skewness: f64,
    /// Skewness of the transformed sample.
    pub transformed_skewness: f64,
}

/// Fig. 7 + Fig. 8 result: distributions for both attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig78Result {
    /// Response time distributions.
    pub rt: AttributeDistributions,
    /// Throughput distributions.
    pub tp: AttributeDistributions,
}

/// The paper's visualization cutoffs: "we cut off the response time beyond
/// 10s and the throughput more than 150kbps".
pub const RT_CUTOFF: f64 = 10.0;
/// See [`RT_CUTOFF`].
pub const TP_CUTOFF: f64 = 150.0;

const BINS: usize = 50;

fn distributions_for(
    dataset: &qos_dataset::QosDataset,
    attr: Attribute,
    cutoff: f64,
    transform: &QosTransform,
) -> AttributeDistributions {
    let values = dataset.slice_matrix(attr, 0).into_vec();

    let mut raw = Histogram::new(0.0, cutoff, BINS).expect("valid histogram bounds");
    raw.extend(values.iter().copied());

    let transformed_values: Vec<f64> = values.iter().map(|&v| transform.to_normalized(v)).collect();
    let mut transformed = Histogram::new(0.0, 1.0 + 1e-9, BINS).expect("valid histogram bounds");
    transformed.extend(transformed_values.iter().copied());

    AttributeDistributions {
        attribute: attr.short_name().to_string(),
        raw,
        transformed,
        raw_skewness: stats::skewness(&values).unwrap_or(0.0),
        transformed_skewness: stats::skewness(&transformed_values).unwrap_or(0.0),
    }
}

/// Runs the experiment with the paper's transforms (α = −0.007 RT /
/// −0.05 TP).
pub fn run(scale: &Scale) -> Fig78Result {
    let dataset = super::dataset_for(scale);
    let rt_transform = QosTransform::new(-0.007, 0.0, 20.0).expect("paper RT transform is valid");
    let tp_transform = QosTransform::new(-0.05, 0.0, 7000.0).expect("paper TP transform is valid");
    Fig78Result {
        rt: distributions_for(&dataset, Attribute::ResponseTime, RT_CUTOFF, &rt_transform),
        tp: distributions_for(&dataset, Attribute::Throughput, TP_CUTOFF, &tp_transform),
    }
}

impl Fig78Result {
    /// Renders all four panels (Fig. 7 RT/TP, Fig. 8 RT/TP).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (dist, fig) in [(&self.rt, "7/8 RT"), (&self.tp, "7/8 TP")] {
            out.push_str(&format!(
                "# Fig {fig}: raw skewness {:.3} -> transformed skewness {:.3}\n",
                dist.raw_skewness, dist.transformed_skewness
            ));
            out.push_str("## raw density\n");
            let pts: Vec<(f64, f64)> = dist.raw.points().collect();
            out.push_str(&render_series("value", "density", &pts));
            out.push_str("## transformed density\n");
            let pts: Vec<(f64, f64)> = dist.transformed.points().collect();
            out.push_str(&render_series("value", "density", &pts));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Fig78Result {
        run(&Scale::small())
    }

    #[test]
    fn raw_distributions_are_skewed() {
        let r = result();
        assert!(r.rt.raw_skewness > 1.0, "RT skew {}", r.rt.raw_skewness);
        assert!(r.tp.raw_skewness > 1.0, "TP skew {}", r.tp.raw_skewness);
    }

    #[test]
    fn transform_reduces_skewness() {
        // The Fig. 7 -> Fig. 8 improvement.
        let r = result();
        assert!(
            r.rt.transformed_skewness.abs() < r.rt.raw_skewness.abs() / 2.0,
            "RT: {} -> {}",
            r.rt.raw_skewness,
            r.rt.transformed_skewness
        );
        assert!(
            r.tp.transformed_skewness.abs() < r.tp.raw_skewness.abs() / 2.0,
            "TP: {} -> {}",
            r.tp.raw_skewness,
            r.tp.transformed_skewness
        );
    }

    #[test]
    fn raw_histogram_peaks_low() {
        // Right-skewed data: the mode bin sits in the lower half of the range.
        let r = result();
        let mode = r.rt.raw.mode_bin().unwrap();
        assert!(
            mode < r.rt.raw.bins() / 2,
            "mode bin {mode} not in lower half"
        );
    }

    #[test]
    fn transformed_histogram_peaks_interior() {
        // Near-normal data: the mode is away from both edges.
        let r = result();
        let mode = r.rt.transformed.mode_bin().unwrap();
        assert!(
            mode > 2 && mode < r.rt.transformed.bins() - 3,
            "mode bin {mode}"
        );
    }

    #[test]
    fn render_mentions_all_panels() {
        let text = result().render();
        assert!(text.contains("Fig 7/8 RT"));
        assert!(text.contains("Fig 7/8 TP"));
        assert!(text.contains("raw density"));
        assert!(text.contains("transformed density"));
    }
}
