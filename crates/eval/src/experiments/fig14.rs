//! Fig. 14 — scalability under churn: 80% of users/services train first;
//! the remaining 20% join mid-run.
//!
//! The paper's claims, reproduced as measurable series: (1) the MRE of the
//! *new* users/services drops rapidly after they join; (2) the MRE of the
//! *existing* users/services stays stable through the churn (robustness,
//! thanks to adaptive weights).

use crate::methods::replay_options_for;
use crate::Scale;
use amf_core::{AmfConfig, AmfTrainer};
use qos_dataset::sampling::split_matrix;
use qos_dataset::Attribute;
use qos_linalg::random::{sample_indices, shuffle};
use qos_linalg::Entry;
use qos_metrics::AccuracySummary;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One measurement point along the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnPoint {
    /// Cumulative replay iterations when measured (the x-axis; the paper
    /// uses wall-clock seconds, iterations are the hardware-independent
    /// equivalent).
    pub iterations: usize,
    /// Cumulative wall-clock seconds when measured.
    pub seconds: f64,
    /// MRE over held-out pairs among existing users × existing services.
    pub mre_existing: f64,
    /// MRE over held-out pairs involving a new user or service (`None`
    /// before the join).
    pub mre_new: Option<f64>,
}

/// Fig. 14 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig14Result {
    /// Measurement series in time order.
    pub points: Vec<ChurnPoint>,
    /// Index into `points` of the first post-join measurement.
    pub join_index: usize,
    /// Fraction of entities that were existing (the paper uses 80%).
    pub existing_fraction: f64,
}

/// Configuration knobs for the churn run (exposed for the ablation).
#[derive(Debug, Clone, Copy)]
pub struct ChurnOptions {
    /// AMF configuration (the ablation flips `adaptive_weights`).
    pub amf: AmfConfig,
    /// Observed-matrix density.
    pub density: f64,
    /// Fraction of users/services in the initial (existing) population.
    pub existing_fraction: f64,
    /// Replay chunks before and after the join.
    pub chunks_per_phase: usize,
}

impl Default for ChurnOptions {
    fn default() -> Self {
        Self {
            amf: AmfConfig::response_time(),
            density: 0.10,
            existing_fraction: 0.8,
            chunks_per_phase: 12,
        }
    }
}

/// Runs the churn protocol at the paper's settings.
pub fn run(scale: &Scale) -> Fig14Result {
    run_with(
        scale,
        ChurnOptions {
            amf: AmfConfig::response_time().with_seed(scale.seed),
            ..Default::default()
        },
    )
}

/// Parameterized churn run.
pub fn run_with(scale: &Scale, options: ChurnOptions) -> Fig14Result {
    let dataset = super::dataset_for(scale);
    let attr = Attribute::ResponseTime;
    let matrix = dataset.slice_matrix(attr, 0);
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xC0_14);

    // Partition entities 80/20.
    let n_users = dataset.users();
    let n_services = dataset.services();
    let existing_users_count = ((n_users as f64) * options.existing_fraction).round() as usize;
    let existing_services_count =
        ((n_services as f64) * options.existing_fraction).round() as usize;
    let mut user_perm = sample_indices(&mut rng, n_users, n_users);
    let mut service_perm = sample_indices(&mut rng, n_services, n_services);
    let existing_users: std::collections::HashSet<usize> =
        user_perm.drain(..existing_users_count).collect();
    let existing_services: std::collections::HashSet<usize> =
        service_perm.drain(..existing_services_count).collect();

    // Observed/held-out split of the full matrix.
    let split = split_matrix(&matrix, options.density, &mut rng);
    let is_existing_pair =
        |e: &Entry| existing_users.contains(&e.row) && existing_services.contains(&e.col);

    let mut train_existing: Vec<Entry> = Vec::new();
    let mut train_new: Vec<Entry> = Vec::new();
    for e in split.train.iter() {
        if is_existing_pair(e) {
            train_existing.push(*e);
        } else {
            train_new.push(*e);
        }
    }
    let test_existing: Vec<Entry> = split
        .test
        .iter()
        .filter(|e| is_existing_pair(e))
        .copied()
        .collect();
    let test_new: Vec<Entry> = split
        .test
        .iter()
        .filter(|e| !is_existing_pair(e))
        .copied()
        .collect();

    let mut trainer = AmfTrainer::new(options.amf).expect("valid churn config");
    shuffle(&mut rng, &mut train_existing);
    shuffle(&mut rng, &mut train_new);

    let started = std::time::Instant::now();
    let mut total_iterations = 0usize;

    let mre_over = |trainer: &AmfTrainer, entries: &[Entry]| -> f64 {
        let fallback = 1.0;
        let actual: Vec<f64> = entries.iter().map(|e| e.value).collect();
        let predicted: Vec<f64> = entries
            .iter()
            .map(|e| trainer.model().predict_or(e.row, e.col, fallback))
            .collect();
        AccuracySummary::evaluate(&actual, &predicted)
            .map(|s| s.mre)
            .unwrap_or(f64::NAN)
    };

    let mut points = Vec::new();

    // Phase 1: feed existing entries, then replay in chunks.
    for e in &train_existing {
        trainer.feed(e.row, e.col, 0, e.value);
    }
    let replay = replay_options_for(train_existing.len());
    let chunk = (replay.window).max(1);
    for _ in 0..options.chunks_per_phase {
        for _ in 0..chunk {
            if trainer.replay_one().is_none() {
                break;
            }
            total_iterations += 1;
        }
        points.push(ChurnPoint {
            iterations: total_iterations,
            seconds: started.elapsed().as_secs_f64(),
            mre_existing: mre_over(&trainer, &test_existing),
            mre_new: None,
        });
    }

    // Join: the remaining 20% arrive with their observations.
    let join_index = points.len();
    for e in &train_new {
        trainer.feed(e.row, e.col, 0, e.value);
    }

    // Phase 2: continue replaying over the full live set.
    for _ in 0..options.chunks_per_phase {
        for _ in 0..chunk {
            if trainer.replay_one().is_none() {
                break;
            }
            total_iterations += 1;
        }
        points.push(ChurnPoint {
            iterations: total_iterations,
            seconds: started.elapsed().as_secs_f64(),
            mre_existing: mre_over(&trainer, &test_existing),
            mre_new: Some(mre_over(&trainer, &test_new)),
        });
    }

    Fig14Result {
        points,
        join_index,
        existing_fraction: options.existing_fraction,
    }
}

impl Fig14Result {
    /// MRE of existing pairs just before the join.
    pub fn existing_before_join(&self) -> f64 {
        self.points[self.join_index - 1].mre_existing
    }

    /// Worst MRE of existing pairs after the join (churn disturbance).
    pub fn existing_worst_after_join(&self) -> f64 {
        self.points[self.join_index..]
            .iter()
            .map(|p| p.mre_existing)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// First and last new-entity MRE after the join.
    pub fn new_first_and_last(&self) -> (f64, f64) {
        let first = self.points[self.join_index]
            .mre_new
            .expect("post-join points have new MRE");
        let last = self
            .points
            .last()
            .and_then(|p| p.mre_new)
            .expect("post-join points have new MRE");
        (first, last)
    }

    /// Renders the paper's series (x in iterations and seconds).
    pub fn render(&self) -> String {
        let mut out = format!(
            "# Fig 14: churn scalability ({}% existing, join at point {})\n",
            (self.existing_fraction * 100.0).round(),
            self.join_index
        );
        let mut table = crate::report::TextTable::new(vec![
            "iterations".into(),
            "seconds".into(),
            "mre_existing".into(),
            "mre_new".into(),
        ]);
        for p in &self.points {
            table.row(vec![
                p.iterations.to_string(),
                format!("{:.3}", p.seconds),
                format!("{:.4}", p.mre_existing),
                p.mre_new.map_or("-".into(), |v| format!("{v:.4}")),
            ]);
        }
        out.push_str(&table.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Fig14Result {
        run(&Scale {
            users: 30,
            services: 100,
            time_slices: 2,
            repetitions: 1,
            seed: 13,
        })
    }

    #[test]
    fn two_phases_of_points() {
        let r = result();
        assert_eq!(r.points.len(), 24);
        assert_eq!(r.join_index, 12);
        assert!(r.points[..12].iter().all(|p| p.mre_new.is_none()));
        assert!(r.points[12..].iter().all(|p| p.mre_new.is_some()));
        // Iterations strictly increase.
        assert!(r
            .points
            .windows(2)
            .all(|w| w[0].iterations <= w[1].iterations));
    }

    #[test]
    fn new_entities_converge_after_join() {
        // The paper: "the MRE for the new users and services rapidly
        // decreases after their joining".
        let r = result();
        let (first, last) = r.new_first_and_last();
        assert!(
            last < first,
            "new-entity MRE should fall: first {first}, last {last}"
        );
    }

    #[test]
    fn existing_entities_stay_stable() {
        // The paper: "the MRE for existing users and services still keep
        // stable".
        let r = result();
        let before = r.existing_before_join();
        let worst_after = r.existing_worst_after_join();
        assert!(
            worst_after < before * 2.0,
            "existing MRE disturbed too much: {before} -> {worst_after}"
        );
    }

    #[test]
    fn render_has_series_columns() {
        let text = result().render();
        for needle in ["iterations", "mre_existing", "mre_new", "join at point"] {
            assert!(text.contains(needle));
        }
    }
}
