//! Fig. 2 — real-world QoS observations: (a) response time of one
//! user–service pair across time slices; (b) sorted response times of many
//! users on one service.
//!
//! These are the two phenomena motivating the whole problem: QoS is
//! *dynamic* (2a) and *user-specific* (2b).

use crate::report::render_series;
use crate::Scale;
use qos_dataset::{Attribute, QosDataset};
use serde::{Deserialize, Serialize};

/// Fig. 2 data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Result {
    /// (a): RT of the chosen pair per time slice.
    pub pair_series: Vec<f64>,
    /// (b): RT of sampled users on the chosen service, sorted ascending.
    pub sorted_user_profile: Vec<f64>,
    /// The pair behind (a).
    pub pair: (usize, usize),
    /// The service behind (b).
    pub profiled_service: usize,
}

/// Runs the experiment: picks a representative pair (near-median base RT, so
/// the curve is neither clamped at 0 nor at 20 s) and samples up to 100 users
/// for the profile, as the paper does.
pub fn run(scale: &Scale) -> Fig2Result {
    let dataset = super::dataset_for(scale);
    let (user, service) = representative_pair(&dataset);
    let pair_series = dataset.pair_series(Attribute::ResponseTime, user, service);

    let profiled_service = service;
    let mut profile = dataset.service_profile_sorted(Attribute::ResponseTime, profiled_service, 0);
    profile.truncate(100);

    Fig2Result {
        pair_series,
        sorted_user_profile: profile,
        pair: (user, service),
        profiled_service,
    }
}

/// Finds the pair whose base RT is closest to the median base RT of a sample
/// of pairs — a "typical" invocation like the Pittsburgh→Iran example.
fn representative_pair(dataset: &QosDataset) -> (usize, usize) {
    let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
    for u in 0..dataset.users().min(30) {
        for s in (0..dataset.services()).step_by((dataset.services() / 30).max(1)) {
            pairs.push((u, s, dataset.base_value(Attribute::ResponseTime, u, s)));
        }
    }
    let mut values: Vec<f64> = pairs.iter().map(|p| p.2).collect();
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = values[values.len() / 2];
    let (u, s, _) = pairs
        .into_iter()
        .min_by(|a, b| {
            (a.2 - median)
                .abs()
                .partial_cmp(&(b.2 - median).abs())
                .expect("finite")
        })
        .expect("non-empty pair sample");
    (u, s)
}

impl Fig2Result {
    /// Renders both panels as labelled series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# Fig 2(a): RT vs time slice for user {} on service {}\n",
            self.pair.0, self.pair.1
        ));
        let series_a: Vec<(f64, f64)> = self
            .pair_series
            .iter()
            .enumerate()
            .map(|(t, &v)| (t as f64, v))
            .collect();
        out.push_str(&render_series("time_slice", "rt_sec", &series_a));
        out.push_str(&format!(
            "\n# Fig 2(b): sorted RT of {} users on service {}\n",
            self.sorted_user_profile.len(),
            self.profiled_service
        ));
        let series_b: Vec<(f64, f64)> = self
            .sorted_user_profile
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64, v))
            .collect();
        out.push_str(&render_series("user_rank", "rt_sec", &series_b));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> Fig2Result {
        run(&Scale::small())
    }

    #[test]
    fn pair_series_spans_all_slices() {
        let r = result();
        assert_eq!(r.pair_series.len(), Scale::small().time_slices);
        assert!(r.pair_series.iter().all(|&v| (0.0..=20.0).contains(&v)));
    }

    #[test]
    fn series_fluctuates_but_does_not_explode() {
        // Fig. 2(a) shape: variation around an average, not monotone drift.
        let r = result();
        let mean = qos_linalg::stats::mean(&r.pair_series).unwrap();
        let max = qos_linalg::stats::max(&r.pair_series).unwrap();
        let min = qos_linalg::stats::min(&r.pair_series).unwrap();
        assert!(max > mean && min < mean);
        assert!(max / min.max(1e-6) < 100.0, "series unreasonably volatile");
    }

    #[test]
    fn profile_sorted_with_large_spread() {
        // Fig. 2(b) shape: ascending curve with a wide range.
        let r = result();
        assert!(r.sorted_user_profile.windows(2).all(|w| w[0] <= w[1]));
        let first = r.sorted_user_profile.first().unwrap();
        let last = r.sorted_user_profile.last().unwrap();
        assert!(last / first.max(1e-6) > 1.5, "user spread too small");
    }

    #[test]
    fn render_contains_both_panels() {
        let text = result().render();
        assert!(text.contains("Fig 2(a)"));
        assert!(text.contains("Fig 2(b)"));
        assert!(text.contains("time_slice"));
        assert!(text.contains("user_rank"));
    }

    #[test]
    fn deterministic() {
        assert_eq!(run(&Scale::small()), run(&Scale::small()));
    }
}
