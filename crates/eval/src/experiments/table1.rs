//! Table I — accuracy comparison of UPCC / IPCC / UIPCC / PMF / AMF over
//! MAE, MRE and NPRE at matrix densities 10%–50%.
//!
//! Protocol (paper Section V-C): per density, randomly remove entries of the
//! slice-1 matrix down to the target density; train every approach on the
//! kept entries (AMF receives them as a randomized stream); evaluate on the
//! removed entries; repeat with different seeds and average. The
//! "Improve.(%)" row compares AMF against the most competitive other
//! approach per metric.

use crate::methods::Approach;
use crate::report::TextTable;
use crate::Scale;
use qos_dataset::sampling::split_matrix;
use qos_dataset::Attribute;
use qos_metrics::improvement::{improvement_over_best, MetricImprovement};
use qos_metrics::AccuracySummary;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Results for one attribute: per approach, one averaged summary per density.
#[derive(Debug, Clone)]
pub struct AttributeTable {
    /// Attribute short name ("RT" / "TP").
    pub attribute: String,
    /// Approaches in row order.
    pub approaches: Vec<Approach>,
    /// `summaries[approach_idx][density_idx]`, averaged over repetitions.
    pub summaries: Vec<Vec<AccuracySummary>>,
    /// AMF's improvement over the most competitive other approach, per
    /// density (only when AMF is among the approaches).
    pub improvements: Vec<Option<MetricImprovement>>,
}

/// The full Table I reproduction.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// Densities evaluated (fractions).
    pub densities: Vec<f64>,
    /// One table per attribute (RT, TP).
    pub tables: Vec<AttributeTable>,
}

/// Runs the full protocol at `scale` with the paper's density grid and
/// approach set.
pub fn run(scale: &Scale) -> Table1Result {
    run_with(
        scale,
        &super::TABLE1_DENSITIES,
        &Approach::PAPER_SET,
        &[Attribute::ResponseTime, Attribute::Throughput],
    )
}

/// Parameterized variant used by the other density/ablation experiments.
pub fn run_with(
    scale: &Scale,
    densities: &[f64],
    approaches: &[Approach],
    attributes: &[Attribute],
) -> Table1Result {
    let dataset = super::dataset_for(scale);
    let interval = dataset.config().slice_interval_secs;

    let mut tables = Vec::with_capacity(attributes.len());
    for &attr in attributes {
        let matrix = dataset.slice_matrix(attr, 0);
        let mut summaries: Vec<Vec<AccuracySummary>> =
            vec![Vec::with_capacity(densities.len()); approaches.len()];

        for &density in densities {
            // Collect per-repetition summaries per approach, then average —
            // "each approach is performed 20 times ... with different random
            // seeds".
            let mut per_rep: Vec<Vec<AccuracySummary>> = vec![Vec::new(); approaches.len()];
            for rep in 0..scale.repetitions {
                let seed = scale
                    .seed
                    .wrapping_add(rep as u64)
                    .wrapping_add((density * 1000.0) as u64);
                let mut rng = StdRng::seed_from_u64(seed);
                let split = split_matrix(&matrix, density, &mut rng);
                let actual = split.test_actuals();
                for (a_idx, approach) in approaches.iter().enumerate() {
                    let trained = approach.train(&split, attr, seed, 0, interval);
                    let predicted = trained.predict_split(&split);
                    let summary =
                        AccuracySummary::evaluate(&actual, &predicted).expect("non-empty test set");
                    per_rep[a_idx].push(summary);
                }
            }
            for (a_idx, reps) in per_rep.iter().enumerate() {
                summaries[a_idx]
                    .push(AccuracySummary::mean_of(reps).expect("at least one repetition"));
            }
        }

        // Improvement row: AMF vs best other, per density.
        let amf_idx = approaches.iter().position(|a| *a == Approach::Amf);
        let improvements: Vec<Option<MetricImprovement>> = (0..densities.len())
            .map(|d_idx| {
                let amf_idx = amf_idx?;
                let ours = summaries[amf_idx][d_idx];
                let others: Vec<AccuracySummary> = summaries
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != amf_idx)
                    .map(|(_, col)| col[d_idx])
                    .collect();
                improvement_over_best(&ours, &others)
            })
            .collect();

        tables.push(AttributeTable {
            attribute: attr.short_name().to_string(),
            approaches: approaches.to_vec(),
            summaries,
            improvements,
        });
    }

    Table1Result {
        densities: densities.to_vec(),
        tables,
    }
}

impl AttributeTable {
    /// The averaged summary for one approach at one density index.
    pub fn summary(&self, approach: Approach, density_idx: usize) -> Option<AccuracySummary> {
        let idx = self.approaches.iter().position(|a| *a == approach)?;
        self.summaries[idx].get(density_idx).copied()
    }
}

impl Table1Result {
    /// Renders in the paper's layout: one block per attribute, one row per
    /// approach, MAE/MRE/NPRE columns per density, plus the improvement row.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for table in &self.tables {
            out.push_str(&format!("# Table I ({})\n", table.attribute));
            let mut header = vec!["Approach".to_string()];
            for d in &self.densities {
                let pct = (d * 100.0).round() as usize;
                header.push(format!("MAE@{pct}%"));
                header.push(format!("MRE@{pct}%"));
                header.push(format!("NPRE@{pct}%"));
            }
            let mut text = TextTable::new(header);
            for (a_idx, approach) in table.approaches.iter().enumerate() {
                let mut row = vec![approach.name().to_string()];
                for s in &table.summaries[a_idx] {
                    row.push(format!("{:.3}", s.mae));
                    row.push(format!("{:.3}", s.mre));
                    row.push(format!("{:.3}", s.npre));
                }
                text.row(row);
            }
            if table.improvements.iter().any(Option::is_some) {
                let mut row = vec!["Improve.(%)".to_string()];
                for imp in &table.improvements {
                    match imp {
                        Some(i) => {
                            row.push(format!("{:.1}%", i.mae));
                            row.push(format!("{:.1}%", i.mre));
                            row.push(format!("{:.1}%", i.npre));
                        }
                        None => row.extend(["-".to_string(), "-".to_string(), "-".to_string()]),
                    }
                }
                text.row(row);
            }
            out.push_str(&text.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One small configuration shared by the tests (the full protocol runs
    /// in the bench). Dimensions are chosen so each service column keeps
    /// paper-like signal (≥ ~8 observations) at the tested densities — with
    /// fewer, every approach degenerates and the comparison is meaningless.
    fn tiny() -> Table1Result {
        let scale = Scale {
            users: 60,
            services: 150,
            time_slices: 2,
            repetitions: 1,
            seed: 7,
        };
        run_with(
            &scale,
            &[0.15, 0.35],
            &Approach::PAPER_SET,
            &[Attribute::ResponseTime],
        )
    }

    #[test]
    fn shapes_are_consistent() {
        let r = tiny();
        assert_eq!(r.densities.len(), 2);
        assert_eq!(r.tables.len(), 1);
        let t = &r.tables[0];
        assert_eq!(t.approaches.len(), 5);
        for col in &t.summaries {
            assert_eq!(col.len(), 2);
        }
        assert_eq!(t.improvements.len(), 2);
        assert!(t.improvements[0].is_some());
    }

    #[test]
    fn amf_wins_relative_metrics() {
        // The paper's headline claim, at reduced scale: AMF has the best (or
        // tied-best) MRE and NPRE among all approaches.
        let r = tiny();
        let t = &r.tables[0];
        for d_idx in 0..r.densities.len() {
            let amf = t.summary(Approach::Amf, d_idx).unwrap();
            for &other in &[
                Approach::Upcc,
                Approach::Ipcc,
                Approach::Uipcc,
                Approach::Pmf,
            ] {
                let o = t.summary(other, d_idx).unwrap();
                assert!(
                    amf.mre <= o.mre * 1.05,
                    "AMF MRE {} should not lose to {} MRE {} (density {})",
                    amf.mre,
                    other.name(),
                    o.mre,
                    r.densities[d_idx]
                );
            }
        }
    }

    #[test]
    fn accuracy_improves_with_density() {
        // More training data -> lower error (paper Section V-E).
        let r = tiny();
        let t = &r.tables[0];
        let amf_low = t.summary(Approach::Amf, 0).unwrap();
        let amf_high = t.summary(Approach::Amf, 1).unwrap();
        assert!(
            amf_high.mre <= amf_low.mre * 1.1,
            "MRE should not degrade with density: {} -> {}",
            amf_low.mre,
            amf_high.mre
        );
    }

    #[test]
    fn render_contains_all_rows() {
        let text = tiny().render();
        for needle in [
            "UPCC",
            "IPCC",
            "UIPCC",
            "PMF",
            "AMF",
            "Improve.(%)",
            "MRE@15%",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
