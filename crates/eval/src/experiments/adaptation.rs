//! E-SIM — end-to-end runtime adaptation (paper Section III / Fig. 1, as a
//! measurable experiment).
//!
//! The paper motivates QoS prediction by its effect on adaptation decisions
//! but never quantifies the loop end to end; this experiment closes it:
//! service-based applications run on the execution middleware, report
//! observations to the AMF-backed prediction service, and rebind tasks per
//! policy. Compared: never adapting, SLA-threshold-triggered adaptation, and
//! greedy best-predicted adaptation.

use crate::Scale;
use qos_service::policy::StaticPolicy;
use qos_service::{
    AdaptationSimulation, BestPredictedPolicy, SimulationConfig, SimulationReport, ThresholdPolicy,
};
use serde::{Deserialize, Serialize};

/// E-SIM result: one report per policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptationResult {
    /// The simulation parameters used.
    pub config: SimulationConfig,
    /// Never-adapt baseline.
    pub static_run: SimulationReport,
    /// SLA-threshold-triggered adaptation.
    pub threshold_run: SimulationReport,
    /// Greedy best-predicted adaptation.
    pub greedy_run: SimulationReport,
}

/// Runs the simulation with a workload sized to the scale.
pub fn run(scale: &Scale) -> AdaptationResult {
    let dataset = super::dataset_for(scale);
    let config = SimulationConfig {
        applications: 8.min(scale.users / 2).max(1),
        tasks_per_workflow: 3,
        candidates_per_task: 5.min(scale.services / 3).max(1),
        sla_threshold: 2.0,
        slices: scale.time_slices.min(10),
        background_density: 0.12,
        seed: scale.seed,
    };
    let simulation =
        AdaptationSimulation::new(&dataset, config).expect("scaled config fits the dataset");
    AdaptationResult {
        config,
        static_run: simulation.run(&StaticPolicy),
        threshold_run: simulation.run(&ThresholdPolicy::new(config.sla_threshold)),
        greedy_run: simulation.run(&BestPredictedPolicy),
    }
}

impl AdaptationResult {
    /// Steady-state improvement of greedy adaptation over never adapting,
    /// in percent (positive = adaptation helps).
    pub fn greedy_improvement_percent(&self) -> f64 {
        100.0 * (self.static_run.steady_state_rt() - self.greedy_run.steady_state_rt())
            / self.static_run.steady_state_rt()
    }

    /// Renders the policy comparison and the per-slice series.
    pub fn render(&self) -> String {
        let mut out = format!(
            "# E-SIM: runtime adaptation, {} apps x {} tasks x {} candidates, {} slices, SLA {}s\n",
            self.config.applications,
            self.config.tasks_per_workflow,
            self.config.candidates_per_task,
            self.config.slices,
            self.config.sla_threshold
        );
        let mut table = crate::report::TextTable::new(vec![
            "policy".into(),
            "mean_rt".into(),
            "steady_rt".into(),
            "adaptations".into(),
            "violations".into(),
        ]);
        for report in [&self.static_run, &self.threshold_run, &self.greedy_run] {
            table.row(vec![
                report.policy.clone(),
                format!("{:.3}", report.mean_rt()),
                format!("{:.3}", report.steady_state_rt()),
                report.total_adaptations().to_string(),
                report.total_violations().to_string(),
            ]);
        }
        out.push_str(&table.render());
        out.push_str(&format!(
            "\n# greedy adaptation improves steady-state RT by {:.1}% over static\n",
            self.greedy_improvement_percent()
        ));
        let x: Vec<f64> = (0..self.static_run.slices.len())
            .map(|t| t as f64)
            .collect();
        let series = |r: &SimulationReport| -> Vec<f64> {
            r.slices.iter().map(|s| s.mean_end_to_end_rt).collect()
        };
        out.push_str(&crate::report::render_multi_series(
            "slice",
            &x,
            &[
                ("static", series(&self.static_run)),
                ("threshold", series(&self.threshold_run)),
                ("best_predicted", series(&self.greedy_run)),
            ],
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> AdaptationResult {
        run(&Scale {
            users: 24,
            services: 60,
            time_slices: 6,
            repetitions: 1,
            seed: 31,
        })
    }

    #[test]
    fn all_policies_complete() {
        let r = result();
        assert_eq!(r.static_run.slices.len(), 6);
        assert_eq!(r.threshold_run.slices.len(), 6);
        assert_eq!(r.greedy_run.slices.len(), 6);
        assert_eq!(r.static_run.total_adaptations(), 0);
        assert!(r.greedy_run.total_adaptations() > 0);
    }

    #[test]
    fn adaptation_does_not_hurt_steady_state() {
        let r = result();
        assert!(
            r.greedy_run.steady_state_rt() <= r.static_run.steady_state_rt() * 1.05,
            "greedy {} vs static {}",
            r.greedy_run.steady_state_rt(),
            r.static_run.steady_state_rt()
        );
        assert!(r.greedy_improvement_percent().is_finite());
    }

    #[test]
    fn render_has_all_policies_and_series() {
        let text = result().render();
        for needle in [
            "static",
            "threshold",
            "best_predicted",
            "steady_rt",
            "E-SIM",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
