//! Experiment harness regenerating every table and figure of the AMF paper
//! (ICDCS 2014, Section V).
//!
//! Each experiment lives in [`experiments`] as a pure function from a
//! [`Scale`] (dataset dimensions + repetition counts) to a typed result with
//! a `render()` method producing the paper-style text artifact. The mapping
//! to the paper:
//!
//! | id | paper artifact | function |
//! |----|----------------|----------|
//! | Fig. 2 | RT vs time slice / RT vs user | [`experiments::fig2::run`] |
//! | Fig. 6 | dataset statistics table | [`experiments::fig6::run`] |
//! | Fig. 7/8 | raw & transformed distributions | [`experiments::fig7_8::run`] |
//! | Fig. 9 | sorted singular values | [`experiments::fig9::run`] |
//! | Table I | accuracy comparison | [`experiments::table1::run`] |
//! | Fig. 10 | prediction-error distributions | [`experiments::fig10::run`] |
//! | Fig. 11 | impact of data transformation | [`experiments::fig11::run`] |
//! | Fig. 12 | impact of matrix density | [`experiments::fig12::run`] |
//! | Fig. 13 | efficiency (convergence time/slice) | [`experiments::fig13::run`] |
//! | Fig. 14 | scalability under churn | [`experiments::fig14::run`] |
//! | — | ablations (adaptive weights, loss) | [`experiments::ablation`] |
//!
//! Scale control: experiments accept any [`Scale`]; [`Scale::from_env`] reads
//! `AMF_SCALE` (`full` = the paper's 142×4500, `small` = CI-sized) so the
//! same code drives quick checks and full reproductions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod methods;
pub mod report;
pub mod scale;

pub use methods::{Approach, TrainedPredictor};
pub use scale::Scale;

#[cfg(test)]
mod tests {
    #[test]
    fn scale_env_roundtrip() {
        // Covered in scale.rs; this asserts the re-export path compiles.
        let s = crate::Scale::small();
        assert!(s.users > 0);
    }
}
