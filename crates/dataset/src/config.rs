//! Dataset generation parameters.

use crate::DatasetError;
use serde::{Deserialize, Serialize};

/// Log-domain model of one QoS attribute's marginal distribution.
///
/// A QoS value is generated as
/// `exp(log_mean + user + service + interaction + temporal)` clamped into
/// `[min_value, max_value]`, where the four summands are zero-mean with the
/// standard deviations configured here. Because the sum of the components is
/// approximately normal, the raw values are approximately log-normal — the
/// heavy-tailed shape of the paper's Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttributeModel {
    /// Mean of the log-domain base value (`exp` of this is the median QoS).
    pub log_mean: f64,
    /// Std-dev of per-user (row) effects, including region structure.
    pub user_sigma: f64,
    /// Std-dev of per-service (column) effects, including region structure.
    pub service_sigma: f64,
    /// Std-dev of the user×service interaction (the low-rank inner product).
    pub interaction_sigma: f64,
    /// Std-dev of the multiplicative temporal fluctuation per slice.
    pub temporal_sigma: f64,
    /// Autocorrelation of temporal noise between consecutive slices (0..1).
    pub temporal_rho: f64,
    /// Probability that a (pair, slice) observation is a tail spike.
    pub spike_probability: f64,
    /// Log-domain magnitude added on a spike (e.g. `ln 4` quadruples the value).
    pub spike_log_magnitude: f64,
    /// Lower clamp for raw values.
    pub min_value: f64,
    /// Upper clamp for raw values (the paper's `R_max`).
    pub max_value: f64,
}

impl AttributeModel {
    /// Response-time model calibrated to the paper's RT statistics
    /// (range 0–20 s, mean ≈ 1.33 s, strongly right-skewed).
    pub fn response_time() -> Self {
        Self {
            // median ≈ 0.8 s; with total log-variance ≈ 0.77 the mean lands
            // near exp(-0.22 + 0.77/2) ≈ 1.3 s.
            log_mean: -0.22,
            user_sigma: 0.50,
            service_sigma: 0.50,
            interaction_sigma: 0.40,
            temporal_sigma: 0.25,
            temporal_rho: 0.6,
            spike_probability: 0.02,
            spike_log_magnitude: 1.4, // ~4x slowdown spikes
            min_value: 1e-3,
            max_value: 20.0,
        }
    }

    /// Throughput model calibrated to the paper's TP statistics
    /// (range 0–7000 kbps, mean ≈ 11.35 kbps, extremely right-skewed).
    pub fn throughput() -> Self {
        Self {
            // median ≈ 3 kbps; total log-variance ≈ 2.65 (σ ≈ 1.63) drives
            // the mean to exp(1.1 + 2.65/2) ≈ 11.4 kbps — an order of
            // magnitude above the median, as in the paper — with a tail
            // reaching the multi-thousand-kbps range.
            log_mean: 1.10,
            user_sigma: 1.00,
            service_sigma: 1.00,
            interaction_sigma: 0.70,
            temporal_sigma: 0.40,
            temporal_rho: 0.6,
            spike_probability: 0.02,
            spike_log_magnitude: 2.0,
            min_value: 1e-3,
            max_value: 7000.0,
        }
    }

    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] when any sigma is negative,
    /// `temporal_rho` or `spike_probability` is outside `[0, 1]`, or the
    /// value range is degenerate.
    pub fn validate(&self) -> Result<(), DatasetError> {
        let bad = |msg: &str| Err(DatasetError::InvalidConfig(msg.to_string()));
        if !self.log_mean.is_finite() {
            return bad("log_mean must be finite");
        }
        for (name, v) in [
            ("user_sigma", self.user_sigma),
            ("service_sigma", self.service_sigma),
            ("interaction_sigma", self.interaction_sigma),
            ("temporal_sigma", self.temporal_sigma),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(DatasetError::InvalidConfig(format!(
                    "{name} must be finite and non-negative, got {v}"
                )));
            }
        }
        if !(0.0..=1.0).contains(&self.temporal_rho) {
            return bad("temporal_rho must be in [0, 1]");
        }
        if !(0.0..=1.0).contains(&self.spike_probability) {
            return bad("spike_probability must be in [0, 1]");
        }
        if self.spike_log_magnitude.is_nan() || self.spike_log_magnitude < 0.0 {
            return bad("spike_log_magnitude must be non-negative");
        }
        if self.min_value.is_nan()
            || self.max_value.is_nan()
            || self.min_value < 0.0
            || self.min_value >= self.max_value
        {
            return bad("value range must satisfy 0 <= min_value < max_value");
        }
        Ok(())
    }
}

/// Full dataset generation configuration.
///
/// Defaults ([`DatasetConfig::paper_scale`]) match the paper's Fig. 6
/// statistics table: 142 users, 4,500 services, 64 slices at 15-minute
/// intervals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Number of users (rows). Paper: 142 PlanetLab nodes.
    pub users: usize,
    /// Number of services (columns). Paper: 4,500 Web services.
    pub services: usize,
    /// Number of time slices. Paper: 64.
    pub time_slices: usize,
    /// Seconds per time slice. Paper: 900 (15 minutes).
    pub slice_interval_secs: u64,
    /// Number of user regions ("22 countries" in the paper); users in the
    /// same region share part of their latent vector and bias, producing the
    /// row correlation the low-rank assumption relies on.
    pub user_regions: usize,
    /// Number of service regions ("57 countries" in the paper).
    pub service_regions: usize,
    /// Ground-truth latent dimensionality (the log-domain matrix has rank at
    /// most `true_rank + 2`).
    pub true_rank: usize,
    /// How much of a user's/service's latent vector comes from its region
    /// (0 = fully individual, 1 = fully regional).
    pub region_weight: f64,
    /// Response-time marginal model.
    pub response_time: AttributeModel,
    /// Throughput marginal model.
    pub throughput: AttributeModel,
    /// Master RNG seed; everything is deterministic given this.
    pub seed: u64,
}

impl DatasetConfig {
    /// The paper's full scale: 142 × 4500 × 64.
    pub fn paper_scale() -> Self {
        Self {
            users: 142,
            services: 4500,
            time_slices: 64,
            slice_interval_secs: 900,
            user_regions: 22,
            service_regions: 57,
            true_rank: 8,
            region_weight: 0.5,
            response_time: AttributeModel::response_time(),
            throughput: AttributeModel::throughput(),
            seed: 2014,
        }
    }

    /// A reduced configuration for unit tests and doc examples
    /// (20 users × 60 services × 8 slices).
    pub fn small() -> Self {
        Self {
            users: 20,
            services: 60,
            time_slices: 8,
            user_regions: 4,
            service_regions: 6,
            ..Self::paper_scale()
        }
    }

    /// Returns a copy with a different seed (for the paper's "20 times with
    /// different random seeds" protocol).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] when any dimension is zero,
    /// `region_weight` is outside `[0, 1]`, or an attribute model is invalid.
    pub fn validate(&self) -> Result<(), DatasetError> {
        let bad = |msg: &str| Err(DatasetError::InvalidConfig(msg.to_string()));
        if self.users == 0 || self.services == 0 || self.time_slices == 0 {
            return bad("users, services, and time_slices must be positive");
        }
        if self.user_regions == 0 || self.service_regions == 0 {
            return bad("region counts must be positive");
        }
        if self.true_rank == 0 {
            return bad("true_rank must be positive");
        }
        if self.slice_interval_secs == 0 {
            return bad("slice_interval_secs must be positive");
        }
        if !(0.0..=1.0).contains(&self.region_weight) {
            return bad("region_weight must be in [0, 1]");
        }
        self.response_time.validate()?;
        self.throughput.validate()?;
        Ok(())
    }
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self::paper_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_fig6() {
        let c = DatasetConfig::paper_scale();
        assert_eq!(c.users, 142);
        assert_eq!(c.services, 4500);
        assert_eq!(c.time_slices, 64);
        assert_eq!(c.slice_interval_secs, 900);
        assert_eq!(c.response_time.max_value, 20.0);
        assert_eq!(c.throughput.max_value, 7000.0);
        c.validate().unwrap();
    }

    #[test]
    fn small_config_is_valid() {
        DatasetConfig::small().validate().unwrap();
    }

    #[test]
    fn default_is_paper_scale() {
        assert_eq!(DatasetConfig::default(), DatasetConfig::paper_scale());
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let a = DatasetConfig::small();
        let b = a.clone().with_seed(99);
        assert_eq!(b.seed, 99);
        assert_eq!(a.users, b.users);
    }

    #[test]
    fn validation_catches_zero_dims() {
        let mut c = DatasetConfig::small();
        c.users = 0;
        assert!(c.validate().is_err());
        let mut c = DatasetConfig::small();
        c.true_rank = 0;
        assert!(c.validate().is_err());
        let mut c = DatasetConfig::small();
        c.region_weight = 1.5;
        assert!(c.validate().is_err());
        let mut c = DatasetConfig::small();
        c.slice_interval_secs = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn attribute_validation() {
        let mut m = AttributeModel::response_time();
        m.validate().unwrap();
        m.user_sigma = -1.0;
        assert!(m.validate().is_err());

        let mut m = AttributeModel::throughput();
        m.temporal_rho = 2.0;
        assert!(m.validate().is_err());

        let mut m = AttributeModel::response_time();
        m.min_value = 30.0; // above max
        assert!(m.validate().is_err());

        let mut m = AttributeModel::response_time();
        m.spike_probability = -0.1;
        assert!(m.validate().is_err());

        let mut m = AttributeModel::response_time();
        m.log_mean = f64::NAN;
        assert!(m.validate().is_err());
    }
}
