//! Temporal dynamics: deterministic, hash-indexed fluctuation.
//!
//! Fig. 2(a) of the paper shows a user-perceived response time fluctuating
//! around a per-pair average across 64 slices. We reproduce that with a
//! multiplicative log-domain disturbance per `(user, service, slice)`:
//!
//! * a **global slice factor** shared by all pairs in a slice (diurnal-style
//!   load wave plus slice-level noise — "varying server workload");
//! * a **pair-level autocorrelated noise** built from counter-based hashing,
//!   so any `(i, j, t)` cell can be generated independently in O(1) without
//!   materializing the full 142 × 4500 × 64 tensor;
//! * occasional **tail spikes** ("dynamic network conditions") with
//!   configurable probability and magnitude.
//!
//! Counter-based generation (SplitMix64 over a mixed key) keeps the dataset
//! fully deterministic given the master seed while allowing random access.

use crate::config::AttributeModel;
use serde::{Deserialize, Serialize};

/// SplitMix64 finalizer: a fast, well-mixed 64-bit hash.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform f64 in `[0, 1)`.
#[inline]
fn to_unit(h: u64) -> f64 {
    // 53 high bits -> [0, 1)
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Maps two hashes to one standard-normal sample (Box–Muller).
#[inline]
fn to_gaussian(h1: u64, h2: u64) -> f64 {
    let u1 = (to_unit(h1)).max(f64::MIN_POSITIVE);
    let u2 = to_unit(h2);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Deterministic temporal disturbance generator for one attribute.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TemporalModel {
    seed: u64,
    sigma: f64,
    rho: f64,
    spike_probability: f64,
    spike_log_magnitude: f64,
    /// Amplitude of the global diurnal-style wave (log domain).
    wave_amplitude: f64,
    /// Wave period in slices (96 slices = 24 h at 15-minute intervals).
    wave_period: f64,
}

impl TemporalModel {
    /// Creates a temporal model from an attribute's noise parameters.
    pub fn new(model: &AttributeModel, seed: u64) -> Self {
        Self {
            seed,
            sigma: model.temporal_sigma,
            rho: model.temporal_rho,
            spike_probability: model.spike_probability,
            spike_log_magnitude: model.spike_log_magnitude,
            wave_amplitude: 0.5 * model.temporal_sigma,
            wave_period: 96.0,
        }
    }

    /// Raw i.i.d. unit-normal noise for cell `(user, service, slice)`,
    /// independent across cells.
    #[inline]
    fn cell_noise(&self, user: u64, service: u64, slice: i64) -> f64 {
        let key = self
            .seed
            .wrapping_mul(0x9E37)
            .wrapping_add(user.wrapping_mul(0x0001_0003))
            .wrapping_add(service.wrapping_mul(0x0005_DEEC_E66D))
            .wrapping_add(slice as u64);
        to_gaussian(splitmix64(key), splitmix64(key ^ 0xDEAD_BEEF_CAFE_F00D))
    }

    /// Autocorrelated pair-level noise at `slice` (unit variance, lag-1
    /// correlation ≈ `rho`): an MA(1)-style blend of this slice's and the
    /// previous slice's independent noise.
    #[inline]
    fn pair_noise(&self, user: usize, service: usize, slice: usize) -> f64 {
        let n_now = self.cell_noise(user as u64, service as u64, slice as i64);
        let n_prev = self.cell_noise(user as u64, service as u64, slice as i64 - 1);
        let a = self.rho.sqrt();
        let b = (1.0 - self.rho).sqrt();
        a * n_prev + b * n_now
    }

    /// Global log-domain factor shared by every pair in `slice` (server-side
    /// load wave plus slice-level shock).
    pub fn global_log_factor(&self, slice: usize) -> f64 {
        let wave = self.wave_amplitude
            * (2.0 * std::f64::consts::PI * slice as f64 / self.wave_period).sin();
        let shock_hash = splitmix64(self.seed ^ (slice as u64).wrapping_mul(0x517C_C1B7));
        let shock = 0.3 * self.sigma * to_gaussian(shock_hash, splitmix64(shock_hash ^ 0xABCD));
        wave + shock
    }

    /// Whether cell `(user, service, slice)` is a tail spike.
    pub fn is_spike(&self, user: usize, service: usize, slice: usize) -> bool {
        let key = self
            .seed
            .wrapping_mul(0xC0FFEE)
            .wrapping_add((user as u64).wrapping_mul(0x1_0000_001B))
            .wrapping_add((service as u64).wrapping_mul(0x9E1))
            .wrapping_add(slice as u64);
        to_unit(splitmix64(key)) < self.spike_probability
    }

    /// Full log-domain disturbance applied to the pair's base value at
    /// `slice` — the sum of the global factor, pair-level autocorrelated
    /// noise scaled by `sigma`, and any spike.
    pub fn log_disturbance(&self, user: usize, service: usize, slice: usize) -> f64 {
        let mut d =
            self.global_log_factor(slice) + self.sigma * self.pair_noise(user, service, slice);
        if self.is_spike(user, service, slice) {
            d += self.spike_log_magnitude;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AttributeModel;

    fn model() -> TemporalModel {
        TemporalModel::new(&AttributeModel::response_time(), 7)
    }

    #[test]
    fn deterministic() {
        let m = model();
        assert_eq!(m.log_disturbance(3, 5, 7), m.log_disturbance(3, 5, 7));
        assert_eq!(m.global_log_factor(10), m.global_log_factor(10));
    }

    #[test]
    fn distinct_cells_differ() {
        let m = model();
        let a = m.log_disturbance(1, 1, 1);
        assert_ne!(a, m.log_disturbance(1, 1, 2));
        assert_ne!(a, m.log_disturbance(1, 2, 1));
        assert_ne!(a, m.log_disturbance(2, 1, 1));
    }

    #[test]
    fn different_seeds_differ() {
        let a = TemporalModel::new(&AttributeModel::response_time(), 1);
        let b = TemporalModel::new(&AttributeModel::response_time(), 2);
        assert_ne!(a.log_disturbance(0, 0, 0), b.log_disturbance(0, 0, 0));
    }

    #[test]
    fn pair_noise_is_roughly_unit_variance() {
        let m = model();
        let samples: Vec<f64> = (0..200)
            .flat_map(|u| (0..50).map(move |s| (u, s)))
            .map(|(u, s)| m.pair_noise(u, s, 3))
            .collect();
        let sd = qos_linalg::stats::std_dev(&samples).unwrap();
        assert!((sd - 1.0).abs() < 0.1, "std {sd}");
        let mean = qos_linalg::stats::mean(&samples).unwrap();
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn consecutive_slices_are_correlated() {
        // lag-1 correlation should be near rho, lag-5 near zero.
        let m = model();
        let pairs: Vec<(usize, usize)> = (0..300)
            .flat_map(|u| (0..20).map(move |s| (u, s)))
            .collect();
        let corr = |lag: usize| {
            let a: Vec<f64> = pairs.iter().map(|&(u, s)| m.pair_noise(u, s, 10)).collect();
            let b: Vec<f64> = pairs
                .iter()
                .map(|&(u, s)| m.pair_noise(u, s, 10 + lag))
                .collect();
            qos_linalg::correlation::pearson(&a, &b).unwrap()
        };
        let lag1 = corr(1);
        let lag5 = corr(5);
        assert!(lag1 > 0.3, "lag-1 correlation too small: {lag1}");
        assert!(lag5.abs() < 0.1, "lag-5 correlation too large: {lag5}");
    }

    #[test]
    fn spike_rate_matches_probability() {
        let m = model(); // p = 0.02
        let n = 100_000;
        let spikes = (0..n)
            .filter(|&k| m.is_spike(k % 142, (k / 142) % 450, k % 64))
            .count();
        let rate = spikes as f64 / n as f64;
        assert!((rate - 0.02).abs() < 0.005, "spike rate {rate}");
    }

    #[test]
    fn zero_sigma_removes_pair_noise() {
        let mut attr = AttributeModel::response_time();
        attr.temporal_sigma = 0.0;
        attr.spike_probability = 0.0;
        let m = TemporalModel::new(&attr, 3);
        // Only the (zero-amplitude) wave and zero-scaled shock remain.
        assert_eq!(m.log_disturbance(1, 2, 3), 0.0);
    }

    #[test]
    fn global_factor_oscillates() {
        let m = model();
        let values: Vec<f64> = (0..96).map(|t| m.global_log_factor(t)).collect();
        let max = qos_linalg::stats::max(&values).unwrap();
        let min = qos_linalg::stats::min(&values).unwrap();
        assert!(max > 0.0 && min < 0.0, "wave should cross zero");
    }
}
