//! The synthetic QoS dataset: latent model + temporal dynamics.

use crate::config::DatasetConfig;
use crate::latent::LatentModel;
use crate::temporal::TemporalModel;
use crate::DatasetError;
use qos_linalg::DenseMatrix;
use serde::{Deserialize, Serialize};

/// Which QoS attribute to generate — the paper evaluates both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Attribute {
    /// Response time in seconds (paper: 0–20 s, mean 1.33 s).
    ResponseTime,
    /// Throughput in kbps (paper: 0–7000 kbps, mean 11.35 kbps).
    Throughput,
}

impl Attribute {
    /// Both attributes, in the paper's table order.
    pub const ALL: [Attribute; 2] = [Attribute::ResponseTime, Attribute::Throughput];

    /// Short name used in reports ("RT" / "TP", as in Table I).
    pub fn short_name(&self) -> &'static str {
        match self {
            Attribute::ResponseTime => "RT",
            Attribute::Throughput => "TP",
        }
    }

    /// Unit string for display.
    pub fn unit(&self) -> &'static str {
        match self {
            Attribute::ResponseTime => "sec",
            Attribute::Throughput => "kbps",
        }
    }
}

impl std::fmt::Display for Attribute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// A fully deterministic synthetic QoS dataset.
///
/// Any cell `(attribute, user, service, slice)` can be generated in O(d)
/// without materializing the full tensor; full slices are produced on demand.
///
/// # Examples
///
/// ```
/// use qos_dataset::{Attribute, DatasetConfig, QosDataset};
///
/// let ds = QosDataset::generate(&DatasetConfig::small());
/// let v = ds.value(Attribute::ResponseTime, 0, 0, 0);
/// assert!((0.0..=20.0).contains(&v));
/// // Deterministic:
/// assert_eq!(v, ds.value(Attribute::ResponseTime, 0, 0, 0));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QosDataset {
    config: DatasetConfig,
    rt_latent: LatentModel,
    tp_latent: LatentModel,
    rt_temporal: TemporalModel,
    tp_temporal: TemporalModel,
}

impl QosDataset {
    /// Generates the dataset for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`QosDataset::try_generate`] for a checked variant.
    pub fn generate(config: &DatasetConfig) -> Self {
        Self::try_generate(config).expect("invalid dataset config")
    }

    /// Generates the dataset, validating the configuration first.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] when validation fails.
    pub fn try_generate(config: &DatasetConfig) -> Result<Self, DatasetError> {
        config.validate()?;
        Ok(Self {
            rt_latent: LatentModel::generate(config, &config.response_time, 0x52_54),
            tp_latent: LatentModel::generate(config, &config.throughput, 0x54_50),
            rt_temporal: TemporalModel::new(&config.response_time, config.seed ^ 0x52_54),
            tp_temporal: TemporalModel::new(&config.throughput, config.seed ^ 0x54_50),
            config: config.clone(),
        })
    }

    /// The generation configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// Number of users (matrix rows).
    pub fn users(&self) -> usize {
        self.config.users
    }

    /// Number of services (matrix columns).
    pub fn services(&self) -> usize {
        self.config.services
    }

    /// Number of time slices.
    pub fn time_slices(&self) -> usize {
        self.config.time_slices
    }

    fn parts(&self, attr: Attribute) -> (&LatentModel, &TemporalModel, f64, f64) {
        match attr {
            Attribute::ResponseTime => (
                &self.rt_latent,
                &self.rt_temporal,
                self.config.response_time.min_value,
                self.config.response_time.max_value,
            ),
            Attribute::Throughput => (
                &self.tp_latent,
                &self.tp_temporal,
                self.config.throughput.min_value,
                self.config.throughput.max_value,
            ),
        }
    }

    /// Ground-truth QoS value for `(user, service)` at `slice`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range; use [`QosDataset::try_value`] for
    /// a checked variant.
    pub fn value(&self, attr: Attribute, user: usize, service: usize, slice: usize) -> f64 {
        assert!(slice < self.config.time_slices, "slice out of range");
        let (latent, temporal, min, max) = self.parts(attr);
        let log_value =
            latent.base_log_value(user, service) + temporal.log_disturbance(user, service, slice);
        log_value.exp().clamp(min, max)
    }

    /// Checked version of [`QosDataset::value`].
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::OutOfRange`] when an index is out of range.
    pub fn try_value(
        &self,
        attr: Attribute,
        user: usize,
        service: usize,
        slice: usize,
    ) -> Result<f64, DatasetError> {
        if user >= self.users() {
            return Err(DatasetError::OutOfRange {
                what: "user",
                index: user,
                len: self.users(),
            });
        }
        if service >= self.services() {
            return Err(DatasetError::OutOfRange {
                what: "service",
                index: service,
                len: self.services(),
            });
        }
        if slice >= self.time_slices() {
            return Err(DatasetError::OutOfRange {
                what: "time slice",
                index: slice,
                len: self.time_slices(),
            });
        }
        Ok(self.value(attr, user, service, slice))
    }

    /// The pair's time-averaged base value (what Fig. 2(a)'s curve fluctuates
    /// around), without temporal disturbance.
    ///
    /// # Panics
    ///
    /// Panics if `user` or `service` is out of range.
    pub fn base_value(&self, attr: Attribute, user: usize, service: usize) -> f64 {
        let (latent, _, min, max) = self.parts(attr);
        latent.base_log_value(user, service).exp().clamp(min, max)
    }

    /// Full ground-truth matrix for one time slice.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is out of range.
    pub fn slice_matrix(&self, attr: Attribute, slice: usize) -> DenseMatrix {
        DenseMatrix::from_fn(self.users(), self.services(), |i, j| {
            self.value(attr, i, j, slice)
        })
    }

    /// Time series of one `(user, service)` pair across all slices — the data
    /// behind Fig. 2(a).
    ///
    /// # Panics
    ///
    /// Panics if `user` or `service` is out of range.
    pub fn pair_series(&self, attr: Attribute, user: usize, service: usize) -> Vec<f64> {
        (0..self.time_slices())
            .map(|t| self.value(attr, user, service, t))
            .collect()
    }

    /// QoS of every user on one service at one slice, sorted ascending — the
    /// data behind Fig. 2(b).
    ///
    /// # Panics
    ///
    /// Panics if `service` or `slice` is out of range.
    pub fn service_profile_sorted(
        &self,
        attr: Attribute,
        service: usize,
        slice: usize,
    ) -> Vec<f64> {
        let mut values: Vec<f64> = (0..self.users())
            .map(|u| self.value(attr, u, service, slice))
            .collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("QoS values are finite"));
        values
    }

    /// Timestamp (seconds since epoch 0 of the simulation) at which `slice`
    /// begins.
    pub fn slice_start_time(&self, slice: usize) -> u64 {
        slice as u64 * self.config.slice_interval_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_linalg::stats;

    fn dataset() -> QosDataset {
        QosDataset::generate(&DatasetConfig::small())
    }

    #[test]
    fn attribute_names() {
        assert_eq!(Attribute::ResponseTime.short_name(), "RT");
        assert_eq!(Attribute::Throughput.to_string(), "TP");
        assert_eq!(Attribute::ResponseTime.unit(), "sec");
        assert_eq!(Attribute::ALL.len(), 2);
    }

    #[test]
    fn values_respect_ranges() {
        let ds = dataset();
        for t in 0..ds.time_slices() {
            for u in 0..ds.users() {
                for s in (0..ds.services()).step_by(7) {
                    let rt = ds.value(Attribute::ResponseTime, u, s, t);
                    assert!((0.0..=20.0).contains(&rt), "rt {rt}");
                    let tp = ds.value(Attribute::Throughput, u, s, t);
                    assert!((0.0..=7000.0).contains(&tp), "tp {tp}");
                }
            }
        }
    }

    #[test]
    fn try_value_checks_bounds() {
        let ds = dataset();
        assert!(ds.try_value(Attribute::ResponseTime, 0, 0, 0).is_ok());
        assert!(matches!(
            ds.try_value(Attribute::ResponseTime, 999, 0, 0),
            Err(DatasetError::OutOfRange { what: "user", .. })
        ));
        assert!(matches!(
            ds.try_value(Attribute::ResponseTime, 0, 999, 0),
            Err(DatasetError::OutOfRange {
                what: "service",
                ..
            })
        ));
        assert!(matches!(
            ds.try_value(Attribute::ResponseTime, 0, 0, 999),
            Err(DatasetError::OutOfRange {
                what: "time slice",
                ..
            })
        ));
    }

    #[test]
    fn invalid_config_rejected() {
        let mut c = DatasetConfig::small();
        c.users = 0;
        assert!(QosDataset::try_generate(&c).is_err());
    }

    #[test]
    fn deterministic_across_instances() {
        let a = dataset();
        let b = dataset();
        assert_eq!(
            a.slice_matrix(Attribute::Throughput, 3),
            b.slice_matrix(Attribute::Throughput, 3)
        );
    }

    #[test]
    fn different_seeds_give_different_data() {
        let a = QosDataset::generate(&DatasetConfig::small());
        let b = QosDataset::generate(&DatasetConfig::small().with_seed(777));
        assert_ne!(
            a.value(Attribute::ResponseTime, 0, 0, 0),
            b.value(Attribute::ResponseTime, 0, 0, 0)
        );
    }

    #[test]
    fn pair_series_fluctuates_around_base() {
        // Fig. 2(a): the series wanders around its average, it does not trend
        // off to the clamps.
        let ds = dataset();
        let series = ds.pair_series(Attribute::ResponseTime, 1, 2);
        assert_eq!(series.len(), ds.time_slices());
        let base = ds.base_value(Attribute::ResponseTime, 1, 2);
        let mean = stats::mean(&series).unwrap();
        // Mean of the series within a factor ~2.5 of the base value.
        assert!(
            mean / base < 2.5 && base / mean < 2.5,
            "mean {mean} vs base {base}"
        );
    }

    #[test]
    fn service_profile_is_sorted_and_varied() {
        let ds = dataset();
        let profile = ds.service_profile_sorted(Attribute::ResponseTime, 5, 0);
        assert_eq!(profile.len(), ds.users());
        assert!(profile.windows(2).all(|w| w[0] <= w[1]));
        // Fig. 2(b): large cross-user variation.
        assert!(
            profile.last().unwrap() / profile.first().unwrap().max(1e-6) > 1.5,
            "profile too flat"
        );
    }

    #[test]
    fn raw_values_are_right_skewed() {
        // Fig. 7 shape: skewness clearly positive for both attributes.
        let ds = QosDataset::generate(&DatasetConfig {
            users: 40,
            services: 120,
            ..DatasetConfig::small()
        });
        for attr in Attribute::ALL {
            let m = ds.slice_matrix(attr, 0);
            let skew = stats::skewness(m.values()).unwrap();
            assert!(skew > 1.0, "{attr} skewness {skew} not heavy-tailed");
        }
    }

    #[test]
    fn rt_mean_near_paper_value() {
        // Paper Fig. 6: RT average 1.33 s. Accept a loose band — the shape
        // matters, not the third digit.
        let ds = QosDataset::generate(&DatasetConfig {
            users: 60,
            services: 200,
            ..DatasetConfig::small()
        });
        let m = ds.slice_matrix(Attribute::ResponseTime, 0);
        let mean = stats::mean(m.values()).unwrap();
        assert!((0.6..=2.6).contains(&mean), "RT mean {mean} out of band");
    }

    #[test]
    fn slice_start_time_uses_interval() {
        let ds = dataset();
        assert_eq!(ds.slice_start_time(0), 0);
        assert_eq!(ds.slice_start_time(4), 4 * 900);
    }

    #[test]
    fn raw_slice_is_approximately_low_rank() {
        // Fig. 9 shape: normalized singular values decay fast.
        let ds = QosDataset::generate(&DatasetConfig {
            users: 30,
            services: 90,
            ..DatasetConfig::small()
        });
        let m = ds.slice_matrix(Attribute::ResponseTime, 0);
        let sv = qos_linalg::svd::normalized_singular_values(&m).unwrap();
        // Energy in the top true_rank+2 components dominates.
        let top: f64 = sv.iter().take(10).map(|v| v * v).sum();
        let total: f64 = sv.iter().map(|v| v * v).sum();
        assert!(top / total > 0.85, "top-10 energy only {}", top / total);
    }
}
