//! WS-DREAM-style text I/O.
//!
//! The public WS-DREAM releases ship QoS data in two plain-text layouts,
//! both supported here so the synthetic data can be exported for external
//! tools and real data can be imported if available:
//!
//! * **dense matrix** — one row of whitespace-separated values per user,
//!   `-1` marking an unobserved cell;
//! * **triplets** — `user service time value` per line (`rtdata.txt`-style).

use crate::stream::QosSample;
use crate::DatasetError;
use qos_linalg::{DenseMatrix, SparseMatrix};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Sentinel written for unobserved cells in the dense format.
pub const MISSING: f64 = -1.0;

/// Writes a dense matrix in WS-DREAM layout. Accepts any `Write`; pass
/// `&mut file` to keep ownership of the file.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_dense<W: Write>(matrix: &DenseMatrix, writer: W) -> Result<(), DatasetError> {
    let mut w = BufWriter::new(writer);
    for i in 0..matrix.rows() {
        let row: Vec<String> = matrix.row(i).iter().map(|v| format!("{v:.6}")).collect();
        writeln!(w, "{}", row.join(" "))?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a dense matrix in WS-DREAM layout.
///
/// # Errors
///
/// Returns [`DatasetError::Parse`] for ragged rows or unparsable floats,
/// and propagates I/O errors.
pub fn read_dense<R: Read>(reader: R) -> Result<DenseMatrix, DatasetError> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (line_no, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let row: Result<Vec<f64>, _> = trimmed.split_whitespace().map(str::parse).collect();
        let row = row.map_err(|e| DatasetError::Parse {
            line: line_no + 1,
            message: format!("bad float: {e}"),
        })?;
        if let Some(first) = rows.first() {
            if row.len() != first.len() {
                return Err(DatasetError::Parse {
                    line: line_no + 1,
                    message: format!(
                        "ragged row: expected {} values, got {}",
                        first.len(),
                        row.len()
                    ),
                });
            }
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(DatasetError::Parse {
            line: 0,
            message: "empty file".to_string(),
        });
    }
    DenseMatrix::from_rows(&rows).map_err(|e| DatasetError::Parse {
        line: 0,
        message: e.to_string(),
    })
}

/// Writes a sparse matrix as a dense WS-DREAM grid with `-1` for missing.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_sparse_as_dense<W: Write>(
    matrix: &SparseMatrix,
    writer: W,
) -> Result<(), DatasetError> {
    write_dense(&matrix.to_dense(MISSING), writer)
}

/// Reads a dense WS-DREAM grid into a sparse matrix, treating negative cells
/// as unobserved.
///
/// # Errors
///
/// Same as [`read_dense`].
pub fn read_dense_as_sparse<R: Read>(reader: R) -> Result<SparseMatrix, DatasetError> {
    let dense = read_dense(reader)?;
    let mut sparse = SparseMatrix::new(dense.rows(), dense.cols());
    for i in 0..dense.rows() {
        for j in 0..dense.cols() {
            let v = dense.get(i, j);
            if v >= 0.0 {
                sparse.insert(i, j, v);
            }
        }
    }
    Ok(sparse)
}

/// Writes samples as `user service timestamp value` triplet lines
/// (WS-DREAM `rtdata.txt` layout, with seconds for the time column).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_triplets<W: Write>(samples: &[QosSample], writer: W) -> Result<(), DatasetError> {
    let mut w = BufWriter::new(writer);
    for s in samples {
        writeln!(w, "{} {} {} {:.6}", s.user, s.service, s.timestamp, s.value)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads triplet lines written by [`write_triplets`].
///
/// # Errors
///
/// Returns [`DatasetError::Parse`] for malformed lines and propagates I/O
/// errors.
pub fn read_triplets<R: Read>(reader: R) -> Result<Vec<QosSample>, DatasetError> {
    let mut samples = Vec::new();
    for (line_no, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let parts: Vec<&str> = trimmed.split_whitespace().collect();
        if parts.len() != 4 {
            return Err(DatasetError::Parse {
                line: line_no + 1,
                message: format!("expected 4 fields, got {}", parts.len()),
            });
        }
        let parse_err = |what: &str| DatasetError::Parse {
            line: line_no + 1,
            message: format!("bad {what}"),
        };
        samples.push(QosSample::new(
            parts[2].parse().map_err(|_| parse_err("timestamp"))?,
            parts[0].parse().map_err(|_| parse_err("user id"))?,
            parts[1].parse().map_err(|_| parse_err("service id"))?,
            parts[3].parse().map_err(|_| parse_err("value"))?,
        ));
    }
    Ok(samples)
}

/// Writes a dense matrix to a file path.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn write_dense_file<P: AsRef<Path>>(matrix: &DenseMatrix, path: P) -> Result<(), DatasetError> {
    write_dense(matrix, std::fs::File::create(path)?)
}

/// Reads a dense matrix from a file path.
///
/// # Errors
///
/// Propagates file-open errors and [`read_dense`] errors.
pub fn read_dense_file<P: AsRef<Path>>(path: P) -> Result<DenseMatrix, DatasetError> {
    read_dense(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_roundtrip() {
        let m = DenseMatrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64 / 3.0);
        let mut buf = Vec::new();
        write_dense(&m, &mut buf).unwrap();
        let back = read_dense(&buf[..]).unwrap();
        assert_eq!(back.shape(), (3, 4));
        for i in 0..3 {
            for j in 0..4 {
                assert!((back.get(i, j) - m.get(i, j)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn sparse_roundtrip_preserves_missing() {
        let mut m = SparseMatrix::new(2, 3);
        m.insert(0, 0, 1.5);
        m.insert(1, 2, 0.25);
        let mut buf = Vec::new();
        write_sparse_as_dense(&m, &mut buf).unwrap();
        let back = read_dense_as_sparse(&buf[..]).unwrap();
        assert_eq!(back.nnz(), 2);
        assert_eq!(back.get(0, 0), Some(1.5));
        assert_eq!(back.get(1, 2), Some(0.25));
        assert_eq!(back.get(0, 1), None);
    }

    #[test]
    fn triplet_roundtrip() {
        let samples = vec![QosSample::new(0, 1, 2, 1.4), QosSample::new(900, 3, 4, 0.5)];
        let mut buf = Vec::new();
        write_triplets(&samples, &mut buf).unwrap();
        let back = read_triplets(&buf[..]).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].user, 1);
        assert_eq!(back[0].service, 2);
        assert_eq!(back[0].timestamp, 0);
        assert!((back[1].value - 0.5).abs() < 1e-9);
    }

    #[test]
    fn read_dense_rejects_ragged() {
        let text = "1.0 2.0\n3.0\n";
        let err = read_dense(text.as_bytes()).unwrap_err();
        assert!(matches!(err, DatasetError::Parse { line: 2, .. }));
    }

    #[test]
    fn read_dense_rejects_garbage() {
        let text = "1.0 banana\n";
        assert!(matches!(
            read_dense(text.as_bytes()),
            Err(DatasetError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn read_dense_rejects_empty() {
        assert!(read_dense("".as_bytes()).is_err());
        assert!(read_dense("\n\n".as_bytes()).is_err());
    }

    #[test]
    fn read_triplets_rejects_short_lines() {
        assert!(matches!(
            read_triplets("1 2 3\n".as_bytes()),
            Err(DatasetError::Parse { .. })
        ));
        assert!(read_triplets("a 2 3 4\n".as_bytes()).is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let text = "\n1.0 2.0\n\n3.0 4.0\n";
        let m = read_dense(text.as_bytes()).unwrap();
        assert_eq!(m.shape(), (2, 2));
        let trips = read_triplets("\n0 1 2 3.0\n\n".as_bytes()).unwrap();
        assert_eq!(trips.len(), 1);
    }

    mod properties {
        use super::*;
        use crate::stream::QosSample;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn dense_roundtrip_any_matrix(
                rows in 1usize..6,
                cols in 1usize..6,
                seed in 0u64..500
            ) {
                let m = DenseMatrix::from_fn(rows, cols, |i, j| {
                    ((i * 31 + j * 17 + seed as usize) % 1000) as f64 / 7.0
                });
                let mut buf = Vec::new();
                write_dense(&m, &mut buf).unwrap();
                let back = read_dense(&buf[..]).unwrap();
                prop_assert_eq!(back.shape(), (rows, cols));
                for i in 0..rows {
                    for j in 0..cols {
                        prop_assert!((back.get(i, j) - m.get(i, j)).abs() < 1e-5);
                    }
                }
            }

            #[test]
            fn triplet_roundtrip_any_samples(
                samples in proptest::collection::vec(
                    (0u64..100_000, 0usize..500, 0usize..5_000, 0.0..7000.0f64),
                    0..40
                )
            ) {
                let originals: Vec<QosSample> = samples
                    .into_iter()
                    .map(|(t, u, s, v)| QosSample::new(t, u, s, v))
                    .collect();
                let mut buf = Vec::new();
                write_triplets(&originals, &mut buf).unwrap();
                let back = read_triplets(&buf[..]).unwrap();
                prop_assert_eq!(back.len(), originals.len());
                for (a, b) in originals.iter().zip(&back) {
                    prop_assert_eq!(a.timestamp, b.timestamp);
                    prop_assert_eq!(a.user, b.user);
                    prop_assert_eq!(a.service, b.service);
                    prop_assert!((a.value - b.value).abs() < 1e-5);
                }
            }

            #[test]
            fn sparse_roundtrip_preserves_observed_set(
                entries in proptest::collection::vec(
                    (0usize..6, 0usize..6, 0.0..100.0f64),
                    0..20
                )
            ) {
                let mut m = SparseMatrix::new(6, 6);
                for (i, j, v) in entries {
                    m.insert(i, j, v);
                }
                let mut buf = Vec::new();
                write_sparse_as_dense(&m, &mut buf).unwrap();
                let back = read_dense_as_sparse(&buf[..]).unwrap();
                prop_assert_eq!(back.nnz(), m.nnz());
                for e in m.iter() {
                    let restored = back.get(e.row, e.col).unwrap();
                    prop_assert!((restored - e.value).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("qos_dataset_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("matrix.txt");
        let m = DenseMatrix::from_fn(2, 2, |i, j| (i + j) as f64);
        write_dense_file(&m, &path).unwrap();
        let back = read_dense_file(&path).unwrap();
        assert_eq!(back.shape(), (2, 2));
        std::fs::remove_file(&path).unwrap();
    }
}
