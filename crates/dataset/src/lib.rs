//! Synthetic WS-DREAM-like QoS dataset (substitute for paper Section V-A).
//!
//! The paper evaluates on a proprietary collection of real measurements: 142
//! PlanetLab users invoking 4,500 public Web services over 64 consecutive
//! 15-minute time slices, recording response time (RT, 0–20 s, mean 1.33 s)
//! and throughput (TP, 0–7000 kbps, mean 11.35 kbps). That dataset is not
//! available here, so this crate generates a synthetic equivalent that
//! reproduces the statistical properties the paper's results depend on:
//!
//! 1. **Skewed, heavy-tailed marginals** (Fig. 7) — QoS values are log-normal
//!    by construction: the generator works in the log domain and
//!    exponentiates.
//! 2. **Near-normal marginals after Box–Cox** (Fig. 8) — follows from (1).
//! 3. **Approximate low rank** (Fig. 9) — the log-domain matrix is *exactly*
//!    `rank ≤ d + 2` (a bias-plus-inner-product model), so the raw matrix is
//!    approximately low-rank.
//! 4. **Temporal fluctuation around a per-pair mean** (Fig. 2a) and **large
//!    cross-user variation per service** (Fig. 2b) — multiplicative temporal
//!    noise with autocorrelation and per-user biases with region structure.
//!
//! The crate also provides the experiment plumbing around the data:
//! density-controlled sparsification ([`sampling`]), randomized QoS data
//! streams ([`stream`]), dataset statistics (Fig. 6; [`stats`]), and
//! WS-DREAM-style text I/O ([`io`]).
//!
//! # Examples
//!
//! ```
//! use qos_dataset::{DatasetConfig, QosDataset, Attribute};
//!
//! let config = DatasetConfig::small(); // reduced dims for tests/docs
//! let dataset = QosDataset::generate(&config);
//! let slice = dataset.slice_matrix(Attribute::ResponseTime, 0);
//! assert_eq!(slice.shape(), (config.users, config.services));
//! assert!(slice.values().iter().all(|&v| (0.0..=20.0).contains(&v)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod generator;
pub mod io;
pub mod latent;
pub mod regime;
pub mod sampling;
pub mod stats;
pub mod stream;
pub mod temporal;

pub use config::{AttributeModel, DatasetConfig};
pub use generator::{Attribute, QosDataset};
pub use regime::{
    phase_profile, PhaseProfile, PhaseSpan, RegimeObservation, RegimePhase, RegimeTimeline,
    RegimeWorld, RegimeWorldConfig,
};
pub use sampling::{split_matrix, MatrixSplit};
pub use stats::DatasetStatistics;
pub use stream::{QosSample, SliceStream};

/// Error type for dataset construction and I/O.
#[derive(Debug)]
pub enum DatasetError {
    /// Configuration failed validation.
    InvalidConfig(String),
    /// A requested slice/user/service index was out of range.
    OutOfRange {
        /// What was indexed (e.g. "time slice").
        what: &'static str,
        /// The requested index.
        index: usize,
        /// The number available.
        len: usize,
    },
    /// An I/O operation failed.
    Io(std::io::Error),
    /// A data file could not be parsed.
    Parse {
        /// 1-based line number of the failure.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::InvalidConfig(msg) => write!(f, "invalid dataset config: {msg}"),
            DatasetError::OutOfRange { what, index, len } => {
                write!(f, "{what} index {index} out of range (len {len})")
            }
            DatasetError::Io(e) => write!(f, "dataset io error: {e}"),
            DatasetError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        DatasetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(DatasetError::InvalidConfig("x".into())
            .to_string()
            .contains("invalid"));
        let e = DatasetError::OutOfRange {
            what: "time slice",
            index: 64,
            len: 64,
        };
        assert!(e.to_string().contains("time slice"));
        let e = DatasetError::Parse {
            line: 3,
            message: "bad float".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DatasetError>();
    }
}
