//! Density-controlled sparsification and train/test splitting.
//!
//! The paper's accuracy protocol (Section V-C): "we randomly remove entries
//! from the data matrix at each time slice so that each user only keeps a few
//! available historical values ... the preserved data entries are randomized
//! as a QoS data stream for training. Then the removed entries are used as
//! the testing data."

use qos_linalg::random::{sample_indices, shuffle};
use qos_linalg::{DenseMatrix, Entry, SparseMatrix};
use rand::Rng;

/// A train/test split of one dense QoS slice.
#[derive(Debug, Clone)]
pub struct MatrixSplit {
    /// Observed (training) entries at the target density.
    pub train: SparseMatrix,
    /// Held-out (testing) entries — everything that was removed.
    pub test: Vec<Entry>,
}

impl MatrixSplit {
    /// Ground-truth values of the test entries, in test order.
    pub fn test_actuals(&self) -> Vec<f64> {
        self.test.iter().map(|e| e.value).collect()
    }
}

/// Splits a dense matrix into `density` observed entries and the held-out
/// complement, sampling uniformly over all cells (the paper's protocol).
///
/// # Panics
///
/// Panics if `density` is outside `(0, 1]`.
pub fn split_matrix<R: Rng + ?Sized>(
    matrix: &DenseMatrix,
    density: f64,
    rng: &mut R,
) -> MatrixSplit {
    assert!(
        density > 0.0 && density <= 1.0,
        "density must be in (0, 1], got {density}"
    );
    let (rows, cols) = matrix.shape();
    let total = rows * cols;
    let keep = ((total as f64 * density).round() as usize).clamp(1, total);

    let kept = sample_indices(rng, total, keep);
    let mut is_kept = vec![false; total];
    for &k in &kept {
        is_kept[k] = true;
    }

    let mut train = SparseMatrix::new(rows, cols);
    let mut test = Vec::with_capacity(total - keep);
    for (idx, &kept) in is_kept.iter().enumerate() {
        let (i, j) = (idx / cols, idx % cols);
        let value = matrix.get(i, j);
        if kept {
            train.insert(i, j, value);
        } else {
            test.push(Entry::new(i, j, value));
        }
    }
    MatrixSplit { train, test }
}

/// Splits with *per-row* density: every user keeps exactly
/// `round(cols * density)` entries (at least 1). Closer to the paper's
/// phrasing "each user invokes 10% of the services"; useful for ablations on
/// sampling protocol.
///
/// # Panics
///
/// Panics if `density` is outside `(0, 1]`.
pub fn split_matrix_per_row<R: Rng + ?Sized>(
    matrix: &DenseMatrix,
    density: f64,
    rng: &mut R,
) -> MatrixSplit {
    assert!(
        density > 0.0 && density <= 1.0,
        "density must be in (0, 1], got {density}"
    );
    let (rows, cols) = matrix.shape();
    let keep_per_row = ((cols as f64 * density).round() as usize).clamp(1, cols);

    let mut train = SparseMatrix::new(rows, cols);
    let mut test = Vec::new();
    for i in 0..rows {
        let kept = sample_indices(rng, cols, keep_per_row);
        let mut is_kept = vec![false; cols];
        for &j in &kept {
            is_kept[j] = true;
        }
        for (j, &kept) in is_kept.iter().enumerate() {
            let value = matrix.get(i, j);
            if kept {
                train.insert(i, j, value);
            } else {
                test.push(Entry::new(i, j, value));
            }
        }
    }
    MatrixSplit { train, test }
}

/// Randomizes observed entries into a training stream (the paper feeds AMF
/// "the preserved data entries ... randomized as a QoS data stream").
pub fn randomized_entries<R: Rng + ?Sized>(matrix: &SparseMatrix, rng: &mut R) -> Vec<Entry> {
    let mut entries: Vec<Entry> = matrix.iter().copied().collect();
    shuffle(rng, &mut entries);
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn matrix() -> DenseMatrix {
        DenseMatrix::from_fn(20, 30, |i, j| (i * 30 + j + 1) as f64)
    }

    #[test]
    fn split_sizes_match_density() {
        let m = matrix();
        let mut rng = StdRng::seed_from_u64(1);
        let split = split_matrix(&m, 0.1, &mut rng);
        assert_eq!(split.train.nnz(), 60); // 600 cells * 0.1
        assert_eq!(split.test.len(), 540);
        assert!((split.train.density() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn train_and_test_partition_cells() {
        let m = matrix();
        let mut rng = StdRng::seed_from_u64(2);
        let split = split_matrix(&m, 0.3, &mut rng);
        for e in &split.test {
            assert!(!split.train.contains(e.row, e.col));
            assert_eq!(m.get(e.row, e.col), e.value);
        }
        for e in split.train.iter() {
            assert_eq!(m.get(e.row, e.col), e.value);
        }
        assert_eq!(split.train.nnz() + split.test.len(), 600);
    }

    #[test]
    fn full_density_keeps_everything() {
        let m = matrix();
        let mut rng = StdRng::seed_from_u64(3);
        let split = split_matrix(&m, 1.0, &mut rng);
        assert_eq!(split.train.nnz(), 600);
        assert!(split.test.is_empty());
    }

    #[test]
    #[should_panic(expected = "density must be in (0, 1]")]
    fn zero_density_rejected() {
        split_matrix(&matrix(), 0.0, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn per_row_split_gives_uniform_row_counts() {
        let m = matrix();
        let mut rng = StdRng::seed_from_u64(4);
        let split = split_matrix_per_row(&m, 0.2, &mut rng);
        for i in 0..20 {
            assert_eq!(split.train.row_nnz(i), 6); // 30 * 0.2
        }
    }

    #[test]
    fn per_row_split_keeps_at_least_one() {
        let m = matrix();
        let mut rng = StdRng::seed_from_u64(5);
        let split = split_matrix_per_row(&m, 0.001, &mut rng);
        for i in 0..20 {
            assert_eq!(split.train.row_nnz(i), 1);
        }
    }

    #[test]
    fn different_seeds_give_different_masks() {
        let m = matrix();
        let a = split_matrix(&m, 0.1, &mut StdRng::seed_from_u64(10));
        let b = split_matrix(&m, 0.1, &mut StdRng::seed_from_u64(11));
        let a_cells: std::collections::HashSet<(usize, usize)> =
            a.train.iter().map(|e| (e.row, e.col)).collect();
        let b_cells: std::collections::HashSet<(usize, usize)> =
            b.train.iter().map(|e| (e.row, e.col)).collect();
        assert_ne!(a_cells, b_cells);
    }

    #[test]
    fn same_seed_reproduces_mask() {
        let m = matrix();
        let a = split_matrix(&m, 0.25, &mut StdRng::seed_from_u64(7));
        let b = split_matrix(&m, 0.25, &mut StdRng::seed_from_u64(7));
        let a_cells: Vec<(usize, usize)> = a.train.iter().map(|e| (e.row, e.col)).collect();
        let b_cells: Vec<(usize, usize)> = b.train.iter().map(|e| (e.row, e.col)).collect();
        assert_eq!(a_cells, b_cells);
    }

    #[test]
    fn randomized_entries_permutes_all() {
        let m = matrix();
        let mut rng = StdRng::seed_from_u64(8);
        let split = split_matrix(&m, 0.5, &mut rng);
        let stream = randomized_entries(&split.train, &mut rng);
        assert_eq!(stream.len(), split.train.nnz());
        // Every streamed entry is a train entry.
        for e in &stream {
            assert_eq!(split.train.get(e.row, e.col), Some(e.value));
        }
        // And it is genuinely shuffled (probability of identity order ~ 0).
        let original: Vec<(usize, usize)> = split.train.iter().map(|e| (e.row, e.col)).collect();
        let shuffled: Vec<(usize, usize)> = stream.iter().map(|e| (e.row, e.col)).collect();
        assert_ne!(original, shuffled);
    }

    #[test]
    fn test_actuals_align_with_entries() {
        let m = matrix();
        let mut rng = StdRng::seed_from_u64(9);
        let split = split_matrix(&m, 0.9, &mut rng);
        let actuals = split.test_actuals();
        assert_eq!(actuals.len(), split.test.len());
        for (v, e) in actuals.iter().zip(&split.test) {
            assert_eq!(*v, e.value);
        }
    }
}
