//! QoS data streams: timestamped samples in arrival order.
//!
//! The AMF model consumes "sequentially observed QoS data samples
//! `(t_ij, u_i, s_j, R_ij)`" (Algorithm 1). This module turns dataset slices
//! into such streams: each observed entry of a slice becomes a sample with a
//! timestamp inside the slice's interval, shuffled into a random arrival
//! order, and multi-slice streams are concatenations in time order.

use crate::generator::QosDataset;
use crate::sampling::MatrixSplit;
use qos_linalg::random::shuffle;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One observed QoS sample — the paper's `(t_ij, u_i, s_j, R_ij)` tuple.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosSample {
    /// Observation timestamp (seconds since simulation epoch).
    pub timestamp: u64,
    /// User (row) index.
    pub user: usize,
    /// Service (column) index.
    pub service: usize,
    /// Observed QoS value.
    pub value: f64,
}

impl QosSample {
    /// Creates a sample.
    pub fn new(timestamp: u64, user: usize, service: usize, value: f64) -> Self {
        Self {
            timestamp,
            user,
            service,
            value,
        }
    }
}

/// A stream of samples for one time slice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SliceStream {
    /// Slice index the samples belong to.
    pub slice: usize,
    /// Samples in arrival order.
    pub samples: Vec<QosSample>,
}

impl SliceStream {
    /// Builds a stream from a slice's observed (training) entries: arrival
    /// order is randomized and timestamps are spread uniformly across the
    /// slice interval in arrival order.
    pub fn from_split<R: Rng + ?Sized>(
        dataset: &QosDataset,
        split: &MatrixSplit,
        slice: usize,
        rng: &mut R,
    ) -> Self {
        let mut entries: Vec<qos_linalg::Entry> = split.train.iter().copied().collect();
        shuffle(rng, &mut entries);
        let start = dataset.slice_start_time(slice);
        let interval = dataset.config().slice_interval_secs;
        let n = entries.len().max(1) as u64;
        let samples = entries
            .iter()
            .enumerate()
            .map(|(k, e)| QosSample::new(start + (k as u64 * interval) / n, e.row, e.col, e.value))
            .collect();
        Self { slice, samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterator over the samples in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &QosSample> + '_ {
        self.samples.iter()
    }
}

impl IntoIterator for SliceStream {
    type Item = QosSample;
    type IntoIter = std::vec::IntoIter<QosSample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.into_iter()
    }
}

/// Concatenates per-slice streams in slice order into one long stream, as the
/// online service would observe them across a day of operation.
pub fn concat_streams(streams: impl IntoIterator<Item = SliceStream>) -> Vec<QosSample> {
    let mut all: Vec<QosSample> = Vec::new();
    let mut slices: Vec<SliceStream> = streams.into_iter().collect();
    slices.sort_by_key(|s| s.slice);
    for s in slices {
        all.extend(s.samples);
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatasetConfig;
    use crate::generator::Attribute;
    use crate::sampling::split_matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(slice: usize, density: f64, seed: u64) -> (QosDataset, MatrixSplit) {
        let ds = QosDataset::generate(&DatasetConfig::small());
        let m = ds.slice_matrix(Attribute::ResponseTime, slice);
        let mut rng = StdRng::seed_from_u64(seed);
        let split = split_matrix(&m, density, &mut rng);
        (ds, split)
    }

    #[test]
    fn stream_covers_all_train_entries() {
        let (ds, split) = setup(0, 0.2, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let stream = SliceStream::from_split(&ds, &split, 0, &mut rng);
        assert_eq!(stream.len(), split.train.nnz());
        for s in stream.iter() {
            assert_eq!(split.train.get(s.user, s.service), Some(s.value));
        }
    }

    #[test]
    fn timestamps_within_slice_and_nondecreasing() {
        let (ds, split) = setup(2, 0.3, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let stream = SliceStream::from_split(&ds, &split, 2, &mut rng);
        let start = ds.slice_start_time(2);
        let end = ds.slice_start_time(3);
        let mut last = 0;
        for s in stream.iter() {
            assert!(s.timestamp >= start && s.timestamp < end);
            assert!(s.timestamp >= last);
            last = s.timestamp;
        }
    }

    #[test]
    fn arrival_order_is_randomized() {
        let (ds, split) = setup(0, 0.5, 5);
        let a = SliceStream::from_split(&ds, &split, 0, &mut StdRng::seed_from_u64(6));
        let b = SliceStream::from_split(&ds, &split, 0, &mut StdRng::seed_from_u64(7));
        let order_a: Vec<(usize, usize)> = a.iter().map(|s| (s.user, s.service)).collect();
        let order_b: Vec<(usize, usize)> = b.iter().map(|s| (s.user, s.service)).collect();
        assert_ne!(order_a, order_b);
    }

    #[test]
    fn concat_orders_by_slice() {
        let (ds, split0) = setup(0, 0.1, 8);
        let m1 = ds.slice_matrix(Attribute::ResponseTime, 1);
        let mut rng = StdRng::seed_from_u64(9);
        let split1 = split_matrix(&m1, 0.1, &mut rng);
        let s1 = SliceStream::from_split(&ds, &split1, 1, &mut rng);
        let s0 = SliceStream::from_split(&ds, &split0, 0, &mut rng);
        // Pass out of order; concat must sort by slice.
        let all = concat_streams([s1.clone(), s0.clone()]);
        assert_eq!(all.len(), s0.len() + s1.len());
        assert!(all.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    }

    #[test]
    fn into_iterator_yields_samples() {
        let (ds, split) = setup(0, 0.1, 10);
        let mut rng = StdRng::seed_from_u64(11);
        let stream = SliceStream::from_split(&ds, &split, 0, &mut rng);
        let n = stream.len();
        assert!(!stream.is_empty());
        let collected: Vec<QosSample> = stream.into_iter().collect();
        assert_eq!(collected.len(), n);
    }
}
