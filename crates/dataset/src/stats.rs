//! Dataset statistics (the Fig. 6 table of the paper).

use crate::generator::{Attribute, QosDataset};
use qos_linalg::stats;
use serde::{Deserialize, Serialize};

/// Per-attribute statistics over a sample of the dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttributeStatistics {
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Mean value (the paper reports RT average 1.33 s, TP average 11.35 kbps).
    pub mean: f64,
    /// Median value.
    pub median: f64,
    /// Skewness of the raw distribution (not in the paper's table; quantifies
    /// the Fig. 7 "highly skewed" claim).
    pub skewness: f64,
}

/// The Fig. 6 statistics table: dimensions plus per-attribute summaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStatistics {
    /// Number of users.
    pub users: usize,
    /// Number of services.
    pub services: usize,
    /// Number of time slices.
    pub time_slices: usize,
    /// Slice interval in seconds.
    pub slice_interval_secs: u64,
    /// Response-time summary.
    pub response_time: AttributeStatistics,
    /// Throughput summary.
    pub throughput: AttributeStatistics,
}

impl DatasetStatistics {
    /// Computes statistics over the first `sample_slices` slices (the full
    /// tensor is large; a few slices are statistically sufficient).
    ///
    /// # Panics
    ///
    /// Panics if `sample_slices` is zero or exceeds the dataset's slice count.
    pub fn compute(dataset: &QosDataset, sample_slices: usize) -> Self {
        assert!(
            sample_slices > 0 && sample_slices <= dataset.time_slices(),
            "sample_slices out of range"
        );
        let attr_stats = |attr: Attribute| {
            let mut values =
                Vec::with_capacity(dataset.users() * dataset.services() * sample_slices);
            for t in 0..sample_slices {
                values.extend_from_slice(dataset.slice_matrix(attr, t).values());
            }
            AttributeStatistics {
                min: stats::min(&values).expect("non-empty dataset"),
                max: stats::max(&values).expect("non-empty dataset"),
                mean: stats::mean(&values).expect("non-empty dataset"),
                median: stats::median(&values).expect("non-empty dataset"),
                skewness: stats::skewness(&values).unwrap_or(0.0),
            }
        };
        Self {
            users: dataset.users(),
            services: dataset.services(),
            time_slices: dataset.time_slices(),
            slice_interval_secs: dataset.config().slice_interval_secs,
            response_time: attr_stats(Attribute::ResponseTime),
            throughput: attr_stats(Attribute::Throughput),
        }
    }

    /// Renders the table in the layout of the paper's Fig. 6.
    pub fn to_table(&self) -> String {
        format!(
            "Statistics            Values\n\
             #Users                {}\n\
             #Services             {}\n\
             #Time slices          {}\n\
             #Time interval        {}min\n\
             RT range              {:.3} ~ {:.2}s\n\
             RT average            {:.2}s\n\
             TP range              {:.3} ~ {:.2}kbps\n\
             TP average            {:.2}kbps\n",
            self.users,
            self.services,
            self.time_slices,
            self.slice_interval_secs / 60,
            self.response_time.min,
            self.response_time.max,
            self.response_time.mean,
            self.throughput.min,
            self.throughput.max,
            self.throughput.mean,
        )
    }
}

impl std::fmt::Display for DatasetStatistics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatasetConfig;

    fn statistics() -> DatasetStatistics {
        let ds = QosDataset::generate(&DatasetConfig {
            users: 40,
            services: 150,
            ..DatasetConfig::small()
        });
        DatasetStatistics::compute(&ds, 2)
    }

    #[test]
    fn dimensions_copied_from_config() {
        let s = statistics();
        assert_eq!(s.users, 40);
        assert_eq!(s.services, 150);
        assert_eq!(s.time_slices, 8);
        assert_eq!(s.slice_interval_secs, 900);
    }

    #[test]
    fn ranges_within_clamps() {
        let s = statistics();
        assert!(s.response_time.min >= 0.0);
        assert!(s.response_time.max <= 20.0);
        assert!(s.throughput.min >= 0.0);
        assert!(s.throughput.max <= 7000.0);
    }

    #[test]
    fn both_attributes_right_skewed() {
        let s = statistics();
        assert!(s.response_time.skewness > 1.0);
        assert!(s.throughput.skewness > 1.0);
    }

    #[test]
    fn mean_exceeds_median_for_skewed_data() {
        let s = statistics();
        assert!(s.response_time.mean > s.response_time.median);
        assert!(s.throughput.mean > s.throughput.median);
    }

    #[test]
    fn table_contains_key_rows() {
        let s = statistics();
        let table = s.to_table();
        assert!(table.contains("#Users"));
        assert!(table.contains("#Services"));
        assert!(table.contains("RT average"));
        assert!(table.contains("15min"));
        assert_eq!(table, s.to_string());
    }

    #[test]
    #[should_panic(expected = "sample_slices out of range")]
    fn zero_sample_slices_rejected() {
        let ds = QosDataset::generate(&DatasetConfig::small());
        DatasetStatistics::compute(&ds, 0);
    }
}
