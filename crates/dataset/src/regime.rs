//! Phase-based QoS regime profiles and composable scenario timelines.
//!
//! The paper's adaptation story (Section III) presumes the QoS landscape
//! *shifts*: services congest, links get lossy, regions fail, load recovers.
//! This module scripts those shifts deterministically so a closed-loop
//! harness can measure what adaptation buys. A [`RegimeTimeline`] is a
//! sequence of phases — the classic good / congested / lossy / recovery
//! cycle plus churn storms, flash crowds, regional outages, and
//! correlated-outlier bursts — and a [`RegimeWorld`] turns a timeline into
//! per-`(user, service, tick)` ground-truth response times plus the (possibly
//! corrupted) values a QoS manager would *report*.
//!
//! Everything is a pure function of `(seed, user, service, tick)`: the same
//! seed reproduces the same world byte for byte, which is what lets scenario
//! reports pin their metrics in CI.

use crate::DatasetError;

/// One QoS regime: how the world behaves for a span of ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegimePhase {
    /// Baseline: everything fast, mild diurnal wobble.
    Good,
    /// Sustained congestion: stress-prone services slow several-fold.
    Congested,
    /// Lossy transport: retransmit tails spike a subset of observations.
    Lossy,
    /// Congestion decaying back to baseline (exponential relief).
    Recovery,
    /// A global load surge: everyone slows, stress-prone services most.
    FlashCrowd,
    /// Service churn: a seeded subset of services goes dark mid-phase.
    ChurnStorm,
    /// One region's services time out entirely.
    RegionalOutage,
    /// Measurements (not the services) go bad: a correlated subset of
    /// reported values turns to garbage while actual QoS stays normal.
    OutlierBurst,
}

impl RegimePhase {
    /// Every phase, in catalog order.
    pub const ALL: [RegimePhase; 8] = [
        RegimePhase::Good,
        RegimePhase::Congested,
        RegimePhase::Lossy,
        RegimePhase::Recovery,
        RegimePhase::FlashCrowd,
        RegimePhase::ChurnStorm,
        RegimePhase::RegionalOutage,
        RegimePhase::OutlierBurst,
    ];

    /// Short kebab-case label (stable: used in scenario specs and reports).
    pub fn label(self) -> &'static str {
        match self {
            RegimePhase::Good => "good",
            RegimePhase::Congested => "congested",
            RegimePhase::Lossy => "lossy",
            RegimePhase::Recovery => "recovery",
            RegimePhase::FlashCrowd => "flash-crowd",
            RegimePhase::ChurnStorm => "churn-storm",
            RegimePhase::RegionalOutage => "regional-outage",
            RegimePhase::OutlierBurst => "outlier-burst",
        }
    }

    /// Parses a phase label (the inverse of [`RegimePhase::label`]).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] for unknown labels.
    pub fn parse(label: &str) -> Result<Self, DatasetError> {
        RegimePhase::ALL
            .into_iter()
            .find(|p| p.label() == label)
            .ok_or_else(|| DatasetError::InvalidConfig(format!("unknown regime phase '{label}'")))
    }

    /// Whether the phase disturbs the baseline (everything but
    /// [`RegimePhase::Good`]). Scenario harnesses measure time-to-recover
    /// from the start of the last disruptive phase.
    pub fn is_disruptive(self) -> bool {
        self != RegimePhase::Good
    }

    /// An engine-side fault-plan spec capturing the phase's transport
    /// behaviour, for harnesses that feed observations through
    /// `amf_core::FaultPlan::mutate_stream` (parse it with
    /// `FaultPlan::parse_in(.., FaultContext::Scenario)` — the network verbs
    /// are deliberately absent, they cannot fire in-process). `None` for
    /// phases whose transport is clean.
    pub fn fault_spec(self) -> Option<&'static str> {
        match self {
            RegimePhase::Lossy => Some("drop=0.08;dup=0.04;reorder=6"),
            RegimePhase::ChurnStorm => Some("drop=0.03;reorder=12"),
            RegimePhase::FlashCrowd => Some("dup=0.05;reorder=4"),
            _ => None,
        }
    }
}

/// The per-tick shape of one phase, in the spirit of SNIPPETS.md Snippet 2's
/// `phase_profile(phase, t)`: a base multiplier with sinusoidal modulation
/// plus phase-specific stress/loss knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseProfile {
    /// Multiplier on every service's base response time.
    pub rt_factor: f64,
    /// Extra multiplier applied in proportion to a service's stress
    /// susceptibility (`0` = phase stresses nobody).
    pub stress_gain: f64,
    /// Probability that one observation grows a retransmit-style tail spike.
    pub loss: f64,
    /// Probability that one *reported* value is corrupted (measurement
    /// garbage, not real QoS).
    pub outlier_rate: f64,
    /// Fraction of services dark during the phase (churn / outage mass).
    pub down_fraction: f64,
}

/// Evaluates the profile of `phase` at local tick `t` (ticks since the phase
/// began). Deterministic and allocation-free; the sinusoids keep the world
/// moving inside a phase so windowed accuracy is exercised, exactly like the
/// snippet's `80 + 10*sin(t/15)` bandwidth curves.
pub fn phase_profile(phase: RegimePhase, t: u32) -> PhaseProfile {
    let t = f64::from(t);
    let wave = |period: f64| (t / period).sin();
    match phase {
        RegimePhase::Good => PhaseProfile {
            rt_factor: 1.0 + 0.06 * wave(15.0),
            stress_gain: 0.0,
            loss: 0.0005,
            outlier_rate: 0.0,
            down_fraction: 0.0,
        },
        RegimePhase::Congested => PhaseProfile {
            rt_factor: 1.25 + 0.15 * wave(9.0),
            stress_gain: 3.2 + 0.6 * wave(7.0),
            loss: 0.008,
            outlier_rate: 0.0,
            down_fraction: 0.0,
        },
        RegimePhase::Lossy => PhaseProfile {
            rt_factor: 1.05 + 0.08 * wave(11.0),
            stress_gain: 0.4,
            loss: 0.22,
            outlier_rate: 0.0,
            down_fraction: 0.0,
        },
        RegimePhase::Recovery => PhaseProfile {
            // Congestion relief: the stress term decays with a ~12-tick
            // constant, so the phase starts congested and ends good.
            rt_factor: 1.1 + 0.08 * wave(13.0),
            stress_gain: 3.0 * (-t / 12.0).exp(),
            loss: 0.004,
            outlier_rate: 0.0,
            down_fraction: 0.0,
        },
        RegimePhase::FlashCrowd => PhaseProfile {
            // Ramp up over ~8 ticks, then sustained surge.
            rt_factor: 1.0 + 1.1 * (1.0 - (-t / 8.0).exp()),
            stress_gain: 1.8,
            loss: 0.01,
            outlier_rate: 0.0,
            down_fraction: 0.0,
        },
        RegimePhase::ChurnStorm => PhaseProfile {
            rt_factor: 1.05,
            stress_gain: 0.5,
            loss: 0.01,
            outlier_rate: 0.0,
            down_fraction: 0.3,
        },
        RegimePhase::RegionalOutage => PhaseProfile {
            rt_factor: 1.0 + 0.05 * wave(15.0),
            stress_gain: 0.0,
            loss: 0.002,
            outlier_rate: 0.0,
            down_fraction: 0.0, // outage is regional, not sampled per-service
        },
        RegimePhase::OutlierBurst => PhaseProfile {
            rt_factor: 1.0 + 0.05 * wave(15.0),
            stress_gain: 0.0,
            loss: 0.0005,
            outlier_rate: 0.35,
            down_fraction: 0.0,
        },
    }
}

/// One phase and how many ticks it lasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpan {
    /// The regime in force.
    pub phase: RegimePhase,
    /// Duration in ticks (must be ≥ 1).
    pub ticks: u32,
}

/// A composable multi-phase timeline: phases run back to back, Snippet 2's
/// `[("good", 60), ("congested", 60), …]` idiom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegimeTimeline {
    spans: Vec<PhaseSpan>,
}

impl RegimeTimeline {
    /// Builds a timeline from `(phase, ticks)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] when empty or any span lasts
    /// zero ticks.
    pub fn new(spans: Vec<(RegimePhase, u32)>) -> Result<Self, DatasetError> {
        if spans.is_empty() {
            return Err(DatasetError::InvalidConfig(
                "regime timeline needs at least one phase".into(),
            ));
        }
        if spans.iter().any(|&(_, ticks)| ticks == 0) {
            return Err(DatasetError::InvalidConfig(
                "regime phase spans must last at least one tick".into(),
            ));
        }
        Ok(Self {
            spans: spans
                .into_iter()
                .map(|(phase, ticks)| PhaseSpan { phase, ticks })
                .collect(),
        })
    }

    /// The spans in order.
    pub fn spans(&self) -> &[PhaseSpan] {
        &self.spans
    }

    /// Total length in ticks.
    pub fn total_ticks(&self) -> u32 {
        self.spans.iter().map(|s| s.ticks).sum()
    }

    /// The phase in force at `tick` plus the tick's offset into that phase.
    /// Ticks past the end stay in the final phase (its local clock keeps
    /// counting), so harness warm-down reads never panic.
    pub fn phase_at(&self, tick: u32) -> (RegimePhase, u32) {
        let mut remaining = tick;
        for (i, span) in self.spans.iter().enumerate() {
            if remaining < span.ticks || i + 1 == self.spans.len() {
                return (span.phase, remaining);
            }
            remaining -= span.ticks;
        }
        unreachable!("timeline is never empty")
    }

    /// Tick index at which the *last* disruptive phase starts, if any — the
    /// reference point for time-to-recover measurements.
    pub fn last_disruption_start(&self) -> Option<u32> {
        let mut start = 0u32;
        let mut found = None;
        for span in &self.spans {
            if span.phase.is_disruptive() {
                found = Some(start);
            }
            start += span.ticks;
        }
        found
    }
}

/// Dimensions and tuning of a [`RegimeWorld`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegimeWorldConfig {
    /// Number of users.
    pub users: usize,
    /// Number of services.
    pub services: usize,
    /// Number of service regions (regional outages take one of these down).
    pub regions: usize,
    /// Seed for every per-entity/per-tick draw.
    pub seed: u64,
    /// Response time reported for a dark (churned/outaged) service —
    /// effectively the caller's timeout.
    pub timeout_rt: f64,
    /// Which region [`RegimePhase::RegionalOutage`] darkens. `None` picks one
    /// from the seed; harnesses that know which regions their fleet depends
    /// on can aim the outage explicitly.
    pub outage_region: Option<usize>,
}

impl Default for RegimeWorldConfig {
    fn default() -> Self {
        Self {
            users: 24,
            services: 48,
            regions: 4,
            seed: 42,
            timeout_rt: 18.5,
            outage_region: None,
        }
    }
}

/// One observation of a service by a user at a tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegimeObservation {
    /// Ground-truth response time actually experienced (seconds).
    pub actual: f64,
    /// The value the user's QoS manager reports to the prediction service —
    /// equal to `actual` except during outlier bursts, when a correlated
    /// subset of measurements is garbage.
    pub reported: f64,
}

/// A deterministic QoS world driven by a [`RegimeTimeline`].
///
/// Response times are built from seeded per-service bases (how fast the
/// service is when healthy), per-service *stress susceptibility* (how badly
/// congestion hurts it), per-user multipliers (network position), the
/// phase's [`PhaseProfile`], and per-observation tail-spike draws. All of it
/// is hash-derived — no mutable RNG state — so observation order never
/// changes the world.
#[derive(Debug, Clone)]
pub struct RegimeWorld {
    config: RegimeWorldConfig,
    timeline: RegimeTimeline,
    /// Region hit by [`RegimePhase::RegionalOutage`] spans.
    outage_region: usize,
}

impl RegimeWorld {
    /// Builds a world.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] for degenerate dimensions.
    pub fn new(config: RegimeWorldConfig, timeline: RegimeTimeline) -> Result<Self, DatasetError> {
        if config.users == 0 || config.services == 0 {
            return Err(DatasetError::InvalidConfig(
                "regime world needs at least one user and one service".into(),
            ));
        }
        if config.regions == 0 || config.regions > config.services {
            return Err(DatasetError::InvalidConfig(format!(
                "regions must be in 1..={}",
                config.services
            )));
        }
        if !(config.timeout_rt.is_finite() && config.timeout_rt > 0.0) {
            return Err(DatasetError::InvalidConfig(
                "timeout_rt must be a positive finite value".into(),
            ));
        }
        if let Some(r) = config.outage_region {
            if r >= config.regions {
                return Err(DatasetError::InvalidConfig(format!(
                    "outage_region {r} out of range (regions={})",
                    config.regions
                )));
            }
        }
        let outage_region = config
            .outage_region
            .unwrap_or_else(|| (mix(config.seed, 0xA11, 0, 0) % config.regions as u64) as usize);
        Ok(Self {
            config,
            timeline,
            outage_region,
        })
    }

    /// The world's configuration.
    pub fn config(&self) -> &RegimeWorldConfig {
        &self.config
    }

    /// The driving timeline.
    pub fn timeline(&self) -> &RegimeTimeline {
        &self.timeline
    }

    /// Number of users.
    pub fn users(&self) -> usize {
        self.config.users
    }

    /// Number of services.
    pub fn services(&self) -> usize {
        self.config.services
    }

    /// The region darkened by regional-outage phases.
    pub fn outage_region(&self) -> usize {
        self.outage_region
    }

    /// The region a service belongs to (stable hash partition).
    pub fn region_of(&self, service: usize) -> usize {
        (mix(self.config.seed, 0x5E6, service as u64, 0) % self.config.regions as u64) as usize
    }

    /// A service's healthy-baseline response time (seconds, ∈ [0.3, 1.8]).
    pub fn base_rt(&self, service: usize) -> f64 {
        0.3 + 1.5 * hash01(self.config.seed, 0xBA5E, service as u64, 0)
    }

    /// How strongly congestion-style stress amplifies this service (∈ [0, 1]).
    pub fn stress_of(&self, service: usize) -> f64 {
        hash01(self.config.seed, 0x57E5, service as u64, 0)
    }

    /// The phase in force at `tick` and the local offset into it.
    pub fn phase_at(&self, tick: u32) -> (RegimePhase, u32) {
        self.timeline.phase_at(tick)
    }

    /// Whether a service is up at `tick`. Churn storms take down a seeded
    /// `down_fraction` of services for the span; regional outages take down
    /// the outage region.
    pub fn available(&self, service: usize, tick: u32) -> bool {
        let (phase, _) = self.timeline.phase_at(tick);
        match phase {
            RegimePhase::RegionalOutage => self.region_of(service) != self.outage_region,
            _ => {
                let profile = phase_profile(phase, 0);
                profile.down_fraction == 0.0
                    || hash01(self.config.seed, 0xD0_1137, service as u64, 0)
                        >= profile.down_fraction
            }
        }
    }

    /// Ground-truth response time of one invocation. Always finite,
    /// positive, and clamped below 20 s (the RT attribute's range).
    pub fn actual(&self, user: usize, service: usize, tick: u32) -> f64 {
        if !self.available(service, tick) {
            return self.config.timeout_rt;
        }
        let (phase, t) = self.timeline.phase_at(tick);
        let profile = phase_profile(phase, t);
        let user_factor = 0.9 + 0.25 * hash01(self.config.seed, 0x05E2, user as u64, 0);
        let stress = self.stress_of(service);
        let mut rt = self.base_rt(service)
            * user_factor
            * (profile.rt_factor + profile.stress_gain * stress);
        // Retransmit tail: a per-observation draw, more likely for
        // stress-prone services, multiplies RT 4–9×.
        let tail_p = profile.loss * (0.4 + 1.2 * stress);
        let draw = hash01(
            self.config.seed ^ 0x7A11,
            user as u64,
            service as u64,
            u64::from(tick),
        );
        if draw < tail_p {
            let spike = 4.0
                + 5.0
                    * hash01(
                        self.config.seed ^ 0x5B1E,
                        user as u64,
                        service as u64,
                        u64::from(tick),
                    );
            rt *= spike;
        }
        rt.clamp(0.05, 19.5)
    }

    /// One full observation: the actual RT plus what gets *reported*.
    /// During outlier bursts a correlated subset (keyed per `(service,
    /// tick)`, so every user measuring that service that tick reports the
    /// same garbage — the "correlated" in correlated outliers) reports wild
    /// values; actual QoS is unaffected.
    pub fn observe(&self, user: usize, service: usize, tick: u32) -> RegimeObservation {
        let actual = self.actual(user, service, tick);
        let (phase, t) = self.timeline.phase_at(tick);
        let profile = phase_profile(phase, t);
        let mut reported = actual;
        if profile.outlier_rate > 0.0 {
            let burst = hash01(
                self.config.seed ^ 0x0071,
                service as u64,
                u64::from(tick),
                0,
            );
            if burst < profile.outlier_rate {
                // Alternate between absurdly large and negative garbage.
                reported = if burst < profile.outlier_rate * 0.5 {
                    actual * 400.0
                } else {
                    -actual
                };
            }
        }
        RegimeObservation { actual, reported }
    }
}

/// SplitMix64-style stateless mix of a seed and three coordinates.
fn mix(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(c.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in [0, 1) from the mixed coordinates.
fn hash01(seed: u64, a: u64, b: u64, c: u64) -> f64 {
    (mix(seed, a, b, c) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(spans: Vec<(RegimePhase, u32)>) -> RegimeWorld {
        RegimeWorld::new(
            RegimeWorldConfig::default(),
            RegimeTimeline::new(spans).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn labels_round_trip() {
        for phase in RegimePhase::ALL {
            assert_eq!(RegimePhase::parse(phase.label()).unwrap(), phase);
        }
        assert!(RegimePhase::parse("warp").is_err());
        assert!(!RegimePhase::Good.is_disruptive());
        assert!(RegimePhase::RegionalOutage.is_disruptive());
    }

    #[test]
    fn timeline_phase_lookup_and_bounds() {
        let tl = RegimeTimeline::new(vec![
            (RegimePhase::Good, 10),
            (RegimePhase::Congested, 5),
            (RegimePhase::Recovery, 5),
        ])
        .unwrap();
        assert_eq!(tl.total_ticks(), 20);
        assert_eq!(tl.phase_at(0), (RegimePhase::Good, 0));
        assert_eq!(tl.phase_at(9), (RegimePhase::Good, 9));
        assert_eq!(tl.phase_at(10), (RegimePhase::Congested, 0));
        assert_eq!(tl.phase_at(14), (RegimePhase::Congested, 4));
        assert_eq!(tl.phase_at(15), (RegimePhase::Recovery, 0));
        // Past the end: the final phase's clock keeps counting.
        assert_eq!(tl.phase_at(30), (RegimePhase::Recovery, 15));
        assert_eq!(tl.last_disruption_start(), Some(15));
        assert!(RegimeTimeline::new(vec![]).is_err());
        assert!(RegimeTimeline::new(vec![(RegimePhase::Good, 0)]).is_err());
    }

    #[test]
    fn world_is_deterministic_and_in_range() {
        let w1 = world(vec![(RegimePhase::Good, 20), (RegimePhase::Congested, 20)]);
        let w2 = world(vec![(RegimePhase::Good, 20), (RegimePhase::Congested, 20)]);
        for tick in 0..40 {
            for u in 0..4 {
                for s in 0..8 {
                    let a = w1.observe(u, s, tick);
                    let b = w2.observe(u, s, tick);
                    assert_eq!(a, b, "same seed must reproduce the world");
                    assert!(a.actual > 0.0 && a.actual < 20.0);
                    assert!(a.reported.is_finite());
                }
            }
        }
    }

    #[test]
    fn congestion_hurts_stressed_services_most() {
        let w = world(vec![(RegimePhase::Good, 10), (RegimePhase::Congested, 10)]);
        // Find the most and least stress-prone services.
        let (mut hi, mut lo) = (0, 0);
        for s in 1..w.services() {
            if w.stress_of(s) > w.stress_of(hi) {
                hi = s;
            }
            if w.stress_of(s) < w.stress_of(lo) {
                lo = s;
            }
        }
        let slowdown = |s: usize| w.actual(0, s, 15) / w.actual(0, s, 0);
        assert!(
            slowdown(hi) > 2.0,
            "stressed service must slow down: {}",
            slowdown(hi)
        );
        assert!(
            slowdown(lo) < 2.0,
            "unstressed service stays close to baseline: {}",
            slowdown(lo)
        );
    }

    #[test]
    fn recovery_decays_back_toward_baseline() {
        let w = world(vec![(RegimePhase::Recovery, 60)]);
        let mut hi = 0;
        for s in 1..w.services() {
            if w.stress_of(s) > w.stress_of(hi) {
                hi = s;
            }
        }
        let early = w.actual(0, hi, 1);
        let late = w.actual(0, hi, 59);
        assert!(
            late < early * 0.6,
            "recovery must relieve congestion: early {early} late {late}"
        );
    }

    #[test]
    fn regional_outage_darkens_exactly_one_region() {
        let w = world(vec![
            (RegimePhase::RegionalOutage, 10),
            (RegimePhase::Good, 10),
        ]);
        let mut dark = 0;
        for s in 0..w.services() {
            if w.available(s, 5) {
                assert_ne!(w.region_of(s), w.outage_region());
                assert!(w.actual(0, s, 5) < 20.0);
            } else {
                dark += 1;
                assert_eq!(w.region_of(s), w.outage_region());
                assert_eq!(w.actual(0, s, 5), w.config().timeout_rt);
            }
        }
        assert!(dark > 0, "some services must be in the outage region");
        assert!(dark < w.services(), "the outage must not be global");
        // Outside the span everything is back.
        assert!((0..w.services()).all(|s| w.available(s, 15)));
    }

    #[test]
    fn churn_storm_takes_down_a_fraction() {
        let w = world(vec![(RegimePhase::Good, 5), (RegimePhase::ChurnStorm, 10)]);
        let down = (0..w.services()).filter(|&s| !w.available(s, 8)).count();
        let frac = down as f64 / w.services() as f64;
        assert!(
            (0.1..=0.5).contains(&frac),
            "churn fraction {frac} out of band"
        );
        assert!((0..w.services()).all(|s| w.available(s, 2)), "pre-storm up");
    }

    #[test]
    fn outlier_burst_corrupts_reports_not_actuals() {
        let w = world(vec![(RegimePhase::OutlierBurst, 20)]);
        let mut corrupted = 0;
        let mut clean = 0;
        for tick in 0..20 {
            for s in 0..w.services() {
                let per_service: Vec<RegimeObservation> =
                    (0..3).map(|u| w.observe(u, s, tick)).collect();
                let bad = per_service
                    .iter()
                    .filter(|o| o.reported != o.actual)
                    .count();
                // Correlated: all users measuring (s, tick) agree on whether
                // it is corrupted.
                assert!(bad == 0 || bad == per_service.len());
                if bad > 0 {
                    corrupted += 1;
                    for o in &per_service {
                        assert!(o.actual < 20.0, "actual QoS is unaffected");
                        assert!(
                            o.reported < 0.0 || o.reported > 20.0,
                            "garbage must be out of range so guards can see it: {}",
                            o.reported
                        );
                    }
                } else {
                    clean += 1;
                }
            }
        }
        assert!(corrupted > 0, "burst must corrupt something");
        assert!(clean > corrupted, "burst must not corrupt everything");
    }

    #[test]
    fn fault_specs_only_for_transport_phases() {
        assert!(RegimePhase::Lossy.fault_spec().is_some());
        assert!(RegimePhase::ChurnStorm.fault_spec().is_some());
        assert!(RegimePhase::Good.fault_spec().is_none());
        assert!(RegimePhase::RegionalOutage.fault_spec().is_none());
        // No spec smuggles in a network verb (they are inert in-process).
        for phase in RegimePhase::ALL {
            if let Some(spec) = phase.fault_spec() {
                for verb in ["conn-reset", "slow-read", "blackhole"] {
                    assert!(!spec.contains(verb), "{spec} contains {verb}");
                }
            }
        }
    }

    #[test]
    fn invalid_worlds_rejected() {
        let tl = || RegimeTimeline::new(vec![(RegimePhase::Good, 1)]).unwrap();
        for config in [
            RegimeWorldConfig {
                users: 0,
                ..Default::default()
            },
            RegimeWorldConfig {
                services: 0,
                ..Default::default()
            },
            RegimeWorldConfig {
                regions: 0,
                ..Default::default()
            },
            RegimeWorldConfig {
                regions: 100,
                services: 10,
                ..Default::default()
            },
            RegimeWorldConfig {
                timeout_rt: f64::NAN,
                ..Default::default()
            },
            RegimeWorldConfig {
                outage_region: Some(4),
                ..Default::default()
            },
        ] {
            assert!(RegimeWorld::new(config, tl()).is_err(), "{config:?}");
        }
    }
}
