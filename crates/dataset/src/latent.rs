//! Ground-truth latent model behind the synthetic QoS matrix.
//!
//! Each attribute's log-domain matrix is `log_mean + b_i + c_j + u_i · s_j`
//! — a biased low-rank model. Users and services belong to regions (the
//! paper's "142 users in 22 countries, 4,500 services in 57 countries"):
//! both the bias and the latent vector of an entity blend a shared regional
//! component with an individual component, which creates the correlated
//! rows/columns that make the QoS matrix approximately low-rank (Fig. 9) and
//! makes collaborative filtering work at all ("close users ... experience
//! similar QoS on the same service").

use crate::config::{AttributeModel, DatasetConfig};
use qos_linalg::random::{normal, normal_vec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Latent state of all users and services for one QoS attribute.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatentModel {
    /// Per-user latent vectors (`users x true_rank`).
    user_factors: Vec<Vec<f64>>,
    /// Per-service latent vectors (`services x true_rank`).
    service_factors: Vec<Vec<f64>>,
    /// Per-user log-domain bias.
    user_bias: Vec<f64>,
    /// Per-service log-domain bias.
    service_bias: Vec<f64>,
    /// Region id of each user.
    user_region: Vec<usize>,
    /// Region id of each service.
    service_region: Vec<usize>,
    log_mean: f64,
}

impl LatentModel {
    /// Samples a latent model for `model` using a sub-seed of `config.seed`.
    ///
    /// `salt` decorrelates the two attributes (RT and TP get different latent
    /// structure, as they would in reality).
    pub fn generate(config: &DatasetConfig, model: &AttributeModel, salt: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let d = config.true_rank;

        // Latent entry scale: var(u · s) = d * var(u_k) * var(s_k); choosing
        // var(u_k) = var(s_k) = interaction_sigma / sqrt(d) gives
        // var(u · s) = interaction_sigma^2.
        let entry_sigma = (model.interaction_sigma / (d as f64).sqrt()).sqrt();
        let w = config.region_weight;

        // Regional components.
        let user_region_vecs: Vec<Vec<f64>> = (0..config.user_regions)
            .map(|_| normal_vec(&mut rng, d, 0.0, entry_sigma))
            .collect();
        let service_region_vecs: Vec<Vec<f64>> = (0..config.service_regions)
            .map(|_| normal_vec(&mut rng, d, 0.0, entry_sigma))
            .collect();
        let user_region_bias: Vec<f64> = (0..config.user_regions)
            .map(|_| normal(&mut rng, 0.0, model.user_sigma))
            .collect();
        let service_region_bias: Vec<f64> = (0..config.service_regions)
            .map(|_| normal(&mut rng, 0.0, model.service_sigma))
            .collect();

        let mut user_factors = Vec::with_capacity(config.users);
        let mut user_bias = Vec::with_capacity(config.users);
        let mut user_region = Vec::with_capacity(config.users);
        for _ in 0..config.users {
            let region = rng.random_range(0..config.user_regions);
            user_region.push(region);
            let own = normal_vec(&mut rng, d, 0.0, entry_sigma);
            let blended: Vec<f64> = own
                .iter()
                .zip(&user_region_vecs[region])
                .map(|(o, r)| w.sqrt() * r + (1.0 - w).sqrt() * o)
                .collect();
            user_factors.push(blended);
            user_bias.push(
                w.sqrt() * user_region_bias[region]
                    + (1.0 - w).sqrt() * normal(&mut rng, 0.0, model.user_sigma),
            );
        }

        let mut service_factors = Vec::with_capacity(config.services);
        let mut service_bias = Vec::with_capacity(config.services);
        let mut service_region = Vec::with_capacity(config.services);
        for _ in 0..config.services {
            let region = rng.random_range(0..config.service_regions);
            service_region.push(region);
            let own = normal_vec(&mut rng, d, 0.0, entry_sigma);
            let blended: Vec<f64> = own
                .iter()
                .zip(&service_region_vecs[region])
                .map(|(o, r)| w.sqrt() * r + (1.0 - w).sqrt() * o)
                .collect();
            service_factors.push(blended);
            service_bias.push(
                w.sqrt() * service_region_bias[region]
                    + (1.0 - w).sqrt() * normal(&mut rng, 0.0, model.service_sigma),
            );
        }

        Self {
            user_factors,
            service_factors,
            user_bias,
            service_bias,
            user_region,
            service_region,
            log_mean: model.log_mean,
        }
    }

    /// Log-domain base value for the pair `(user, service)` — the quantity
    /// the temporal model fluctuates around (Fig. 2a's "average QoS value").
    ///
    /// # Panics
    ///
    /// Panics if `user` or `service` is out of range.
    pub fn base_log_value(&self, user: usize, service: usize) -> f64 {
        self.log_mean
            + self.user_bias[user]
            + self.service_bias[service]
            + qos_linalg::vector::dot(&self.user_factors[user], &self.service_factors[service])
    }

    /// Number of users.
    pub fn users(&self) -> usize {
        self.user_factors.len()
    }

    /// Number of services.
    pub fn services(&self) -> usize {
        self.service_factors.len()
    }

    /// Region id of a user.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn user_region(&self, user: usize) -> usize {
        self.user_region[user]
    }

    /// Region id of a service.
    ///
    /// # Panics
    ///
    /// Panics if `service` is out of range.
    pub fn service_region(&self, service: usize) -> usize {
        self.service_region[service]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_model() -> (DatasetConfig, LatentModel) {
        let config = DatasetConfig::small();
        let model = LatentModel::generate(&config, &config.response_time.clone(), 1);
        (config, model)
    }

    #[test]
    fn dimensions_match_config() {
        let (config, model) = small_model();
        assert_eq!(model.users(), config.users);
        assert_eq!(model.services(), config.services);
    }

    #[test]
    fn deterministic_given_seed() {
        let config = DatasetConfig::small();
        let a = LatentModel::generate(&config, &config.response_time.clone(), 1);
        let b = LatentModel::generate(&config, &config.response_time.clone(), 1);
        assert_eq!(a.base_log_value(0, 0), b.base_log_value(0, 0));
        assert_eq!(a.base_log_value(5, 17), b.base_log_value(5, 17));
    }

    #[test]
    fn different_salts_decorrelate() {
        let config = DatasetConfig::small();
        let rt = LatentModel::generate(&config, &config.response_time.clone(), 1);
        let tp = LatentModel::generate(&config, &config.throughput.clone(), 2);
        assert_ne!(rt.base_log_value(0, 0), tp.base_log_value(0, 0));
    }

    #[test]
    fn regions_in_range() {
        let (config, model) = small_model();
        for u in 0..config.users {
            assert!(model.user_region(u) < config.user_regions);
        }
        for s in 0..config.services {
            assert!(model.service_region(s) < config.service_regions);
        }
    }

    #[test]
    fn base_values_vary_across_users() {
        // Fig. 2(b): different users see very different QoS on one service.
        let (config, model) = small_model();
        let values: Vec<f64> = (0..config.users)
            .map(|u| model.base_log_value(u, 0))
            .collect();
        let spread = qos_linalg::stats::std_dev(&values).unwrap();
        assert!(spread > 0.2, "user spread too small: {spread}");
    }

    #[test]
    fn same_region_users_are_more_similar() {
        // Collect pairwise |Δ base| for same-region vs cross-region user
        // pairs over a few services; same-region pairs should be closer on
        // average (this is the property UPCC exploits).
        let config = DatasetConfig {
            users: 60,
            region_weight: 0.8,
            ..DatasetConfig::small()
        };
        let model = LatentModel::generate(&config, &config.response_time.clone(), 1);
        let mut same = Vec::new();
        let mut cross = Vec::new();
        for a in 0..config.users {
            for b in (a + 1)..config.users {
                let mut diff = 0.0;
                for s in 0..10 {
                    diff += (model.base_log_value(a, s) - model.base_log_value(b, s)).abs();
                }
                if model.user_region(a) == model.user_region(b) {
                    same.push(diff);
                } else {
                    cross.push(diff);
                }
            }
        }
        let same_mean = qos_linalg::stats::mean(&same).unwrap();
        let cross_mean = qos_linalg::stats::mean(&cross).unwrap();
        assert!(
            same_mean < cross_mean,
            "same-region {same_mean} should be below cross-region {cross_mean}"
        );
    }

    #[test]
    fn log_matrix_is_low_rank() {
        // The log-domain matrix must have rank <= true_rank + 2 exactly.
        let (config, model) = small_model();
        let m = qos_linalg::DenseMatrix::from_fn(config.users, config.services, |i, j| {
            model.base_log_value(i, j)
        });
        let sv = qos_linalg::svd::normalized_singular_values(&m).unwrap();
        // Threshold well above the Jacobi solver's numerical noise floor.
        let rank = sv.iter().filter(|&&v| v > 1e-6).count();
        assert!(
            rank <= config.true_rank + 2,
            "rank {rank} exceeds {} + 2",
            config.true_rank
        );
    }
}
