//! Property tests for the metrics layer (ISSUE 4 satellite): histogram
//! bucket monotonicity, counter saturation instead of overflow, and
//! snapshot JSON round-trip (serialize → parse → equal).

use proptest::prelude::*;
use qos_obs::{
    bucket_index, bucket_upper_bound, Counter, Histogram, Json, MetricsRegistry, BUCKETS,
};

proptest! {
    /// Bucket assignment is monotone: a larger sample can never land in a
    /// smaller bucket. This is the invariant that makes the cumulative
    /// bucket walk a valid CDF (and hence the percentile estimates valid).
    #[test]
    fn histogram_bucket_assignment_is_monotone(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    /// Every value falls inside (or below, for the open-ended top bucket)
    /// its bucket's upper bound, and bucket bounds themselves are strictly
    /// increasing.
    #[test]
    fn histogram_bucket_bounds_contain_their_values(v in 0u64..u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        if i < BUCKETS - 1 {
            prop_assert!(v <= bucket_upper_bound(i));
        }
        if i > 0 {
            prop_assert!(v > bucket_upper_bound(i - 1));
        }
    }

    /// Quantile estimates are monotone in q, bounded by the exact max, and
    /// never below the exact minimum's bucket floor.
    #[test]
    fn histogram_quantiles_are_ordered_and_bounded(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..200),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let h = Histogram::new();
        let mut max = 0u64;
        for &v in &values {
            h.record(v);
            max = max.max(v);
        }
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(h.quantile(lo) <= h.quantile(hi));
        prop_assert!(h.quantile(hi) <= h.max());
        prop_assert_eq!(h.max(), max);
        prop_assert_eq!(h.count(), values.len() as u64);
    }

    /// Counters saturate at u64::MAX instead of wrapping, from any starting
    /// point and increment size.
    #[test]
    fn counter_saturates_instead_of_overflowing(
        start in 0u64..u64::MAX,
        add in 0u64..u64::MAX,
    ) {
        let c = Counter::new();
        c.set(start);
        c.add(add);
        prop_assert_eq!(c.get(), start.saturating_add(add));
        c.set(u64::MAX);
        c.add(add);
        prop_assert_eq!(c.get(), u64::MAX);
    }

    /// A snapshot populated with arbitrary metric values survives
    /// serialize → parse → equal, in both compact and pretty form.
    #[test]
    fn snapshot_json_round_trips(
        counter_vals in proptest::collection::vec(0u64..u64::MAX, 1..8),
        gauge_vals in proptest::collection::vec(-1.0e12f64..1.0e12, 1..8),
        hist_vals in proptest::collection::vec(0u64..10_000_000_000, 1..64),
        with_trace in proptest::bool::ANY,
    ) {
        let reg = MetricsRegistry::new();
        for (i, &v) in counter_vals.iter().enumerate() {
            let c = reg.counter_labeled("prop.counter", &format!("c{i}"));
            c.set(v);
        }
        for (i, &v) in gauge_vals.iter().enumerate() {
            reg.gauge_labeled("prop.gauge", &format!("g{i}")).set(v);
        }
        let h = reg.histogram("prop.hist");
        for &v in &hist_vals {
            h.record(v);
        }
        if with_trace {
            reg.trace().event("prop", "detail with \"quotes\" and \\ slashes\n");
        }
        let snap = reg.snapshot_json(with_trace);
        let compact = Json::parse(&snap.to_string_compact());
        prop_assert!(compact.is_ok());
        prop_assert_eq!(compact.ok(), Some(snap.clone()));
        let pretty = Json::parse(&snap.to_string_pretty());
        prop_assert!(pretty.is_ok());
        prop_assert_eq!(pretty.ok(), Some(snap));
    }
}
