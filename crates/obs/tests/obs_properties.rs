//! Property tests for the metrics layer: histogram bucket monotonicity,
//! counter saturation instead of overflow, snapshot JSON round-trip
//! (serialize → parse → equal), and Prometheus exposition round-trip
//! (render → parse, names valid, values identical).

use proptest::prelude::*;
use qos_obs::{
    bucket_index, bucket_upper_bound, is_valid_metric_name, parse_exposition, render_prometheus,
    Counter, Histogram, Json, MetricsRegistry, BUCKETS,
};
use std::collections::BTreeMap;

/// Characters for arbitrary snapshot keys: ordinary name characters plus
/// everything the sanitizer must neutralize (dots, dashes, spaces, slashes,
/// quotes, backslashes, non-ASCII, a leading-digit risk).
const KEY_CHARS: &[char] = &[
    'a', 'q', 'Z', '0', '9', '_', '.', '-', ' ', '/', ':', '"', '\\', 'é', 'µ', '{', '}',
];

fn key_from(indices: &[usize], unique: usize) -> String {
    let mut key: String = indices
        .iter()
        .map(|&i| KEY_CHARS[i % KEY_CHARS.len()])
        .collect();
    // A unique numeric suffix keeps the *snapshot* keys distinct so every
    // entry renders exactly one sample (sanitizer collisions downstream are
    // the renderer's job to disambiguate, and are covered by its unit tests).
    key.push_str(&format!(".k{unique}"));
    key
}

proptest! {
    /// Bucket assignment is monotone: a larger sample can never land in a
    /// smaller bucket. This is the invariant that makes the cumulative
    /// bucket walk a valid CDF (and hence the percentile estimates valid).
    #[test]
    fn histogram_bucket_assignment_is_monotone(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    /// Every value falls inside (or below, for the open-ended top bucket)
    /// its bucket's upper bound, and bucket bounds themselves are strictly
    /// increasing.
    #[test]
    fn histogram_bucket_bounds_contain_their_values(v in 0u64..u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        if i < BUCKETS - 1 {
            prop_assert!(v <= bucket_upper_bound(i));
        }
        if i > 0 {
            prop_assert!(v > bucket_upper_bound(i - 1));
        }
    }

    /// Quantile estimates are monotone in q, bounded by the exact max, and
    /// never below the exact minimum's bucket floor.
    #[test]
    fn histogram_quantiles_are_ordered_and_bounded(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..200),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let h = Histogram::new();
        let mut max = 0u64;
        for &v in &values {
            h.record(v);
            max = max.max(v);
        }
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(h.quantile(lo) <= h.quantile(hi));
        prop_assert!(h.quantile(hi) <= h.max());
        prop_assert_eq!(h.max(), max);
        prop_assert_eq!(h.count(), values.len() as u64);
    }

    /// Counters saturate at u64::MAX instead of wrapping, from any starting
    /// point and increment size.
    #[test]
    fn counter_saturates_instead_of_overflowing(
        start in 0u64..u64::MAX,
        add in 0u64..u64::MAX,
    ) {
        let c = Counter::new();
        c.set(start);
        c.add(add);
        prop_assert_eq!(c.get(), start.saturating_add(add));
        c.set(u64::MAX);
        c.add(add);
        prop_assert_eq!(c.get(), u64::MAX);
    }

    /// A snapshot populated with arbitrary metric values survives
    /// serialize → parse → equal, in both compact and pretty form.
    #[test]
    fn snapshot_json_round_trips(
        counter_vals in proptest::collection::vec(0u64..u64::MAX, 1..8),
        gauge_vals in proptest::collection::vec(-1.0e12f64..1.0e12, 1..8),
        hist_vals in proptest::collection::vec(0u64..10_000_000_000, 1..64),
        with_trace in proptest::bool::ANY,
    ) {
        let reg = MetricsRegistry::new();
        for (i, &v) in counter_vals.iter().enumerate() {
            let c = reg.counter_labeled("prop.counter", &format!("c{i}"));
            c.set(v);
        }
        for (i, &v) in gauge_vals.iter().enumerate() {
            reg.gauge_labeled("prop.gauge", &format!("g{i}")).set(v);
        }
        let h = reg.histogram("prop.hist");
        for &v in &hist_vals {
            h.record(v);
        }
        if with_trace {
            reg.trace().event("prop", "detail with \"quotes\" and \\ slashes\n");
        }
        let snap = reg.snapshot_json(with_trace);
        let compact = Json::parse(&snap.to_string_compact());
        prop_assert!(compact.is_ok());
        prop_assert_eq!(compact.ok(), Some(snap.clone()));
        let pretty = Json::parse(&snap.to_string_pretty());
        prop_assert!(pretty.is_ok());
        prop_assert_eq!(pretty.ok(), Some(snap));
    }

    /// Rendering an arbitrary snapshot to Prometheus text 0.0.4 and parsing
    /// it back yields exactly one sample per counter/gauge entry, every
    /// emitted name matches `[a-zA-Z_][a-zA-Z0-9_]*` (with the `amf_`
    /// prefix), and every value survives bit-identically — counters because
    /// they are capped below 2^53, gauges because the renderer emits the
    /// shortest exact decimal form.
    #[test]
    fn prometheus_exposition_round_trips_values_and_names(
        counters in proptest::collection::vec(
            (proptest::collection::vec(0usize..64, 1..10), 0u64..(1u64 << 53)),
            1..8,
        ),
        gauges in proptest::collection::vec(
            (proptest::collection::vec(0usize..64, 1..10), -1.0e12f64..1.0e12),
            0..8,
        ),
    ) {
        let mut counter_map = BTreeMap::new();
        for (i, (chars, v)) in counters.iter().enumerate() {
            counter_map.insert(key_from(chars, i), Json::UInt(*v));
        }
        let mut gauge_map = BTreeMap::new();
        for (i, (chars, v)) in gauges.iter().enumerate() {
            gauge_map.insert(key_from(chars, i), Json::Num(*v));
        }
        let mut snapshot = BTreeMap::new();
        snapshot.insert("counters".to_string(), Json::Obj(counter_map.clone()));
        snapshot.insert("gauges".to_string(), Json::Obj(gauge_map.clone()));
        let text = render_prometheus(&Json::Obj(snapshot));

        let samples = parse_exposition(&text).expect("rendered exposition must parse");
        prop_assert_eq!(samples.len(), counter_map.len() + gauge_map.len());
        for (key, _) in &samples {
            let name = &key[..key.find('{').unwrap_or(key.len())];
            prop_assert!(is_valid_metric_name(name), "invalid name {:?}", name);
            prop_assert!(name.starts_with("amf_"), "unprefixed name {:?}", name);
        }
        // Counters lead the document in snapshot (sorted-key) order, gauges
        // follow; compare the full value sequence exactly.
        let expected: Vec<f64> = counter_map
            .values()
            .map(|v| v.as_u64().unwrap_or(0) as f64)
            .chain(gauge_map.values().map(|v| v.as_f64().unwrap_or(f64::NAN)))
            .collect();
        let got: Vec<f64> = samples.iter().map(|&(_, v)| v).collect();
        prop_assert_eq!(got, expected);
    }
}
