//! Minimal JSON value model with a writer and a strict parser.
//!
//! The offline build has no `serde_json`, and the snapshot schema
//! (`amf-obs/v1`) needs both directions: the writer to emit snapshots, the
//! parser to pin the serialize → parse → equal round-trip in tests and to
//! let `bench-report` embed snapshots verbatim. Numbers are kept as `f64`
//! except for `u64`-exact integers, which round-trip losslessly — counter
//! values near `u64::MAX` (saturation) must survive a round trip.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys are ordered (BTreeMap) so output is
/// deterministic regardless of insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integers that fit `u64` exactly (counters, bucket counts).
    UInt(u64),
    /// Everything else numeric.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys are ordered for deterministic output.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Inserts into an object; panics if `self` is not an object (programming
    /// error in snapshot construction, not a data error).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        match self {
            Json::Obj(map) => {
                map.insert(key.to_string(), value);
            }
            _ => panic!("Json::set on non-object"),
        }
        self
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Unsigned-integer payload (exact `UInt`, or a `Num` that is one).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// Numeric payload as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Array payload.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a compact JSON string. Non-finite floats (which JSON
    /// cannot represent) are emitted as `null`.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation (human-facing CLI output).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(map) => {
                let entries: Vec<_> = map.iter().collect();
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    let (key, value) = entries[i];
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                });
            }
        }
    }

    /// Parses a JSON document. Strict: rejects trailing garbage, bad
    /// escapes, malformed numbers, and nesting deeper than
    /// [`MAX_PARSE_DEPTH`] levels (a depth *error*, never a stack overflow —
    /// the parser is recursive-descent, so hostile input must be bounded).
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value(0)?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters after value"));
        }
        Ok(value)
    }
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Keep integral floats readable and exactly re-parseable.
        let _ = write!(out, "{:.1}", v);
    } else {
        // 17 significant digits: shortest representation guaranteeing an
        // exact f64 round trip.
        let _ = write!(out, "{:.17e}", v);
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

/// Maximum container nesting the parser accepts. Every `amf-obs` document is
/// at most ~5 levels deep; 64 leaves generous headroom while keeping the
/// recursive-descent parser's stack use bounded on adversarial input.
pub const MAX_PARSE_DEPTH: usize = 64;

/// Parse failure: byte offset plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            at: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.err("nesting deeper than MAX_PARSE_DEPTH"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: accept but map lone
                            // surrogates to U+FFFD rather than erroring —
                            // the writer never emits them.
                            let c = if (0xD800..0xDC00).contains(&code)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let low = self.hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined).unwrap_or('\u{FFFD}')
                            } else {
                                char::from_u32(code).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_integer = true;
        if self.peek() == Some(b'.') {
            is_integer = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_integer = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_integer {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-1.5").unwrap(), Json::Num(-1.5));
        assert_eq!(Json::parse("\"hi\\n\"").unwrap(), Json::Str("hi\n".into()));
    }

    #[test]
    fn u64_max_round_trips_exactly() {
        let v = Json::UInt(u64::MAX);
        let text = v.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn nested_structures_round_trip() {
        let mut obj = Json::obj();
        obj.set("schema", Json::Str("amf-obs/v1".into()));
        obj.set(
            "values",
            Json::Arr(vec![Json::UInt(1), Json::Num(0.5), Json::Null]),
        );
        let mut inner = Json::obj();
        inner.set("k\"ey", Json::Bool(false));
        obj.set("nested", inner);
        for text in [obj.to_string_compact(), obj.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), obj);
        }
    }

    #[test]
    fn f64_precision_round_trips() {
        for v in [0.1, 1.0 / 3.0, 1e-300, 9.87654321e120, -2.5e-7] {
            let text = Json::Num(v).to_string_compact();
            let parsed = Json::parse(&text).unwrap();
            assert_eq!(parsed.as_f64().unwrap().to_bits(), v.to_bits(), "{text}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "1 2", "nul", "--1"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn nesting_at_the_depth_limit_parses() {
        let deep = format!(
            "{}1{}",
            "[".repeat(MAX_PARSE_DEPTH),
            "]".repeat(MAX_PARSE_DEPTH)
        );
        assert!(Json::parse(&deep).is_ok());
    }

    #[test]
    fn pathological_nesting_is_rejected_not_overflowed() {
        // 10k-deep input: without the depth guard this would recurse 10k
        // frames and risk a stack overflow; with it, parsing must return a
        // depth error almost immediately.
        for (open, close) in [("[", "]"), ("{\"k\":", "}")] {
            let deep = format!("{}1{}", open.repeat(10_000), close.repeat(10_000));
            let err = Json::parse(&deep).expect_err("depth must be rejected");
            assert_eq!(err.message, "nesting deeper than MAX_PARSE_DEPTH");
        }
    }
}
