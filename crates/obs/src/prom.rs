//! Prometheus text-exposition (format 0.0.4) rendering of `amf-obs/v1`
//! snapshots.
//!
//! The registry keys metrics as `family` or `family.label` (dot-joined, see
//! [`crate::MetricsRegistry::counter_labeled`]); a known-family table maps
//! the labeled ones back to proper `{label="value"}` pairs, everything else
//! becomes a plain (sanitized) metric name. Rendering works on the JSON
//! snapshot rather than the live registry so the same code serves both a
//! process-local registry and the merged service document.
//!
//! Exposition rules implemented here:
//!
//! * names are sanitized to `[a-zA-Z_][a-zA-Z0-9_]*` and prefixed `amf_`;
//!   counters additionally get the conventional `_total` suffix;
//! * label values are escaped (`\\`, `\"`, `\n`);
//! * histograms emit *cumulative* `_bucket{le="..."}` samples ending in
//!   `le="+Inf"`, plus `_sum` and `_count` — and do so even with zero
//!   observations (an empty histogram is still a valid exposition);
//! * every family gets one `# HELP` line (carrying the original dotted
//!   registry key) and one `# TYPE` line.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::Json;
use crate::metrics::{bucket_upper_bound, BUCKETS};

/// The `Content-Type` a scrape endpoint must declare for this format.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Registry families whose snapshot keys are `family.label`: the suffix
/// after the family prefix is re-exposed as this label. Longest prefix wins,
/// so `service.predict_source_interval` is matched before
/// `service.predict_source` could mis-split it.
const LABELED_FAMILIES: &[(&str, &str)] = &[
    ("engine.chunk_apply_ns", "shard"),
    ("engine.shard_backlog", "shard"),
    ("guard.rejected", "reason"),
    ("model.drift_alarms", "side"),
    ("service.predict_source", "source"),
    ("service.predict_source_interval", "source"),
];

/// Splits a snapshot key into `(family, Some((label_name, label_value)))`
/// for known labeled families, or `(key, None)` otherwise.
fn split_key(key: &str) -> (&str, Option<(&'static str, &str)>) {
    let mut best: Option<(&str, &'static str)> = None;
    for &(family, label) in LABELED_FAMILIES {
        if key.len() > family.len() + 1
            && key.starts_with(family)
            && key.as_bytes()[family.len()] == b'.'
            && best.is_none_or(|(f, _)| family.len() > f.len())
        {
            best = Some((family, label));
        }
    }
    match best {
        Some((family, label)) => (family, Some((label, &key[family.len() + 1..]))),
        None => (key, None),
    }
}

/// Sanitizes a dotted registry family into a Prometheus metric name:
/// `amf_` prefix, every byte outside `[a-zA-Z0-9_]` replaced by `_`. The
/// fixed prefix guarantees the leading character is legal.
pub fn sanitize_metric_name(family: &str) -> String {
    let mut out = String::with_capacity(family.len() + 4);
    out.push_str("amf_");
    for c in family.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn escape_label_value(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn escape_help(out: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Writes a sample value the Prometheus text parser accepts: `NaN`,
/// `+Inf`/`-Inf`, or the shortest exact decimal form of the float.
fn write_value(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else {
        let _ = write!(out, "{v:?}");
    }
}

/// One family's samples, grouped: `(label_value, metric json)` in snapshot
/// (sorted) order. `label_name` is `None` for plain families.
struct Family<'a> {
    raw: &'a str,
    label_name: Option<&'static str>,
    samples: Vec<(Option<&'a str>, &'a Json)>,
}

/// Groups one snapshot section's keys into families, preserving the
/// BTreeMap's sorted key order.
fn group_section<'a>(section: Option<&'a Json>) -> Vec<Family<'a>> {
    let Some(Json::Obj(map)) = section else {
        return Vec::new();
    };
    let mut families: Vec<Family<'a>> = Vec::new();
    for (key, value) in map {
        let (family, label) = split_key(key);
        let (label_name, label_value) = match label {
            Some((name, value)) => (Some(name), Some(value)),
            None => (None, None),
        };
        match families.last_mut() {
            Some(last) if last.raw == family && last.label_name == label_name => {
                last.samples.push((label_value, value));
            }
            _ => families.push(Family {
                raw: family,
                label_name,
                samples: vec![(label_value, value)],
            }),
        }
    }
    families
}

/// Assigns each family a unique sanitized exposition name. Distinct dotted
/// families can sanitize to the same string (`a.b` and `a_b`); later ones
/// (snapshot key order) get a deterministic `_2`, `_3`, ... suffix so the
/// exposition never emits two families under one name.
fn assign_names(families: &[Family<'_>], used: &mut BTreeMap<String, u32>) -> Vec<String> {
    families
        .iter()
        .map(|family| {
            let base = sanitize_metric_name(family.raw);
            let n = used.entry(base.clone()).or_insert(0);
            *n += 1;
            if *n == 1 {
                base
            } else {
                format!("{base}_{n}")
            }
        })
        .collect()
}

fn write_header(out: &mut String, name: &str, raw: &str, kind: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    escape_help(out, raw);
    out.push('\n');
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Writes `{label="value"}` (or nothing), with an optional extra `le` pair
/// for histogram buckets.
fn write_labels(out: &mut String, label: Option<(&str, &str)>, le: Option<&str>) {
    if label.is_none() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    if let Some((name, value)) = label {
        out.push_str(name);
        out.push_str("=\"");
        escape_label_value(out, value);
        out.push('"');
        first = false;
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        escape_label_value(out, le);
        out.push('"');
    }
    out.push('}');
}

/// Renders an `amf-obs/v1` snapshot (see [`crate::MetricsRegistry::snapshot_json`])
/// as Prometheus text-exposition format 0.0.4. The trace section is not
/// exposed — traces are events, not time series.
pub fn render_prometheus(snapshot: &Json) -> String {
    let mut out = String::new();
    let mut used = BTreeMap::new();

    let counters = group_section(snapshot.get("counters"));
    for (family, name) in counters.iter().zip(assign_names(&counters, &mut used)) {
        let name = format!("{name}_total");
        write_header(&mut out, &name, family.raw, "counter");
        for &(label_value, value) in &family.samples {
            out.push_str(&name);
            write_labels(&mut out, family.label_name.zip(label_value), None);
            out.push(' ');
            let _ = write!(out, "{}", value.as_u64().unwrap_or(0));
            out.push('\n');
        }
    }

    let gauges = group_section(snapshot.get("gauges"));
    for (family, name) in gauges.iter().zip(assign_names(&gauges, &mut used)) {
        write_header(&mut out, &name, family.raw, "gauge");
        for &(label_value, value) in &family.samples {
            out.push_str(&name);
            write_labels(&mut out, family.label_name.zip(label_value), None);
            out.push(' ');
            // The JSON writer emits non-finite gauges as `null`; the text
            // format can say NaN explicitly.
            write_value(&mut out, value.as_f64().unwrap_or(f64::NAN));
            out.push('\n');
        }
    }

    let histograms = group_section(snapshot.get("histograms"));
    for (family, name) in histograms.iter().zip(assign_names(&histograms, &mut used)) {
        write_header(&mut out, &name, family.raw, "histogram");
        for &(label_value, value) in &family.samples {
            let label = family.label_name.zip(label_value);
            let counts: Vec<u64> = value
                .get("buckets")
                .and_then(Json::as_arr)
                .map(|buckets| buckets.iter().map(|b| b.as_u64().unwrap_or(0)).collect())
                .unwrap_or_default();
            let mut cumulative = 0u64;
            let mut le = String::new();
            for i in 0..BUCKETS {
                cumulative = cumulative.saturating_add(counts.get(i).copied().unwrap_or(0));
                // The last bucket is the overflow bucket (everything at or
                // above its lower bound), so its exposition bound is +Inf.
                le.clear();
                if i + 1 < BUCKETS {
                    let _ = write!(le, "{}", bucket_upper_bound(i));
                } else {
                    le.push_str("+Inf");
                }
                out.push_str(&name);
                out.push_str("_bucket");
                write_labels(&mut out, label, Some(&le));
                let _ = writeln!(out, " {cumulative}");
            }
            out.push_str(&name);
            out.push_str("_sum");
            write_labels(&mut out, label, None);
            let _ = writeln!(
                out,
                " {}",
                value.get("sum_ns").and_then(Json::as_u64).unwrap_or(0)
            );
            out.push_str(&name);
            out.push_str("_count");
            write_labels(&mut out, label, None);
            let _ = writeln!(
                out,
                " {}",
                value.get("count").and_then(Json::as_u64).unwrap_or(0)
            );
        }
    }

    out
}

/// Strict line parser for the subset of the exposition format this module
/// emits — used by the round-trip tests and the CLI smoke tooling, not by
/// any hot path. Returns `(sample_key, value)` pairs in document order,
/// where `sample_key` is the metric name plus its verbatim `{...}` label
/// block (if any). Comment (`#`) and blank lines are skipped after
/// validation.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_exposition(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let rest = comment.trim_start();
            if !(rest.starts_with("HELP ") || rest.starts_with("TYPE ")) {
                return Err(format!("line {}: unknown comment form", lineno + 1));
            }
            continue;
        }
        let (key, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value separator", lineno + 1))?;
        let name_end = key.find('{').unwrap_or(key.len());
        let name = &key[..name_end];
        if !is_valid_metric_name(name) {
            return Err(format!("line {}: invalid metric name {name:?}", lineno + 1));
        }
        if name_end < key.len() && !key.ends_with('}') {
            return Err(format!("line {}: unterminated label block", lineno + 1));
        }
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: bad sample value {value:?}", lineno + 1))?;
        samples.push((key.to_string(), value));
    }
    Ok(samples)
}

/// Whether `name` matches the Prometheus metric-name grammar
/// `[a-zA-Z_][a-zA-Z0-9_]*` (colons excluded on purpose: they are reserved
/// for recording rules, and this exposition never emits them).
pub fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn sample(samples: &[(String, f64)], key: &str) -> Option<f64> {
        samples
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, value)| value)
    }

    #[test]
    fn counters_and_gauges_render_with_sanitized_names() {
        let reg = MetricsRegistry::new();
        reg.counter("engine.jobs_dispatched").add(7);
        reg.gauge("model.mre_w").set(0.25);
        let text = render_prometheus(&reg.snapshot_json(false));
        let samples = parse_exposition(&text).expect("output parses");
        assert_eq!(
            sample(&samples, "amf_engine_jobs_dispatched_total"),
            Some(7.0)
        );
        assert_eq!(sample(&samples, "amf_model_mre_w"), Some(0.25));
    }

    #[test]
    fn labeled_families_expose_label_pairs() {
        let reg = MetricsRegistry::new();
        reg.counter_labeled("guard.rejected", "not_finite").add(3);
        reg.counter_labeled("guard.rejected", "outlier").add(1);
        reg.counter_labeled("service.predict_source_interval", "model")
            .add(2);
        let text = render_prometheus(&reg.snapshot_json(false));
        let samples = parse_exposition(&text).expect("output parses");
        assert_eq!(
            sample(&samples, "amf_guard_rejected_total{reason=\"not_finite\"}"),
            Some(3.0)
        );
        assert_eq!(
            sample(&samples, "amf_guard_rejected_total{reason=\"outlier\"}"),
            Some(1.0)
        );
        // Longest-prefix match: the `_interval` family keeps its own name.
        assert_eq!(
            sample(
                &samples,
                "amf_service_predict_source_interval_total{source=\"model\"}"
            ),
            Some(2.0)
        );
        // One HELP/TYPE pair per family, not per label.
        assert_eq!(
            text.matches("# TYPE amf_guard_rejected_total counter")
                .count(),
            1
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_in_inf() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("model.observe_ns");
        h.record(1); // bucket 1
        h.record(1); // bucket 1
        h.record(100); // bucket 7
        let text = render_prometheus(&reg.snapshot_json(false));
        let samples = parse_exposition(&text).expect("output parses");

        let buckets: Vec<f64> = samples
            .iter()
            .filter(|(k, _)| k.starts_with("amf_model_observe_ns_bucket{"))
            .map(|&(_, value)| value)
            .collect();
        assert_eq!(buckets.len(), BUCKETS);
        assert!(
            buckets.windows(2).all(|w| w[0] <= w[1]),
            "buckets must be cumulative: {buckets:?}"
        );
        assert_eq!(
            sample(&samples, "amf_model_observe_ns_bucket{le=\"+Inf\"}"),
            Some(3.0)
        );
        assert_eq!(
            sample(&samples, "amf_model_observe_ns_bucket{le=\"1\"}"),
            Some(2.0)
        );
        assert_eq!(sample(&samples, "amf_model_observe_ns_count"), Some(3.0));
        assert_eq!(sample(&samples, "amf_model_observe_ns_sum"), Some(102.0));
    }

    #[test]
    fn empty_histogram_is_still_valid_exposition() {
        // The zero-observation edge case: sum/count/every bucket must render
        // (all zero) with the +Inf bucket present, or a scraper that joins
        // `_count` against `_bucket` breaks on a freshly-started process.
        let reg = MetricsRegistry::new();
        let _ = reg.histogram("engine.drain_ns");
        let text = render_prometheus(&reg.snapshot_json(false));
        let samples = parse_exposition(&text).expect("output parses");
        assert_eq!(
            sample(&samples, "amf_engine_drain_ns_bucket{le=\"+Inf\"}"),
            Some(0.0)
        );
        assert_eq!(sample(&samples, "amf_engine_drain_ns_sum"), Some(0.0));
        assert_eq!(sample(&samples, "amf_engine_drain_ns_count"), Some(0.0));
        let bucket_lines = samples
            .iter()
            .filter(|(k, _)| k.starts_with("amf_engine_drain_ns_bucket{"))
            .count();
        assert_eq!(bucket_lines, BUCKETS);
        assert!(text.contains("# TYPE amf_engine_drain_ns histogram"));
    }

    #[test]
    fn deadline_slack_histogram_round_trips_through_exposition() {
        // The serving plane records every well-formed request's deadline
        // slack at admission (`serve.deadline_slack_us`, PR 10); a scraper
        // must get the family back as a parseable histogram.
        let reg = MetricsRegistry::new();
        let h = reg.histogram("serve.deadline_slack_us");
        h.record(250);
        h.record(1_000);
        h.record(24_000);
        let text = render_prometheus(&reg.snapshot_json(false));
        let samples = parse_exposition(&text).expect("output parses");
        assert!(text.contains("# TYPE amf_serve_deadline_slack_us histogram"));
        assert_eq!(
            sample(&samples, "amf_serve_deadline_slack_us_count"),
            Some(3.0)
        );
        assert_eq!(
            sample(&samples, "amf_serve_deadline_slack_us_sum"),
            Some(25_250.0)
        );
        assert_eq!(
            sample(&samples, "amf_serve_deadline_slack_us_bucket{le=\"+Inf\"}"),
            Some(3.0)
        );
        let buckets: Vec<f64> = samples
            .iter()
            .filter(|(k, _)| k.starts_with("amf_serve_deadline_slack_us_bucket{"))
            .map(|&(_, value)| value)
            .collect();
        assert_eq!(buckets.len(), BUCKETS);
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn names_collide_deterministically_instead_of_duplicating() {
        let reg = MetricsRegistry::new();
        reg.counter("model.hits").add(1);
        reg.counter("model:hits").add(2);
        let text = render_prometheus(&reg.snapshot_json(false));
        let samples = parse_exposition(&text).expect("output parses");
        // Snapshot key order is lexicographic: `model.hits` < `model:hits`.
        assert_eq!(sample(&samples, "amf_model_hits_total"), Some(1.0));
        assert_eq!(sample(&samples, "amf_model_hits_2_total"), Some(2.0));
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter_labeled("guard.rejected", "a\"b\\c\nd").add(9);
        let text = render_prometheus(&reg.snapshot_json(false));
        assert!(
            text.contains("amf_guard_rejected_total{reason=\"a\\\"b\\\\c\\nd\"} 9"),
            "{text}"
        );
        parse_exposition(&text).expect("escaped output still parses");
    }

    #[test]
    fn non_finite_gauges_render_as_prometheus_keywords() {
        let reg = MetricsRegistry::new();
        reg.gauge("g.nan").set(f64::NAN);
        reg.gauge("g.inf").set(f64::INFINITY);
        let text = render_prometheus(&reg.snapshot_json(false));
        assert!(text.contains("amf_g_nan NaN"));
        assert!(text.contains("amf_g_inf +Inf"));
        let samples = parse_exposition(&text).expect("parses");
        assert!(sample(&samples, "amf_g_nan").expect("present").is_nan());
        assert_eq!(sample(&samples, "amf_g_inf"), Some(f64::INFINITY));
    }

    #[test]
    fn metric_name_grammar() {
        assert!(is_valid_metric_name("amf_predict_ns"));
        assert!(is_valid_metric_name("_x9"));
        assert!(!is_valid_metric_name(""));
        assert!(!is_valid_metric_name("9x"));
        assert!(!is_valid_metric_name("a-b"));
        assert!(!is_valid_metric_name("a.b"));
    }
}
