//! Interval snapshot recorder: a background scraper thread that appends
//! `amf-obs-ts/v1` JSONL telemetry lines to a size-rotated log file and
//! keeps a bounded in-memory ring of recent snapshots for queries.
//!
//! Each line is one self-contained JSON object:
//!
//! ```json
//! {"schema":"amf-obs-ts/v1","seq":12,"at_ms":12000,"unix_ms":…,"snapshot":{…}}
//! ```
//!
//! where `snapshot` is whatever the snapshot source returned (normally an
//! `amf-obs/v1` document). The recorder never panics the process over I/O:
//! write failures are counted and recording continues, so a full disk
//! degrades telemetry, not serving.

use std::collections::VecDeque;
use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::json::Json;

/// Telemetry-line schema identifier (`schema` field of every JSONL line).
pub const TS_SCHEMA: &str = "amf-obs-ts/v1";

/// Tuning for a [`SnapshotRecorder`].
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Time between snapshots.
    pub interval: Duration,
    /// JSONL output path; `None` records to the in-memory ring only.
    pub path: Option<PathBuf>,
    /// Rotate the log before a line would push it past this many bytes.
    pub max_bytes: u64,
    /// Rotated generations kept (`log.1` … `log.N`); 0 truncates in place.
    pub max_rotated: usize,
    /// Snapshots retained in the in-memory ring.
    pub ring_capacity: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_secs(1),
            path: None,
            max_bytes: 4 * 1024 * 1024,
            max_rotated: 2,
            ring_capacity: 128,
        }
    }
}

type SnapshotFn = dyn Fn() -> Json + Send + Sync + 'static;

struct Inner {
    config: RecorderConfig,
    source: Box<SnapshotFn>,
    stop: AtomicBool,
    seq: AtomicU64,
    lines_written: AtomicU64,
    rotations: AtomicU64,
    write_errors: AtomicU64,
    epoch: Instant,
    ring: Mutex<VecDeque<Json>>,
}

impl Inner {
    /// Takes one snapshot now: wraps it in a telemetry line, pushes it to
    /// the ring, and appends it to the log (rotating first if needed).
    fn record_once(&self) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        let mut line = Json::obj();
        line.set("schema", Json::Str(TS_SCHEMA.to_string()));
        line.set("seq", Json::UInt(seq));
        line.set(
            "at_ms",
            Json::UInt(u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)),
        );
        line.set("unix_ms", Json::UInt(unix_ms));
        line.set("snapshot", (self.source)());

        {
            let mut ring = match self.ring.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            if ring.len() >= self.config.ring_capacity.max(1) {
                ring.pop_front();
            }
            ring.push_back(line.clone());
        }

        if self.config.path.is_some() {
            if let Err(_e) = self.append(&line) {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
            } else {
                self.lines_written.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn append(&self, line: &Json) -> io::Result<()> {
        let Some(path) = &self.config.path else {
            return Ok(());
        };
        let mut text = line.to_string_compact();
        text.push('\n');
        let size = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        if size > 0 && size + text.len() as u64 > self.config.max_bytes {
            self.rotate()?;
        }
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        file.write_all(text.as_bytes())
    }

    /// Shifts `log.i` → `log.i+1` (dropping the oldest) and moves the live
    /// log to `log.1`; with no rotated generations allowed, truncates.
    fn rotate(&self) -> io::Result<()> {
        let Some(path) = &self.config.path else {
            return Ok(());
        };
        self.rotations.fetch_add(1, Ordering::Relaxed);
        if self.config.max_rotated == 0 {
            return std::fs::write(path, b"");
        }
        let generation = |i: usize| PathBuf::from(format!("{}.{i}", path.display()));
        let _ = std::fs::remove_file(generation(self.config.max_rotated));
        for i in (1..self.config.max_rotated).rev() {
            let _ = std::fs::rename(generation(i), generation(i + 1));
        }
        std::fs::rename(path, generation(1))
    }
}

/// Background interval scraper; see the module docs. Construct with
/// [`SnapshotRecorder::start`], stop with [`SnapshotRecorder::stop`] (or
/// drop — the drop joins the thread too).
pub struct SnapshotRecorder {
    inner: Arc<Inner>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for SnapshotRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotRecorder")
            .field("config", &self.inner.config)
            .field("lines_written", &self.lines_written())
            .finish_non_exhaustive()
    }
}

impl SnapshotRecorder {
    /// Starts the scraper thread. `source` is called once per interval (and
    /// once more on [`SnapshotRecorder::stop`], so the log always ends with
    /// a final-state line).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the configured log path cannot be opened
    /// for append (surfacing a bad path at startup, not silently later).
    pub fn start(
        config: RecorderConfig,
        source: impl Fn() -> Json + Send + Sync + 'static,
    ) -> io::Result<Self> {
        if let Some(path) = &config.path {
            OpenOptions::new().create(true).append(true).open(path)?;
        }
        let inner = Arc::new(Inner {
            config,
            source: Box::new(source),
            stop: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            lines_written: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            epoch: Instant::now(),
            ring: Mutex::new(VecDeque::new()),
        });
        let worker = Arc::clone(&inner);
        let thread = std::thread::Builder::new()
            .name("amf-obs-recorder".to_string())
            .spawn(move || {
                while !worker.stop.load(Ordering::Acquire) {
                    // Sleep in short slices so stop() returns promptly even
                    // with a long scrape interval.
                    let deadline = Instant::now() + worker.config.interval;
                    while Instant::now() < deadline {
                        if worker.stop.load(Ordering::Acquire) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(20).min(worker.config.interval));
                    }
                    worker.record_once();
                }
            })
            .map_err(io::Error::other)?;
        Ok(Self {
            inner,
            thread: Some(thread),
        })
    }

    /// Takes one snapshot immediately (besides the interval cadence).
    /// Deterministic tests drive the recorder with this instead of sleeping.
    pub fn record_once(&self) {
        self.inner.record_once();
    }

    /// The most recent `n` telemetry lines, oldest first.
    pub fn recent(&self, n: usize) -> Vec<Json> {
        let ring = match self.inner.ring.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        ring.iter().rev().take(n).rev().cloned().collect()
    }

    /// Lines successfully appended to the log file.
    pub fn lines_written(&self) -> u64 {
        self.inner.lines_written.load(Ordering::Relaxed)
    }

    /// Times the log was rotated (or truncated) for size.
    pub fn rotations(&self) -> u64 {
        self.inner.rotations.load(Ordering::Relaxed)
    }

    /// Log writes that failed (telemetry keeps running through these).
    pub fn write_errors(&self) -> u64 {
        self.inner.write_errors.load(Ordering::Relaxed)
    }

    /// Stops the scraper thread, records one final line, and returns the
    /// total number of snapshots taken.
    pub fn stop(mut self) -> u64 {
        self.shutdown();
        self.inner.record_once();
        self.inner.seq.load(Ordering::Relaxed)
    }

    fn shutdown(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for SnapshotRecorder {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot_source(counter: Arc<AtomicU64>) -> impl Fn() -> Json + Send + Sync + 'static {
        move || {
            let mut snap = Json::obj();
            snap.set("schema", Json::Str("amf-obs/v1".to_string()));
            snap.set("tick", Json::UInt(counter.fetch_add(1, Ordering::Relaxed)));
            snap
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("amf-recorder-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn lines_are_schema_tagged_jsonl() {
        let path = temp_path("basic");
        let recorder = SnapshotRecorder::start(
            RecorderConfig {
                interval: Duration::from_secs(3600), // cadence irrelevant here
                path: Some(path.clone()),
                ..RecorderConfig::default()
            },
            snapshot_source(Arc::new(AtomicU64::new(0))),
        )
        .expect("start");
        recorder.record_once();
        recorder.record_once();
        assert_eq!(recorder.stop(), 3); // two manual + one final

        let text = std::fs::read_to_string(&path).expect("log exists");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let parsed = Json::parse(line).expect("line parses");
            assert_eq!(parsed.get("schema").and_then(Json::as_str), Some(TS_SCHEMA));
            assert_eq!(parsed.get("seq").and_then(Json::as_u64), Some(i as u64));
            assert_eq!(
                parsed
                    .get("snapshot")
                    .and_then(|s| s.get("tick"))
                    .and_then(Json::as_u64),
                Some(i as u64)
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn log_rotates_under_a_small_size_cap() {
        let path = temp_path("rotate");
        let recorder = SnapshotRecorder::start(
            RecorderConfig {
                interval: Duration::from_secs(3600),
                path: Some(path.clone()),
                max_bytes: 256,
                max_rotated: 2,
                ..RecorderConfig::default()
            },
            snapshot_source(Arc::new(AtomicU64::new(0))),
        )
        .expect("start");
        for _ in 0..12 {
            recorder.record_once();
        }
        assert!(
            recorder.rotations() >= 2,
            "rotations: {}",
            recorder.rotations()
        );
        assert_eq!(recorder.write_errors(), 0);
        drop(recorder);

        let rotated = PathBuf::from(format!("{}.1", path.display()));
        for p in [&path, &rotated] {
            let text = std::fs::read_to_string(p).expect("generation exists");
            assert!(
                std::fs::metadata(p).expect("meta").len() <= 256,
                "cap respected for {}",
                p.display()
            );
            for line in text.lines() {
                assert_eq!(
                    Json::parse(line)
                        .expect("rotated line parses")
                        .get("schema")
                        .and_then(Json::as_str),
                    Some(TS_SCHEMA)
                );
            }
        }
        for suffix in ["", ".1", ".2", ".3"] {
            let _ = std::fs::remove_file(format!("{}{suffix}", path.display()));
        }
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let recorder = SnapshotRecorder::start(
            RecorderConfig {
                interval: Duration::from_secs(3600),
                path: None,
                ring_capacity: 4,
                ..RecorderConfig::default()
            },
            snapshot_source(Arc::new(AtomicU64::new(0))),
        )
        .expect("start");
        for _ in 0..10 {
            recorder.record_once();
        }
        let recent = recorder.recent(16);
        assert_eq!(recent.len(), 4);
        let seqs: Vec<u64> = recent
            .iter()
            .map(|l| l.get("seq").and_then(Json::as_u64).expect("seq"))
            .collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(recorder.recent(2).len(), 2);
    }

    #[test]
    fn interval_thread_scrapes_on_its_own() {
        let recorder = SnapshotRecorder::start(
            RecorderConfig {
                interval: Duration::from_millis(10),
                path: None,
                ..RecorderConfig::default()
            },
            snapshot_source(Arc::new(AtomicU64::new(0))),
        )
        .expect("start");
        let deadline = Instant::now() + Duration::from_secs(5);
        while recorder.recent(1).is_empty() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            !recorder.recent(1).is_empty(),
            "no interval scrape within 5s"
        );
    }
}
