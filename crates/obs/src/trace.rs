//! Bounded event-trace ring buffer with explicit span timing.
//!
//! Tracing here is for *coarse* events — engine lifecycle, replay, snapshot,
//! CLI stages — not per-sample work. Recording takes a mutex, so callers on
//! the per-sample hot path must either skip tracing or sample it. The ring is
//! bounded: once `capacity` events are held the oldest is dropped and a
//! counter remembers how many were lost, so the trace can never grow without
//! bound under sustained load.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use crate::metrics::Histogram;

/// One recorded trace event. `elapsed_ns` is zero for instant events and the
/// span duration for span-close events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Static event name (e.g. `"engine_drain"`).
    pub name: &'static str,
    /// Optional dynamic detail (shard id, sample count, ...).
    pub detail: String,
    /// Nanoseconds since the ring was created.
    pub at_ns: u64,
    /// Span duration in nanoseconds (0 for instant events).
    pub elapsed_ns: u64,
}

struct RingInner {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A bounded ring of [`TraceEvent`]s. All timestamps are relative to the
/// ring's creation instant, which keeps snapshots serializable without any
/// wall-clock dependence.
pub struct TraceRing {
    epoch: Instant,
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl TraceRing {
    /// A ring holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            epoch: Instant::now(),
            capacity,
            inner: Mutex::new(RingInner {
                events: VecDeque::with_capacity(capacity),
                dropped: 0,
            }),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn push(&self, event: TraceEvent) {
        let mut inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped = inner.dropped.saturating_add(1);
        }
        inner.events.push_back(event);
    }

    /// Records an instant event.
    pub fn event(&self, name: &'static str, detail: impl Into<String>) {
        self.push(TraceEvent {
            name,
            detail: detail.into(),
            at_ns: self.now_ns(),
            elapsed_ns: 0,
        });
    }

    /// Opens a timed span; the event is recorded when the guard drops, with
    /// `elapsed_ns` set to the span duration. If `histogram` is provided the
    /// duration is also recorded there, giving percentile aggregation on top
    /// of the raw trace.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span {
            ring: Some(self),
            name,
            detail: String::new(),
            started: Instant::now(),
            histogram: None,
        }
    }

    /// Copies out the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        inner.events.iter().cloned().collect()
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        let inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        inner.dropped
    }

    /// Clears the ring (keeps the eviction count).
    pub fn clear(&self) {
        let mut inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        inner.events.clear();
    }
}

/// Drop-guard returned by [`TraceRing::span`]: records a trace event with the
/// elapsed time when it goes out of scope.
pub struct Span<'a> {
    ring: Option<&'a TraceRing>,
    name: &'static str,
    detail: String,
    started: Instant,
    histogram: Option<&'a Histogram>,
}

impl<'a> Span<'a> {
    /// Attaches a detail string reported on close.
    pub fn with_detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = detail.into();
        self
    }

    /// Also records the span duration into `histogram` on close.
    pub fn with_histogram(mut self, histogram: &'a Histogram) -> Self {
        self.histogram = Some(histogram);
        self
    }

    /// Closes the span without recording anything (e.g. the traced operation
    /// was a no-op and would only add noise).
    pub fn cancel(mut self) {
        self.ring = None;
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(ring) = self.ring else { return };
        let elapsed_ns = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if let Some(h) = self.histogram {
            h.record(elapsed_ns);
        }
        ring.push(TraceEvent {
            name: self.name,
            detail: std::mem::take(&mut self.detail),
            at_ns: ring.now_ns(),
            elapsed_ns,
        });
    }
}

/// Opens a timed span on the global trace ring; the event records on scope
/// exit. `span!("sgd_step")` or `span!("replay", "shard {i}")`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::global().trace().span($name)
    };
    ($name:expr, $($detail:tt)+) => {
        $crate::global().trace().span($name).with_detail(format!($($detail)+))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_and_counts_drops() {
        let ring = TraceRing::new(3);
        for i in 0..5 {
            ring.event("tick", format!("{i}"));
        }
        let events = ring.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].detail, "2");
        assert_eq!(events[2].detail, "4");
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn span_records_on_drop_with_duration() {
        let ring = TraceRing::new(8);
        {
            let _guard = ring.span("work").with_detail("unit");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "work");
        assert_eq!(events[0].detail, "unit");
        assert!(events[0].elapsed_ns >= 1_000_000);
    }

    #[test]
    fn span_feeds_histogram() {
        let ring = TraceRing::new(8);
        let hist = Histogram::new();
        drop(ring.span("timed").with_histogram(&hist));
        assert_eq!(hist.count(), 1);
    }

    #[test]
    fn cancelled_span_records_nothing() {
        let ring = TraceRing::new(8);
        ring.span("skipped").cancel();
        assert!(ring.events().is_empty());
    }

    #[test]
    fn timestamps_are_monotone() {
        let ring = TraceRing::new(8);
        ring.event("a", "");
        ring.event("b", "");
        let events = ring.events();
        assert!(events[0].at_ns <= events[1].at_ns);
    }
}
