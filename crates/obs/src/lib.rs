//! Observability layer for the AMF QoS-prediction system.
//!
//! The paper's runtime-adaptation loop (Section III: per-time-slice
//! re-prediction, Algorithm 1 per-sample updates) gives the serving stack a
//! wall-clock budget; this crate makes where that budget goes visible
//! without perturbing the paths being measured:
//!
//! - [`Counter`] / [`Gauge`] / [`Histogram`] — plain-atomic primitives;
//!   recording is wait-free and allocation-free. Histograms are log-bucketed
//!   (powers of two in nanoseconds) with all storage pre-allocated at
//!   registration, which is what keeps the zero-alloc hot-path guarantee
//!   intact with instrumentation enabled.
//! - [`MetricsRegistry`] — named registration returning `Arc` handles;
//!   locks are touched only at registration and snapshot time. A process
//!   [`global`] registry backs amf-core's static instrumentation; subsystems
//!   needing isolated counts (per-service-instance stats) own their own.
//! - [`TraceRing`] / [`Span`] / [`span!`] — a bounded event ring with
//!   drop-guard span timing for coarse lifecycle events.
//! - [`Json`] + [`MetricsRegistry::snapshot_json`] — a versioned
//!   (`amf-obs/v1`) snapshot with a writer *and* a strict parser, so the
//!   serialize → parse → equal round trip is testable offline.
//! - [`prom`] — Prometheus text-exposition (0.0.4) rendering of snapshots,
//!   for a `GET /metrics` scrape endpoint.
//! - [`SnapshotRecorder`] — a background interval scraper appending
//!   `amf-obs-ts/v1` JSONL telemetry lines to a size-rotated log plus a
//!   bounded in-memory ring.
//! - [`flight`] — request-scoped tracing ([`StageClock`], [`TraceRecord`],
//!   [`TailExemplars`]) and the incident-triggered [`FlightRecorder`]
//!   dumping versioned `amf-flight/v1` JSONL.
//!
//! Deliberately dependency-free (std only).

#![deny(missing_docs)]
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod flight;
pub mod json;
pub mod metrics;
pub mod prom;
pub mod recorder;
pub mod registry;
pub mod trace;

pub use flight::{
    mint_trace_id, valid_trace_id, FlightConfig, FlightRecorder, FlightRing, StageClock,
    TailExemplars, TraceRecord, FLIGHT_SCHEMA, MAX_TRACE_ID_LEN, STAGES,
};
pub use json::{Json, ParseError, MAX_PARSE_DEPTH};
pub use metrics::{bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, BUCKETS};
pub use prom::{is_valid_metric_name, parse_exposition, render_prometheus, CONTENT_TYPE};
pub use recorder::{RecorderConfig, SnapshotRecorder, TS_SCHEMA};
pub use registry::{global, MetricsRegistry, DEFAULT_TRACE_CAPACITY, SCHEMA};
pub use trace::{Span, TraceEvent, TraceRing};
