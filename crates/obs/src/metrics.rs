//! Lock-free metric primitives: saturating counters, f64 gauges, and
//! log-bucketed latency histograms with pre-allocated bucket storage.
//!
//! All three primitives are plain atomics after registration — recording is
//! wait-free and allocation-free, which is what lets them sit under the
//! per-sample ingestion hot path without breaking the zero-alloc guarantee
//! pinned by `tests/alloc_free_hot_path.rs`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets: bucket `i` (for `i >= 1`) covers values in
/// `[2^(i-1), 2^i)` nanoseconds; bucket 0 holds zero. The top bucket
/// (`2^(BUCKETS-2)` ns ≈ 2.3 minutes) absorbs everything larger, so no
/// recorded value is ever dropped.
pub const BUCKETS: usize = 39;

/// A monotonic counter that **saturates** at `u64::MAX` instead of wrapping.
///
/// Overflowing a counter after ~1.8e19 events is not a realistic operational
/// concern, but wrapping silently back to small values would corrupt every
/// rate computed from a snapshot pair — saturation keeps the damage visible
/// and bounded.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`, saturating at `u64::MAX`.
    #[inline]
    pub fn add(&self, n: u64) {
        // Fast path: plain fetch_add, then repair if it wrapped. The repair
        // branch is statically never taken until the counter is within `n`
        // of the ceiling, so the hot path stays one uncontended RMW.
        let before = self.value.fetch_add(n, Ordering::Relaxed);
        if before.checked_add(n).is_none() {
            self.value.store(u64::MAX, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Atomically reads the counter and resets it to zero (interval views).
    pub fn take(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }

    /// Test/restore hook: force a value (used to exercise saturation).
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }
}

/// A last-value-wins gauge holding an `f64` (stored as its bit pattern).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// A gauge at 0.0.
    pub const fn new() -> Self {
        Self {
            bits: AtomicU64::new(0),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Bucket index of a value: 0 for 0, otherwise `1 + floor(log2 v)`, clamped
/// to the top bucket. Monotone in `v` by construction (pinned by a property
/// test): the cumulative-distribution reading of the histogram is only valid
/// because larger values can never land in smaller buckets.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` in nanoseconds (the value reported
/// for percentiles falling in that bucket — a conservative, ≤ one-octave
/// overestimate). The top bucket is unbounded; its recorded maximum is
/// reported instead.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i).saturating_sub(1).max(1)
    }
}

/// A log-bucketed histogram of non-negative integer samples (latency in
/// nanoseconds by convention).
///
/// Storage is a fixed `[AtomicU64; BUCKETS]` allocated **once at
/// registration** — `record` touches no allocator, takes no lock, and is
/// safe to call from any thread (shard workers included). Percentiles are
/// derived from the cumulative bucket counts, so they carry up to one octave
/// of overestimate; `max` is tracked exactly.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram (all storage pre-allocated inline).
    pub const fn new() -> Self {
        // `[const { ... }; N]` inline-const array init keeps this `const fn`.
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample (nanoseconds by convention).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration at nanosecond resolution (saturating at ~584
    /// years; the top bucket absorbs it regardless).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wrapping beyond u64 — used for means only).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (exact).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The quantile `q` in `[0, 1]`, estimated as the upper bound of the
    /// first bucket whose cumulative count reaches `ceil(q * count)`.
    /// Returns 0 for an empty histogram. For any `q`, the estimate never
    /// exceeds [`Histogram::max`].
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(bucket.load(Ordering::Relaxed));
            if cumulative >= rank {
                return bucket_upper_bound(i).min(self.max());
            }
        }
        self.max()
    }

    /// Raw bucket counts, index `i` covering `[2^(i-1), 2^i)` ns.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = Counter::new();
        c.set(u64::MAX - 3);
        c.add(10);
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauge_roundtrips() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(-1.25);
        assert_eq!(g.get(), -1.25);
        g.set(f64::NAN);
        assert!(g.get().is_nan());
    }

    #[test]
    fn bucket_index_shape() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_are_bounded_by_max() {
        let h = Histogram::new();
        for v in [5, 10, 100, 1_000, 50_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 50_000);
        assert!(h.quantile(0.5) <= h.quantile(0.95));
        assert!(h.quantile(0.95) <= h.quantile(0.99));
        assert!(h.quantile(0.99) <= h.max());
        // The p50 estimate lands in the bucket of the true median (100):
        // [64, 128) has upper bound 127.
        assert_eq!(h.quantile(0.5), 127);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn duration_recording() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(3));
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 3_000);
    }
}
