//! Metric registry: named counters/gauges/histograms plus a trace ring,
//! with a versioned JSON snapshot (`amf-obs/v1`).
//!
//! Registration hands back `Arc` handles; callers cache them (in a struct
//! field or a `OnceLock`) and record through plain atomics afterwards — the
//! registry lock is only touched at registration and snapshot time, never on
//! the per-sample path.

use std::sync::{Arc, Mutex, OnceLock};

use crate::json::Json;
use crate::metrics::{Counter, Gauge, Histogram};
use crate::trace::TraceRing;

/// Snapshot schema identifier, bumped on breaking layout changes.
pub const SCHEMA: &str = "amf-obs/v1";

/// Default trace-ring capacity for registries that don't specify one.
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

fn metric_key(name: &'static str, label: Option<&str>) -> String {
    match label {
        Some(label) => format!("{name}.{label}"),
        None => name.to_string(),
    }
}

struct Slots<T> {
    entries: Vec<(String, Arc<T>)>,
}

impl<T: Default> Slots<T> {
    fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    fn get_or_register(&mut self, key: String) -> Arc<T> {
        if let Some((_, slot)) = self.entries.iter().find(|(k, _)| *k == key) {
            return Arc::clone(slot);
        }
        let slot = Arc::new(T::default());
        self.entries.push((key, Arc::clone(&slot)));
        slot
    }
}

/// A registry of named metrics and a bounded trace ring.
///
/// The process-wide instance lives behind [`crate::global`]; subsystems that
/// need isolated counts (e.g. per-service-instance stats) own their own.
pub struct MetricsRegistry {
    counters: Mutex<Slots<Counter>>,
    gauges: Mutex<Slots<Gauge>>,
    histograms: Mutex<Slots<Histogram>>,
    trace: TraceRing,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").finish_non_exhaustive()
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl MetricsRegistry {
    /// A registry with the default trace capacity.
    pub fn new() -> Self {
        Self::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A registry whose trace ring holds at most `capacity` events.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Self {
            counters: Mutex::new(Slots::new()),
            gauges: Mutex::new(Slots::new()),
            histograms: Mutex::new(Slots::new()),
            trace: TraceRing::new(capacity),
        }
    }

    /// Gets or registers the counter `name`.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        lock(&self.counters).get_or_register(metric_key(name, None))
    }

    /// Gets or registers the counter `name` with a dynamic `label`
    /// (snapshot key `name.label`).
    pub fn counter_labeled(&self, name: &'static str, label: &str) -> Arc<Counter> {
        lock(&self.counters).get_or_register(metric_key(name, Some(label)))
    }

    /// Gets or registers the gauge `name`.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        lock(&self.gauges).get_or_register(metric_key(name, None))
    }

    /// Gets or registers the gauge `name` with a dynamic `label`.
    pub fn gauge_labeled(&self, name: &'static str, label: &str) -> Arc<Gauge> {
        lock(&self.gauges).get_or_register(metric_key(name, Some(label)))
    }

    /// Gets or registers the histogram `name`.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        lock(&self.histograms).get_or_register(metric_key(name, None))
    }

    /// Gets or registers the histogram `name` with a dynamic `label`.
    pub fn histogram_labeled(&self, name: &'static str, label: &str) -> Arc<Histogram> {
        lock(&self.histograms).get_or_register(metric_key(name, Some(label)))
    }

    /// The registry's trace ring.
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// Current value of a registered counter (0 if never registered) —
    /// read-only, does not create the slot.
    pub fn counter_value(&self, name: &str) -> u64 {
        lock(&self.counters)
            .entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, c)| c.get())
            .unwrap_or(0)
    }

    /// Snapshot of all registered metrics as an `amf-obs/v1` JSON object.
    ///
    /// `include_trace` controls whether the trace-ring events are embedded
    /// (they carry dynamic detail strings and are the only non-deterministic
    /// part of the snapshot besides timing values).
    pub fn snapshot_json(&self, include_trace: bool) -> Json {
        let mut root = Json::obj();
        root.set("schema", Json::Str(SCHEMA.to_string()));

        let mut counters = Json::obj();
        for (key, counter) in &lock(&self.counters).entries {
            counters.set(key, Json::UInt(counter.get()));
        }
        root.set("counters", counters);

        let mut gauges = Json::obj();
        for (key, gauge) in &lock(&self.gauges).entries {
            gauges.set(key, Json::Num(gauge.get()));
        }
        root.set("gauges", gauges);

        let mut histograms = Json::obj();
        for (key, histogram) in &lock(&self.histograms).entries {
            let mut h = Json::obj();
            let count = histogram.count();
            h.set("count", Json::UInt(count));
            h.set("sum_ns", Json::UInt(histogram.sum()));
            h.set("max_ns", Json::UInt(histogram.max()));
            h.set("p50_ns", Json::UInt(histogram.quantile(0.50)));
            h.set("p95_ns", Json::UInt(histogram.quantile(0.95)));
            h.set("p99_ns", Json::UInt(histogram.quantile(0.99)));
            let mean = if count == 0 {
                0.0
            } else {
                histogram.sum() as f64 / count as f64
            };
            h.set("mean_ns", Json::Num(mean));
            h.set(
                "buckets",
                Json::Arr(
                    histogram
                        .bucket_counts()
                        .iter()
                        .map(|&c| Json::UInt(c))
                        .collect(),
                ),
            );
            histograms.set(key, h);
        }
        root.set("histograms", histograms);

        if include_trace {
            let mut trace = Json::obj();
            trace.set("dropped", Json::UInt(self.trace.dropped()));
            trace.set(
                "events",
                Json::Arr(
                    self.trace
                        .events()
                        .into_iter()
                        .map(|e| {
                            let mut event = Json::obj();
                            event.set("name", Json::Str(e.name.to_string()));
                            event.set("detail", Json::Str(e.detail));
                            event.set("at_ns", Json::UInt(e.at_ns));
                            event.set("elapsed_ns", Json::UInt(e.elapsed_ns));
                            event
                        })
                        .collect(),
                ),
            );
            root.set("trace", trace);
        }
        root
    }
}

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide registry used by amf-core's static instrumentation
/// (engine, guard, model). Created on first touch; histograms pre-allocate
/// their bucket storage at that point, so hot-path recording afterwards is
/// allocation-free.
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hits");
        let b = reg.counter("hits");
        a.inc();
        b.inc();
        assert_eq!(reg.counter_value("hits"), 2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn labels_get_distinct_slots() {
        let reg = MetricsRegistry::new();
        reg.counter_labeled("source", "model").add(3);
        reg.counter_labeled("source", "default").add(1);
        assert_eq!(reg.counter_value("source.model"), 3);
        assert_eq!(reg.counter_value("source.default"), 1);
        assert_eq!(reg.counter_value("source"), 0);
    }

    #[test]
    fn snapshot_contains_all_sections() {
        let reg = MetricsRegistry::new();
        reg.counter("c").inc();
        reg.gauge("g").set(1.5);
        reg.histogram("h").record(100);
        reg.trace().event("boot", "");
        let snap = reg.snapshot_json(true);
        assert_eq!(snap.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(
            snap.get("counters")
                .and_then(|c| c.get("c"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            snap.get("gauges")
                .and_then(|g| g.get("g"))
                .and_then(Json::as_f64),
            Some(1.5)
        );
        let hist = snap.get("histograms").and_then(|h| h.get("h")).unwrap();
        assert_eq!(hist.get("count").and_then(Json::as_u64), Some(1));
        assert_eq!(
            snap.get("trace")
                .and_then(|t| t.get("events"))
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn snapshot_round_trips_through_parser() {
        let reg = MetricsRegistry::new();
        reg.counter("c").set(u64::MAX);
        reg.histogram("h").record(12345);
        let snap = reg.snapshot_json(false);
        let reparsed = Json::parse(&snap.to_string_compact()).unwrap();
        assert_eq!(reparsed, snap);
        let reparsed_pretty = Json::parse(&snap.to_string_pretty()).unwrap();
        assert_eq!(reparsed_pretty, snap);
    }
}
