//! Request-scoped tracing primitives and the black-box flight recorder.
//!
//! The serving plane stamps every request with a **trace id** (client-supplied
//! via `x-amf-trace-id` or minted from a seeded counter) and a [`StageClock`]
//! recording where the latency budget went
//! (accept/parse/admission/queue/execute/flush). Completed requests become
//! [`TraceRecord`]s, which feed two bounded stores:
//!
//! * [`FlightRing`] — the last-N records, whatever their latency, the
//!   "moments before the incident" context window;
//! * [`TailExemplars`] — the slowest-N records per interval, the tail the
//!   aggregate histograms cannot attribute.
//!
//! [`FlightRecorder`] dumps both (plus the trace-event ring and a metrics
//! snapshot) as versioned `amf-flight/v1` JSONL when something goes wrong —
//! a worker panic, a drift alarm, an SLO-violation burst, or a manual
//! `POST /debug/dump`. Dumps are size-rotated exactly like
//! [`crate::SnapshotRecorder`] logs, so a recorder left attached for days
//! stays bounded.
//!
//! Cost argument: recording is one `Mutex` push per completed request into
//! pre-bounded storage (no per-request file I/O); dumping walks bounded
//! rings. Nothing here touches the model's zero-alloc observe path.

use crate::json::Json;
use crate::trace::TraceEvent;
use std::collections::VecDeque;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Schema tag of every line in a flight dump (and of the inline dump doc).
pub const FLIGHT_SCHEMA: &str = "amf-flight/v1";

/// Stage names, in request-lifecycle order. Indices match
/// [`StageClock`]'s accessors.
pub const STAGES: [&str; 6] = ["accept", "parse", "admission", "queue", "execute", "flush"];

/// Maximum accepted length of a client-supplied trace id.
pub const MAX_TRACE_ID_LEN: usize = 64;

/// Whether a client-supplied trace id is acceptable as-is (1–64 chars of
/// `[A-Za-z0-9._-]`). Anything else is *replaced* with a minted id, never
/// rejected — tracing must not turn a good request into a 400.
pub fn valid_trace_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_TRACE_ID_LEN
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

/// Mints a trace id from a seeded counter: `amf-<16 hex digits>`.
/// Hand-rolled hex: this runs once per untagged request on the serving
/// hot path, so it skips the `format!` machinery.
pub fn mint_trace_id(seq: &AtomicU64) -> String {
    let n = seq.fetch_add(1, Ordering::Relaxed);
    let mut id = String::with_capacity(20);
    id.push_str("amf-");
    for shift in (0..16).rev() {
        let nibble = ((n >> (shift * 4)) & 0xf) as u8;
        id.push(char::from(if nibble < 10 {
            b'0' + nibble
        } else {
            b'a' + (nibble - 10)
        }));
    }
    id
}

/// Per-request stage timings in nanoseconds. Plain value type: it rides in
/// jobs and completions by copy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageClock {
    ns: [u64; 6],
}

impl StageClock {
    /// Stage index: time from connection accept to the first byte of this
    /// request (non-zero only for a connection's first request).
    pub const ACCEPT: usize = 0;
    /// Stage index: first buffered byte to parse completion (spans a
    /// slow-trickled arrival).
    pub const PARSE: usize = 1;
    /// Stage index: admission-control decision (deadline parse + EDF push).
    pub const ADMISSION: usize = 2;
    /// Stage index: EDF queue wait until a worker popped the job.
    pub const QUEUE: usize = 3;
    /// Stage index: handler execution on the worker.
    pub const EXECUTE: usize = 4;
    /// Stage index: completion parked until rendered into the write queue.
    pub const FLUSH: usize = 5;

    /// An all-zero clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets one stage's duration (ns).
    pub fn set(&mut self, stage: usize, ns: u64) {
        if stage < self.ns.len() {
            self.ns[stage] = ns;
        }
    }

    /// One stage's duration (ns); 0 for out-of-range indices.
    pub fn get(&self, stage: usize) -> u64 {
        self.ns.get(stage).copied().unwrap_or(0)
    }

    /// Sum of every stage (ns).
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Renders the `x-amf-stage-us` header value:
    /// `accept=0;parse=12;admission=1;queue=40;execute=180;flush=3` (µs,
    /// integer-truncated).
    pub fn header_us(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(80);
        for (i, name) in STAGES.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            out.push_str(name);
            out.push('=');
            // write! appends digits in place — no per-stage String alloc
            // (this renders once per response on the serving hot path).
            let _ = write!(out, "{}", self.ns[i] / 1_000);
        }
        out
    }

    /// Parses a header produced by [`StageClock::header_us`] back into
    /// per-stage µs values (client-side reconciliation). Unknown keys are
    /// ignored; `None` if nothing parsed.
    pub fn parse_header_us(header: &str) -> Option<[u64; 6]> {
        let mut us = [0u64; 6];
        let mut any = false;
        for part in header.split(';') {
            let (name, value) = part.split_once('=')?;
            if let Some(idx) = STAGES.iter().position(|s| *s == name.trim()) {
                us[idx] = value.trim().parse().ok()?;
                any = true;
            }
        }
        any.then_some(us)
    }

    /// JSON object of per-stage µs values keyed by stage name.
    pub fn to_json_us(&self) -> Json {
        let mut obj = Json::obj();
        for (i, name) in STAGES.iter().enumerate() {
            obj.set(name, Json::UInt(self.ns[i] / 1_000));
        }
        obj
    }
}

/// One completed request, as retained by the flight ring and the tail
/// exemplars.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// The request's trace id (client-supplied or minted).
    pub trace_id: String,
    /// Routed endpoint label. Static so the serving hot path never
    /// allocates for it and dump cardinality stays bounded: unrouted
    /// paths share one label instead of echoing arbitrary client paths.
    pub endpoint: &'static str,
    /// Response status.
    pub status: u16,
    /// Per-stage timings.
    pub stages: StageClock,
    /// Deadline slack at completion, µs (negative = budget already burned).
    pub deadline_slack_us: i64,
}

impl TraceRecord {
    /// End-to-end time attributed across stages (ns).
    pub fn total_ns(&self) -> u64 {
        self.stages.total_ns()
    }

    /// Serializes for dumps and the `/debug/exemplars` endpoint.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("trace_id", Json::Str(self.trace_id.clone()))
            .set("endpoint", Json::Str(self.endpoint.to_string()))
            .set("status", Json::UInt(u64::from(self.status)))
            .set("total_us", Json::UInt(self.total_ns() / 1_000))
            .set("stages_us", self.stages.to_json_us())
            .set(
                "deadline_slack_us",
                Json::Num(self.deadline_slack_us as f64),
            );
        obj
    }
}

/// Bounded ring of the most recent [`TraceRecord`]s (the flight recorder's
/// context window). One short mutex hold per push.
#[derive(Debug)]
pub struct FlightRing {
    records: Mutex<VecDeque<TraceRecord>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl FlightRing {
    /// Creates a ring keeping the last `capacity` records.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            records: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends a record, evicting the oldest at capacity.
    pub fn push(&self, record: TraceRecord) {
        let mut records = match self.records.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if records.len() >= self.capacity {
            records.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        records.push_back(record);
    }

    /// The retained records, oldest first.
    pub fn recent(&self) -> Vec<TraceRecord> {
        match self.records.lock() {
            Ok(guard) => guard.iter().cloned().collect(),
            Err(poisoned) => poisoned.into_inner().iter().cloned().collect(),
        }
    }

    /// Records evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct ExemplarWindows {
    current: Vec<TraceRecord>,
    previous: Vec<TraceRecord>,
}

/// Slowest-N requests per interval. [`TailExemplars::offer`] keeps the
/// current interval's worst offenders; the owner calls
/// [`TailExemplars::rotate`] on its snapshot cadence, and
/// [`TailExemplars::snapshot`] merges the current and previous windows so a
/// scrape right after a rotation still sees the tail.
#[derive(Debug)]
pub struct TailExemplars {
    windows: Mutex<ExemplarWindows>,
    capacity: usize,
}

impl TailExemplars {
    /// Keeps the `capacity` slowest records per window.
    pub fn new(capacity: usize) -> Self {
        Self {
            windows: Mutex::new(ExemplarWindows::default()),
            capacity: capacity.max(1),
        }
    }

    /// Offers one completed request; retained only if it is among the
    /// current window's slowest. Borrowed so the serving hot path pays the
    /// clone only for the handful of records that actually qualify.
    pub fn offer(&self, record: &TraceRecord) {
        let mut windows = match self.windows.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if windows.current.len() < self.capacity {
            windows.current.push(record.clone());
            return;
        }
        // Replace the fastest retained record if the newcomer is slower.
        if let Some((idx, fastest)) = windows
            .current
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.total_ns())
            .map(|(i, r)| (i, r.total_ns()))
        {
            if record.total_ns() > fastest {
                windows.current[idx] = record.clone();
            }
        }
    }

    /// Starts a new interval window (previous = just-finished window).
    pub fn rotate(&self) {
        let mut windows = match self.windows.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        windows.previous = std::mem::take(&mut windows.current);
    }

    /// The slowest records across the current and previous windows, slowest
    /// first, capped at the window capacity.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let windows = match self.windows.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut merged: Vec<TraceRecord> = windows
            .previous
            .iter()
            .chain(windows.current.iter())
            .cloned()
            .collect();
        merged.sort_by_key(|r| std::cmp::Reverse(r.total_ns()));
        merged.truncate(self.capacity);
        merged
    }
}

/// Flight-recorder sink configuration.
#[derive(Debug, Clone, Default)]
pub struct FlightConfig {
    /// JSONL dump file. `None` keeps dumps in-memory only (the inline dump
    /// document is still produced for `POST /debug/dump`).
    pub path: Option<PathBuf>,
    /// Rotate the live dump file past this size (0 = library default).
    pub max_bytes: u64,
    /// Rotated files kept (`<path>.1` .. `<path>.N`); 0 truncates instead.
    pub max_rotated: usize,
}

impl FlightConfig {
    fn max_bytes(&self) -> u64 {
        if self.max_bytes == 0 {
            4 * 1024 * 1024
        } else {
            self.max_bytes
        }
    }
}

#[derive(Debug, Default)]
struct FlightCounters {
    dumps: u64,
    lines_written: u64,
    rotations: u64,
    write_errors: u64,
}

/// The black-box dump sink: renders one `amf-flight/v1` dump document per
/// trigger and (when a path is configured) appends it as JSONL with
/// size-based rotation, mirroring [`crate::SnapshotRecorder`]'s log policy.
#[derive(Debug)]
pub struct FlightRecorder {
    config: FlightConfig,
    counters: Mutex<FlightCounters>,
}

impl FlightRecorder {
    /// Creates a recorder; nothing is written until the first dump.
    pub fn new(config: FlightConfig) -> Self {
        Self {
            config,
            counters: Mutex::new(FlightCounters::default()),
        }
    }

    /// Whether dumps also land in a file.
    pub fn has_sink(&self) -> bool {
        self.config.path.is_some()
    }

    /// Dumps triggered so far.
    pub fn dumps(&self) -> u64 {
        self.lock().dumps
    }

    /// JSONL lines appended so far.
    pub fn lines_written(&self) -> u64 {
        self.lock().lines_written
    }

    /// File rotations performed so far.
    pub fn rotations(&self) -> u64 {
        self.lock().rotations
    }

    /// Failed file writes (dumping is best-effort; the inline document is
    /// always produced).
    pub fn write_errors(&self) -> u64 {
        self.lock().write_errors
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FlightCounters> {
        match self.counters.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Records one incident: builds the inline dump document and, when a
    /// file sink is configured, appends the same content as schema-tagged
    /// JSONL lines (`kind` ∈ `header|exemplar|trace|event`). The whole dump
    /// is buffered and appended in one write, so concurrent dumps never
    /// interleave lines.
    pub fn dump(
        &self,
        reason: &str,
        records: &[TraceRecord],
        exemplars: &[TraceRecord],
        events: &[TraceEvent],
        metrics: &Json,
    ) -> Json {
        let at_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);

        let event_json = |e: &TraceEvent| {
            let mut obj = Json::obj();
            obj.set("name", Json::Str(e.name.to_string()))
                .set("detail", Json::Str(e.detail.clone()))
                .set("at_ns", Json::UInt(e.at_ns))
                .set("elapsed_ns", Json::UInt(e.elapsed_ns));
            obj
        };

        let mut doc = Json::obj();
        doc.set("schema", Json::Str(FLIGHT_SCHEMA.into()))
            .set("reason", Json::Str(reason.to_string()))
            .set("at_ms", Json::UInt(at_ms))
            .set(
                "exemplars",
                Json::Arr(exemplars.iter().map(TraceRecord::to_json).collect()),
            )
            .set(
                "records",
                Json::Arr(records.iter().map(TraceRecord::to_json).collect()),
            )
            .set("events", Json::Arr(events.iter().map(event_json).collect()))
            .set("metrics", metrics.clone());

        if self.config.path.is_some() {
            let mut lines = String::new();
            let tagged = |kind: &str, mut body: Json| {
                body.set("schema", Json::Str(FLIGHT_SCHEMA.into()))
                    .set("kind", Json::Str(kind.to_string()))
                    .set("reason", Json::Str(reason.to_string()))
                    .set("at_ms", Json::UInt(at_ms));
                body
            };
            let mut header = Json::obj();
            header
                .set("metrics", metrics.clone())
                .set("n_records", Json::UInt(records.len() as u64))
                .set("n_exemplars", Json::UInt(exemplars.len() as u64))
                .set("n_events", Json::UInt(events.len() as u64));
            lines.push_str(&tagged("header", header).to_string_compact());
            lines.push('\n');
            for record in exemplars {
                lines.push_str(&tagged("exemplar", record.to_json()).to_string_compact());
                lines.push('\n');
            }
            for record in records {
                lines.push_str(&tagged("trace", record.to_json()).to_string_compact());
                lines.push('\n');
            }
            for event in events {
                lines.push_str(&tagged("event", event_json(event)).to_string_compact());
                lines.push('\n');
            }
            let line_count =
                1 + exemplars.len() as u64 + records.len() as u64 + events.len() as u64;
            self.append(&lines, line_count);
        }

        self.lock().dumps += 1;
        doc
    }

    /// Appends one buffered dump, rotating first if the live file would
    /// exceed the size cap.
    fn append(&self, lines: &str, line_count: u64) {
        let Some(path) = self.config.path.as_ref() else {
            return;
        };
        let live_len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        if live_len > 0 && live_len + lines.len() as u64 > self.config.max_bytes() {
            self.rotate(path);
        }
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut file| file.write_all(lines.as_bytes()));
        let mut counters = self.lock();
        match written {
            Ok(()) => counters.lines_written += line_count,
            Err(_) => counters.write_errors += 1,
        }
    }

    /// Shifts `path.i` → `path.i+1` and the live file to `path.1`
    /// (truncating instead when no rotated files are kept) — the same
    /// policy as the telemetry recorder's log rotation.
    fn rotate(&self, path: &std::path::Path) {
        if self.config.max_rotated == 0 {
            let _ = std::fs::File::create(path); // truncate in place
            self.lock().rotations += 1;
            return;
        }
        let rotated = |i: usize| {
            let mut name = path.as_os_str().to_os_string();
            name.push(format!(".{i}"));
            PathBuf::from(name)
        };
        let _ = std::fs::remove_file(rotated(self.config.max_rotated));
        for i in (1..self.config.max_rotated).rev() {
            let _ = std::fs::rename(rotated(i), rotated(i + 1));
        }
        let _ = std::fs::rename(path, rotated(1));
        self.lock().rotations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str, total_us: u64) -> TraceRecord {
        let mut stages = StageClock::new();
        stages.set(StageClock::EXECUTE, total_us * 1_000);
        TraceRecord {
            trace_id: id.to_string(),
            endpoint: "/v1/predict",
            status: 200,
            stages,
            deadline_slack_us: 500,
        }
    }

    #[test]
    fn trace_id_validation_and_minting() {
        assert!(valid_trace_id("abc-123.X_z"));
        assert!(!valid_trace_id(""));
        assert!(!valid_trace_id("has space"));
        assert!(!valid_trace_id("emoji\u{1F600}"));
        assert!(!valid_trace_id(&"x".repeat(MAX_TRACE_ID_LEN + 1)));
        let seq = AtomicU64::new(7);
        assert_eq!(mint_trace_id(&seq), "amf-0000000000000007");
        assert_eq!(mint_trace_id(&seq), "amf-0000000000000008");
        assert!(valid_trace_id(&mint_trace_id(&seq)));
    }

    #[test]
    fn stage_clock_header_round_trips() {
        let mut clock = StageClock::new();
        clock.set(StageClock::ACCEPT, 1_000);
        clock.set(StageClock::PARSE, 12_000);
        clock.set(StageClock::ADMISSION, 2_000);
        clock.set(StageClock::QUEUE, 40_000);
        clock.set(StageClock::EXECUTE, 180_000);
        clock.set(StageClock::FLUSH, 3_000);
        assert_eq!(clock.total_ns(), 238_000);
        let header = clock.header_us();
        assert_eq!(
            header,
            "accept=1;parse=12;admission=2;queue=40;execute=180;flush=3"
        );
        let parsed = StageClock::parse_header_us(&header).unwrap();
        assert_eq!(parsed, [1, 12, 2, 40, 180, 3]);
        assert!(StageClock::parse_header_us("garbage").is_none());
    }

    #[test]
    fn flight_ring_is_bounded() {
        let ring = FlightRing::new(3);
        for i in 0..5 {
            ring.push(record(&format!("t{i}"), i));
        }
        let recent = ring.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].trace_id, "t2");
        assert_eq!(recent[2].trace_id, "t4");
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn exemplars_keep_the_slowest() {
        let ex = TailExemplars::new(2);
        ex.offer(&record("fast", 10));
        ex.offer(&record("slow", 500));
        ex.offer(&record("mid", 100));
        ex.offer(&record("slower", 900));
        let snap = ex.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].trace_id, "slower");
        assert_eq!(snap[1].trace_id, "slow");
        // Rotation keeps the previous window visible until the next one.
        ex.rotate();
        assert_eq!(ex.snapshot().len(), 2, "previous window still visible");
        ex.offer(&record("new", 50));
        let snap = ex.snapshot();
        assert_eq!(snap[0].trace_id, "slower");
        ex.rotate();
        ex.rotate();
        assert!(ex.snapshot().is_empty(), "two rotations age everything out");
    }

    #[test]
    fn dump_writes_schema_tagged_jsonl_and_rotates() {
        let dir = std::env::temp_dir().join(format!(
            "amf_flight_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight.jsonl");
        let _ = std::fs::remove_file(&path);
        let recorder = FlightRecorder::new(FlightConfig {
            path: Some(path.clone()),
            max_bytes: 700,
            max_rotated: 1,
        });
        let events = vec![TraceEvent {
            name: "drift_alarm",
            detail: "user side".into(),
            at_ns: 1,
            elapsed_ns: 0,
        }];
        let metrics = Json::obj();
        let doc = recorder.dump(
            "manual",
            &[record("r1", 5)],
            &[record("e1", 9)],
            &events,
            &metrics,
        );
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(FLIGHT_SCHEMA)
        );
        assert_eq!(doc.get("reason").and_then(Json::as_str), Some("manual"));
        assert_eq!(
            doc.get("exemplars")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(1)
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "header + exemplar + trace + event");
        for line in &lines {
            let parsed = Json::parse(line).expect("every line parses");
            assert_eq!(
                parsed.get("schema").and_then(Json::as_str),
                Some(FLIGHT_SCHEMA)
            );
            assert!(parsed.get("kind").and_then(Json::as_str).is_some());
        }
        assert_eq!(recorder.dumps(), 1);
        assert_eq!(recorder.lines_written(), 4);

        // A second dump overflows max_bytes: the live file rotates to .1.
        recorder.dump("manual", &[record("r2", 6)], &[], &events, &metrics);
        assert_eq!(recorder.rotations(), 1);
        assert!(
            path.with_extension("jsonl.1").exists() || {
                let mut name = path.as_os_str().to_os_string();
                name.push(".1");
                PathBuf::from(name).exists()
            }
        );
        assert_eq!(recorder.write_errors(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dump_without_sink_still_builds_the_document() {
        let recorder = FlightRecorder::new(FlightConfig::default());
        assert!(!recorder.has_sink());
        let doc = recorder.dump("worker_panic", &[], &[], &[], &Json::obj());
        assert_eq!(
            doc.get("reason").and_then(Json::as_str),
            Some("worker_panic")
        );
        assert!(Json::parse(&doc.to_string_compact()).is_ok());
        assert_eq!(recorder.dumps(), 1);
        assert_eq!(recorder.lines_written(), 0);
    }
}
