//! Working-service QoS monitoring (the *other* half of adaptation triggers).
//!
//! The paper splits adaptation decisions in two: *when to trigger* comes
//! from monitoring the **working** services a workflow currently invokes
//! (Section II-C cites time-series approaches for this), while *which
//! candidate to employ* comes from AMF's candidate prediction. This module
//! provides the monitoring half: per-pair EMA/variance tracking with
//! SLA-violation and deviation detection, feeding
//! [`crate::policy::AdaptationPolicy`] contexts with smoothed observations
//! instead of raw single samples.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Monitor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// EMA factor for the level estimate (0..1; higher = more reactive).
    pub ema_factor: f64,
    /// A sample this many standard deviations above the tracked level is
    /// flagged as a deviation.
    pub deviation_sigmas: f64,
    /// Minimum samples before deviation detection activates.
    pub warmup: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            ema_factor: 0.3,
            deviation_sigmas: 3.0,
            warmup: 5,
        }
    }
}

/// Tracked state for one (user, service) working pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairState {
    /// EMA of the observed QoS level.
    pub level: f64,
    /// EMA of the squared deviation (variance estimate).
    pub variance: f64,
    /// Samples observed.
    pub samples: usize,
    /// Timestamp of the last observation.
    pub last_seen: u64,
}

impl PairState {
    /// Standard deviation estimate.
    pub fn std_dev(&self) -> f64 {
        self.variance.max(0.0).sqrt()
    }
}

/// What the monitor concluded about one observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Within normal behaviour.
    Normal,
    /// Still warming up; no judgement.
    Warmup,
    /// Statistically anomalous relative to the tracked level.
    Deviation,
    /// The sample was not finite and was discarded without updating any
    /// state (counted in [`QosMonitor::dropped`]).
    Dropped,
}

/// Per-pair QoS monitor for working services.
///
/// # Examples
///
/// ```
/// use qos_service::monitor::{QosMonitor, MonitorConfig, Verdict};
///
/// let mut monitor = QosMonitor::new(MonitorConfig::default());
/// // A stable service...
/// for t in 0..20 {
///     assert_ne!(monitor.observe(0, 7, t, 1.0 + 0.01 * (t % 3) as f64), Verdict::Deviation);
/// }
/// // ...suddenly degrades by an order of magnitude:
/// assert_eq!(monitor.observe(0, 7, 20, 10.0), Verdict::Deviation);
/// ```
#[derive(Debug, Clone, Default)]
pub struct QosMonitor {
    config: MonitorConfig,
    pairs: HashMap<(usize, usize), PairState>,
    /// Non-finite samples discarded instead of tracked.
    dropped: u64,
}

impl QosMonitor {
    /// Creates a monitor.
    pub fn new(config: MonitorConfig) -> Self {
        Self {
            config,
            pairs: HashMap::new(),
            dropped: 0,
        }
    }

    /// Total non-finite samples discarded by [`QosMonitor::observe`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of tracked pairs.
    pub fn tracked_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Tracked state for a pair, if observed before.
    pub fn state(&self, user: usize, service: usize) -> Option<&PairState> {
        self.pairs.get(&(user, service))
    }

    /// Ingests one observation and returns the verdict for it.
    pub fn observe(&mut self, user: usize, service: usize, timestamp: u64, value: f64) -> Verdict {
        // A NaN/∞ sample would poison the EMA permanently; drop it and keep
        // the count so operators can see the data-quality problem.
        if !value.is_finite() {
            self.dropped += 1;
            return Verdict::Dropped;
        }
        let a = self.config.ema_factor;
        let entry = self.pairs.entry((user, service)).or_insert(PairState {
            level: value,
            variance: 0.0,
            samples: 0,
            last_seen: timestamp,
        });

        // Verdict against the *pre-update* state, so a spike is judged by
        // the history, not by itself.
        let verdict = if entry.samples < self.config.warmup {
            Verdict::Warmup
        } else {
            let sd = entry.std_dev();
            // Guard: a freshly flat series has sd ~ 0; use a fraction of the
            // level as the minimum scale.
            let scale = sd.max(0.05 * entry.level.abs()).max(1e-9);
            if (value - entry.level).abs() > self.config.deviation_sigmas * scale {
                Verdict::Deviation
            } else {
                Verdict::Normal
            }
        };

        // EMA updates (deviating samples still update — a persistent shift
        // becomes the new normal, as the paper's time-varying QoS requires).
        let diff = value - entry.level;
        entry.level += a * diff;
        entry.variance = (1.0 - a) * (entry.variance + a * diff * diff);
        entry.samples += 1;
        entry.last_seen = timestamp;

        verdict
    }

    /// The smoothed level for a pair (what policies should treat as "the
    /// observed QoS"), if tracked.
    pub fn smoothed(&self, user: usize, service: usize) -> Option<f64> {
        self.state(user, service).map(|s| s.level)
    }

    /// Pairs whose smoothed level currently violates `threshold`
    /// (lower-is-better semantics), as `(user, service, level)`.
    pub fn violations(&self, threshold: f64) -> Vec<(usize, usize, f64)> {
        let mut out: Vec<(usize, usize, f64)> = self
            .pairs
            .iter()
            .filter(|(_, s)| s.level > threshold)
            .map(|(&(u, svc), s)| (u, svc, s.level))
            .collect();
        // total_cmp keeps the sort well-defined even if a level is somehow
        // NaN (panicking in a monitoring path would take down the loop the
        // monitor exists to protect).
        out.sort_by(|a, b| b.2.total_cmp(&a.2));
        out
    }

    /// Drops pairs not observed since `cutoff`, returning how many were
    /// removed (working sets change as workflows rebind).
    pub fn prune_stale(&mut self, cutoff: u64) -> usize {
        let before = self.pairs.len();
        self.pairs.retain(|_, s| s.last_seen >= cutoff);
        before - self.pairs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> QosMonitor {
        QosMonitor::new(MonitorConfig::default())
    }

    #[test]
    fn warmup_then_normal() {
        let mut m = monitor();
        for t in 0..5 {
            assert_eq!(m.observe(0, 0, t, 1.0), Verdict::Warmup);
        }
        assert_eq!(m.observe(0, 0, 5, 1.0), Verdict::Normal);
        assert_eq!(m.tracked_pairs(), 1);
    }

    #[test]
    fn detects_spike_after_stable_history() {
        let mut m = monitor();
        for t in 0..20 {
            m.observe(1, 2, t, 1.0 + 0.02 * (t % 2) as f64);
        }
        assert_eq!(m.observe(1, 2, 20, 8.0), Verdict::Deviation);
        // A normal sample right after is still judged against the (slightly
        // shifted) level.
        assert_ne!(m.observe(1, 2, 21, 1.0), Verdict::Warmup);
    }

    #[test]
    fn persistent_shift_becomes_new_normal() {
        let mut m = monitor();
        for t in 0..10 {
            m.observe(0, 0, t, 1.0);
        }
        // Step change: first flagged...
        assert_eq!(m.observe(0, 0, 10, 3.0), Verdict::Deviation);
        // ...but after enough samples at the new level it is normal again.
        for t in 11..30 {
            m.observe(0, 0, t, 3.0);
        }
        assert_eq!(m.observe(0, 0, 30, 3.0), Verdict::Normal);
        assert!((m.smoothed(0, 0).unwrap() - 3.0).abs() < 0.1);
    }

    #[test]
    fn small_fluctuations_stay_normal() {
        let mut m = monitor();
        for t in 0..50 {
            let v = 1.0 + 0.1 * ((t % 7) as f64 - 3.0) / 3.0;
            let verdict = m.observe(0, 0, t, v);
            assert_ne!(verdict, Verdict::Deviation, "t={t} value={v}");
        }
    }

    #[test]
    fn violations_sorted_by_severity() {
        let mut m = monitor();
        for t in 0..10 {
            m.observe(0, 0, t, 0.5);
            m.observe(0, 1, t, 3.0);
            m.observe(0, 2, t, 5.0);
        }
        let v = m.violations(2.0);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].1, 2, "worst violator first");
        assert_eq!(v[1].1, 1);
    }

    #[test]
    fn prune_stale_removes_old_pairs() {
        let mut m = monitor();
        m.observe(0, 0, 100, 1.0);
        m.observe(0, 1, 900, 1.0);
        assert_eq!(m.prune_stale(500), 1);
        assert!(m.state(0, 0).is_none());
        assert!(m.state(0, 1).is_some());
    }

    #[test]
    fn non_finite_samples_are_dropped_not_tracked() {
        let mut m = monitor();
        for t in 0..10 {
            m.observe(0, 0, t, 1.0);
        }
        let before = *m.state(0, 0).unwrap();
        assert_eq!(m.observe(0, 0, 10, f64::NAN), Verdict::Dropped);
        assert_eq!(m.observe(0, 0, 11, f64::INFINITY), Verdict::Dropped);
        assert_eq!(m.dropped(), 2);
        assert_eq!(*m.state(0, 0).unwrap(), before, "state untouched by drops");
        assert_eq!(m.observe(0, 0, 12, 1.0), Verdict::Normal);
    }

    #[test]
    fn per_pair_isolation() {
        let mut m = monitor();
        for t in 0..20 {
            m.observe(0, 0, t, 1.0);
            m.observe(1, 0, t, 100.0);
        }
        // Each pair judged by its own history.
        assert_eq!(m.observe(0, 0, 20, 1.0), Verdict::Normal);
        assert_eq!(m.observe(1, 0, 20, 100.0), Verdict::Normal);
        assert_eq!(m.observe(0, 0, 21, 100.0), Verdict::Deviation);
    }
}
