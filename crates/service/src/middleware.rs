//! The execution middleware: invoke, observe, report, adapt (paper Fig. 3,
//! left panel).
//!
//! One [`ExecutionMiddleware`] instance plays the role of a BPEL engine
//! hosting one service-based application for one user: each step it invokes
//! the bound component services, the QoS manager observes the real QoS and
//! reports it to the prediction service, and the adaptation-policy layer
//! decides rebindings using predicted QoS for the candidate services.

use crate::policy::{AdaptationPolicy, PolicyContext};
use crate::workflow::Workflow;

/// What happened in one execution step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutcome {
    /// End-to-end response time of this execution (sum over tasks).
    pub end_to_end_rt: f64,
    /// Observations made: `(service_id, observed_value)` per task, in task
    /// order — the caller forwards these to the QoS prediction service.
    pub observations: Vec<(usize, f64)>,
    /// Number of rebindings the policy executed after this step.
    pub adaptations: usize,
    /// Number of tasks whose observed QoS violated the SLA threshold.
    pub violations: usize,
}

/// A single application instance under middleware control.
#[derive(Debug, Clone)]
pub struct ExecutionMiddleware {
    /// Dense user id of the application owner (rows of the QoS matrix).
    user: usize,
    workflow: Workflow,
    /// Per-task SLA threshold used for violation accounting.
    sla_threshold: f64,
    total_adaptations: usize,
}

impl ExecutionMiddleware {
    /// Creates a middleware instance for `user` running `workflow`.
    pub fn new(user: usize, workflow: Workflow, sla_threshold: f64) -> Self {
        Self {
            user,
            workflow,
            sla_threshold,
            total_adaptations: 0,
        }
    }

    /// The owning user's dense id.
    pub fn user(&self) -> usize {
        self.user
    }

    /// The current workflow state.
    pub fn workflow(&self) -> &Workflow {
        &self.workflow
    }

    /// Total adaptation actions executed over the instance's lifetime.
    pub fn total_adaptations(&self) -> usize {
        self.total_adaptations
    }

    /// Executes one step:
    ///
    /// 1. invokes every bound service, observing ground-truth QoS via
    ///    `invoke(service_id) -> value`;
    /// 2. asks `policy` per task whether to rebind, feeding it the observed
    ///    value and candidate predictions from
    ///    `predict(user, service_id) -> Option<value>`;
    /// 3. applies the rebindings.
    pub fn step<I, P>(
        &mut self,
        mut invoke: I,
        mut predict: P,
        policy: &dyn AdaptationPolicy,
    ) -> StepOutcome
    where
        I: FnMut(usize) -> f64,
        P: FnMut(usize, usize) -> Option<f64>,
    {
        // Phase 1: invoke and observe.
        let mut observations = Vec::with_capacity(self.workflow.len());
        let mut end_to_end = 0.0;
        let mut violations = 0;
        let observed: Vec<f64> = self
            .workflow
            .tasks()
            .iter()
            .map(|task| {
                let service = task.bound_service();
                let value = invoke(service);
                observations.push((service, value));
                end_to_end += value;
                if value > self.sla_threshold {
                    violations += 1;
                }
                value
            })
            .collect();

        // Phase 2: decide and apply adaptations.
        let user = self.user;
        let mut adaptations = 0;
        for (task, &observed_value) in self.workflow.tasks_mut().iter_mut().zip(&observed) {
            let predicted: Vec<Option<f64>> = task
                .candidates
                .iter()
                .map(|&candidate| predict(user, candidate))
                .collect();
            let ctx = PolicyContext {
                observed_current: Some(observed_value),
                predicted: &predicted,
                bound: task.bound,
            };
            if let Some(new_binding) = policy.decide(&ctx) {
                if task.rebind(new_binding).is_ok() {
                    adaptations += 1;
                }
            }
        }
        self.total_adaptations += adaptations;

        StepOutcome {
            end_to_end_rt: end_to_end,
            observations,
            adaptations,
            violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BestPredictedPolicy, StaticPolicy, ThresholdPolicy};
    use crate::workflow::AbstractTask;

    fn workflow() -> Workflow {
        Workflow::new(vec![
            AbstractTask::new("A", vec![0, 1]).unwrap(),
            AbstractTask::new("B", vec![2, 3]).unwrap(),
        ])
        .unwrap()
    }

    /// Ground truth: service id -> RT; services 0 and 2 are slow.
    fn truth(service: usize) -> f64 {
        match service {
            0 => 5.0,
            1 => 0.5,
            2 => 4.0,
            3 => 0.4,
            _ => 1.0,
        }
    }

    #[test]
    fn step_observes_all_bound_services() {
        let mut mw = ExecutionMiddleware::new(7, workflow(), 10.0);
        let outcome = mw.step(truth, |_, _| None, &StaticPolicy);
        assert_eq!(outcome.observations, vec![(0, 5.0), (2, 4.0)]);
        assert_eq!(outcome.end_to_end_rt, 9.0);
        assert_eq!(outcome.adaptations, 0);
        assert_eq!(outcome.violations, 0);
        assert_eq!(mw.user(), 7);
    }

    #[test]
    fn accurate_predictions_drive_good_adaptation() {
        let mut mw = ExecutionMiddleware::new(0, workflow(), 2.0);
        let policy = ThresholdPolicy::new(2.0);
        // Perfect predictions = ground truth.
        let outcome1 = mw.step(truth, |_, s| Some(truth(s)), &policy);
        assert_eq!(outcome1.adaptations, 2, "both slow tasks should rebind");
        assert_eq!(outcome1.violations, 2);
        // After adaptation the workflow runs on the fast candidates.
        let outcome2 = mw.step(truth, |_, s| Some(truth(s)), &policy);
        assert_eq!(outcome2.end_to_end_rt, 0.9);
        assert_eq!(outcome2.violations, 0);
        assert_eq!(mw.total_adaptations(), 2);
    }

    #[test]
    fn inaccurate_predictions_cause_improper_adaptation() {
        // The paper's failure mode: predictions inverted -> the policy picks
        // the slow candidate.
        let mut mw = ExecutionMiddleware::new(0, workflow(), 2.0);
        let policy = ThresholdPolicy::new(2.0);
        let lying = |_: usize, s: usize| Some(10.0 - truth(s)); // inverted ranking
        mw.step(truth, lying, &policy);
        // Bound services unchanged or switched badly; execute again:
        let outcome = mw.step(truth, lying, &policy);
        assert!(
            outcome.end_to_end_rt > 2.0,
            "bad predictions should not reach the fast configuration"
        );
    }

    #[test]
    fn static_policy_never_adapts() {
        let mut mw = ExecutionMiddleware::new(0, workflow(), 0.1);
        for _ in 0..3 {
            let o = mw.step(truth, |_, s| Some(truth(s)), &StaticPolicy);
            assert_eq!(o.adaptations, 0);
        }
        assert_eq!(mw.total_adaptations(), 0);
        assert_eq!(mw.workflow().bound_services(), vec![0, 2]);
    }

    #[test]
    fn best_predicted_converges_to_optimum_and_stays() {
        let mut mw = ExecutionMiddleware::new(0, workflow(), 10.0);
        let policy = BestPredictedPolicy;
        mw.step(truth, |_, s| Some(truth(s)), &policy);
        let second = mw.step(truth, |_, s| Some(truth(s)), &policy);
        assert_eq!(second.adaptations, 0, "optimum is stable");
        assert_eq!(mw.workflow().bound_services(), vec![1, 3]);
    }

    #[test]
    fn violations_counted_per_task() {
        let mut mw = ExecutionMiddleware::new(0, workflow(), 4.5);
        let o = mw.step(truth, |_, _| None, &StaticPolicy);
        assert_eq!(o.violations, 1); // only service 0 (5.0) exceeds 4.5
    }
}
