//! MAPE-K style adaptation planner.
//!
//! The paper positions AMF as the *knowledge* component of a runtime
//! adaptation loop (Fig. 1): the system **M**onitors QoS, **A**nalyzes
//! predicted accuracy and drift, **P**lans a reconfiguration, and
//! **E**xecutes it via candidate re-ranking. This module supplies the
//! Analyze/Plan stages: a [`Planner`] consumes windowed accuracy
//! ([`amf_core::WindowedAccuracy`]), drift-sentinel alarms, and the fleet's
//! observed SLO-violation rate, and decides each tick whether to trigger a
//! re-ranking pass.
//!
//! The planner grades health into tiers — healthy / warning / unhealthy /
//! self-heal — and acts with *hysteresis*: warnings must dwell before a plan
//! fires, and consecutive plans are separated by a cooldown. A stationary
//! stream therefore never flaps, while a drift alarm (the model itself
//! saying its error distribution shifted) bypasses the cooldown entirely.

use amf_core::WindowedAccuracy;

use crate::ServiceError;

/// Health grade of the prediction/adaptation plane at one tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlannerTier {
    /// Accuracy and violations within bounds; no action ever.
    Healthy,
    /// Degradation visible but tolerable; act only after dwelling.
    Warning,
    /// Degradation past the hard thresholds; act when cooldown allows.
    Unhealthy,
    /// Drift alarm from the model itself; act immediately, ignore cooldown.
    SelfHeal,
}

impl PlannerTier {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            PlannerTier::Healthy => "healthy",
            PlannerTier::Warning => "warning",
            PlannerTier::Unhealthy => "unhealthy",
            PlannerTier::SelfHeal => "self-heal",
        }
    }
}

/// Thresholds and hysteresis tuning for a [`Planner`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerConfig {
    /// Windowed MRE at which the plane enters [`PlannerTier::Warning`].
    pub mre_warning: f64,
    /// Windowed MRE at which the plane is [`PlannerTier::Unhealthy`].
    pub mre_unhealthy: f64,
    /// Fleet SLO-violation rate (per tick) for [`PlannerTier::Warning`].
    pub violation_warning: f64,
    /// Fleet SLO-violation rate for [`PlannerTier::Unhealthy`].
    pub violation_unhealthy: f64,
    /// Minimum windowed samples before MRE/NMAE are trusted at all.
    pub min_samples: usize,
    /// Ticks a warning must persist before it may trigger a plan.
    pub dwell: u32,
    /// Minimum ticks between consecutive plans (self-heal ignores this).
    pub cooldown: u32,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            mre_warning: 0.6,
            mre_unhealthy: 1.2,
            violation_warning: 0.10,
            violation_unhealthy: 0.30,
            min_samples: 32,
            dwell: 3,
            cooldown: 8,
        }
    }
}

impl PlannerConfig {
    fn validate(&self) -> Result<(), ServiceError> {
        let ordered = |lo: f64, hi: f64| lo.is_finite() && hi.is_finite() && 0.0 < lo && lo < hi;
        if !ordered(self.mre_warning, self.mre_unhealthy) {
            return Err(ServiceError::InvalidConfig(
                "planner: need 0 < mre_warning < mre_unhealthy".into(),
            ));
        }
        if !ordered(self.violation_warning, self.violation_unhealthy)
            || self.violation_unhealthy > 1.0
        {
            return Err(ServiceError::InvalidConfig(
                "planner: need 0 < violation_warning < violation_unhealthy <= 1".into(),
            ));
        }
        Ok(())
    }
}

/// What the Monitor stage hands the planner each tick.
#[derive(Debug, Clone, Copy)]
pub struct PlannerObservation {
    /// Windowed accuracy of the prediction model.
    pub accuracy: WindowedAccuracy,
    /// Whether the drift sentinel raised a *new* alarm since the last tick.
    pub drift_alarm: bool,
    /// Fraction of this tick's workflow executions that violated their SLO.
    pub violation_rate: f64,
}

/// The planner's verdict for one tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerDecision {
    /// Health grade assigned this tick.
    pub tier: PlannerTier,
    /// Whether the Execute stage should re-rank candidates now.
    pub act: bool,
    /// Human-readable cause (stable strings, usable in reports).
    pub reason: &'static str,
}

/// MAPE-K Plan stage with dwell + cooldown hysteresis.
#[derive(Debug, Clone)]
pub struct Planner {
    config: PlannerConfig,
    tick: u32,
    warning_streak: u32,
    last_plan: Option<u32>,
    plans: u64,
}

impl Planner {
    /// Builds a planner.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::InvalidConfig`] when thresholds are not
    /// strictly ordered.
    pub fn new(config: PlannerConfig) -> Result<Self, ServiceError> {
        config.validate()?;
        Ok(Self {
            config,
            tick: 0,
            warning_streak: 0,
            last_plan: None,
            plans: 0,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Number of plans issued (ticks where `act` was true).
    pub fn plans(&self) -> u64 {
        self.plans
    }

    /// Ticks observed so far.
    pub fn ticks(&self) -> u32 {
        self.tick
    }

    /// Returns the planner to its freshly-constructed state (config kept).
    pub fn reset(&mut self) {
        self.tick = 0;
        self.warning_streak = 0;
        self.last_plan = None;
        self.plans = 0;
    }

    fn cooled_down(&self) -> bool {
        match self.last_plan {
            None => true,
            Some(t) => self.tick.saturating_sub(t) >= self.config.cooldown,
        }
    }

    /// Consumes one tick's monitoring data and decides whether to plan.
    pub fn observe(&mut self, obs: &PlannerObservation) -> PlannerDecision {
        let c = self.config;
        let mre = if obs.accuracy.samples >= c.min_samples as u64 {
            obs.accuracy.mre.filter(|m| m.is_finite()).unwrap_or(0.0)
        } else {
            0.0
        };

        let (tier, reason) = if obs.drift_alarm {
            (PlannerTier::SelfHeal, "drift-alarm")
        } else if obs.violation_rate >= c.violation_unhealthy {
            (PlannerTier::Unhealthy, "violation-rate-unhealthy")
        } else if mre >= c.mre_unhealthy {
            (PlannerTier::Unhealthy, "mre-unhealthy")
        } else if obs.violation_rate >= c.violation_warning {
            (PlannerTier::Warning, "violation-rate-warning")
        } else if mre >= c.mre_warning {
            (PlannerTier::Warning, "mre-warning")
        } else {
            (PlannerTier::Healthy, "healthy")
        };

        let act = match tier {
            // The model itself reported a distribution shift: stale rankings
            // are worse than a spurious re-rank, so bypass the cooldown.
            PlannerTier::SelfHeal => true,
            PlannerTier::Unhealthy => self.cooled_down(),
            PlannerTier::Warning => {
                self.warning_streak += 1;
                self.warning_streak >= c.dwell && self.cooled_down()
            }
            PlannerTier::Healthy => false,
        };
        if tier != PlannerTier::Warning {
            self.warning_streak = 0;
        }
        if act {
            self.last_plan = Some(self.tick);
            self.plans += 1;
        }
        self.tick += 1;
        PlannerDecision { tier, act, reason }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(mre: f64, samples: usize) -> WindowedAccuracy {
        WindowedAccuracy {
            mre: Some(mre),
            nmae: Some(mre),
            window_len: samples,
            samples: samples as u64,
        }
    }

    fn obs(mre: f64, violation_rate: f64) -> PlannerObservation {
        PlannerObservation {
            accuracy: acc(mre, 100),
            drift_alarm: false,
            violation_rate,
        }
    }

    #[test]
    fn stationary_stream_never_plans() {
        let mut planner = Planner::new(PlannerConfig::default()).unwrap();
        for _ in 0..500 {
            let d = planner.observe(&obs(0.2, 0.0));
            assert_eq!(d.tier, PlannerTier::Healthy);
            assert!(!d.act);
        }
        assert_eq!(planner.plans(), 0);
    }

    #[test]
    fn warning_requires_dwell_then_cooldown() {
        let cfg = PlannerConfig {
            dwell: 3,
            cooldown: 8,
            ..Default::default()
        };
        let mut planner = Planner::new(cfg).unwrap();
        // Two warning ticks, then healthy: the streak resets, no plan.
        assert!(!planner.observe(&obs(0.8, 0.0)).act);
        assert!(!planner.observe(&obs(0.8, 0.0)).act);
        assert!(!planner.observe(&obs(0.2, 0.0)).act);
        // Three consecutive warnings: the third plans.
        assert!(!planner.observe(&obs(0.8, 0.0)).act);
        assert!(!planner.observe(&obs(0.8, 0.0)).act);
        let d = planner.observe(&obs(0.8, 0.0));
        assert_eq!(d.tier, PlannerTier::Warning);
        assert!(d.act);
        // Warnings continue but the cooldown gates further plans.
        for _ in 0..(cfg.cooldown - 1) {
            assert!(!planner.observe(&obs(0.8, 0.0)).act);
        }
        assert!(planner.observe(&obs(0.8, 0.0)).act);
        assert_eq!(planner.plans(), 2);
    }

    #[test]
    fn unhealthy_acts_without_dwell_but_respects_cooldown() {
        let mut planner = Planner::new(PlannerConfig::default()).unwrap();
        let d = planner.observe(&obs(0.2, 0.5));
        assert_eq!(d.tier, PlannerTier::Unhealthy);
        assert_eq!(d.reason, "violation-rate-unhealthy");
        assert!(d.act);
        assert!(!planner.observe(&obs(0.2, 0.5)).act, "cooldown holds");
    }

    #[test]
    fn self_heal_bypasses_cooldown() {
        let mut planner = Planner::new(PlannerConfig::default()).unwrap();
        assert!(planner.observe(&obs(2.0, 0.0)).act); // unhealthy MRE
        let alarm = PlannerObservation {
            accuracy: acc(0.1, 100),
            drift_alarm: true,
            violation_rate: 0.0,
        };
        let d = planner.observe(&alarm);
        assert_eq!(d.tier, PlannerTier::SelfHeal);
        assert!(d.act, "drift alarms must not be gated by cooldown");
    }

    #[test]
    fn cold_window_mre_is_ignored() {
        let mut planner = Planner::new(PlannerConfig::default()).unwrap();
        let cold = PlannerObservation {
            accuracy: acc(5.0, 3), // huge MRE but far below min_samples
            drift_alarm: false,
            violation_rate: 0.0,
        };
        let d = planner.observe(&cold);
        assert_eq!(d.tier, PlannerTier::Healthy);
    }

    #[test]
    fn invalid_configs_rejected() {
        for cfg in [
            PlannerConfig {
                mre_warning: 2.0,
                mre_unhealthy: 1.0,
                ..Default::default()
            },
            PlannerConfig {
                violation_warning: 0.0,
                ..Default::default()
            },
            PlannerConfig {
                violation_unhealthy: 1.5,
                ..Default::default()
            },
        ] {
            assert!(Planner::new(cfg).is_err());
        }
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut planner = Planner::new(PlannerConfig::default()).unwrap();
        planner.observe(&obs(2.0, 0.9));
        assert_eq!(planner.plans(), 1);
        planner.reset();
        assert_eq!(planner.plans(), 0);
        assert_eq!(planner.ticks(), 0);
        assert!(planner.observe(&obs(2.0, 0.9)).act, "cooldown cleared");
    }

    #[test]
    fn tier_labels_are_stable() {
        assert_eq!(PlannerTier::Healthy.label(), "healthy");
        assert_eq!(PlannerTier::SelfHeal.label(), "self-heal");
    }
}
