//! Closed-loop adaptation scenarios: phase-regime worlds driven through the
//! full MAPE-K loop, measured against a static-selection baseline.
//!
//! Each [`ScenarioSpec`] names a seeded [`qos_dataset::RegimeTimeline`]
//! (good / congested / lossy / recovery, plus churn storms, flash crowds,
//! regional outages, and correlated-outlier bursts). The [`ScenarioEngine`]
//! runs the same world twice:
//!
//! * **adaptive** — monitoring feeds a [`crate::adapt::Planner`]; when it
//!   plans, the Execute stage re-ranks every candidate via
//!   [`QosPredictionService::rank_candidates_ids`] and applies a
//!   [`ThresholdPolicy`] rebind with an improvement margin;
//! * **static** — the initial bindings never change ([`StaticPolicy`]),
//!   which is exactly what a system without runtime QoS prediction does.
//!
//! The difference in SLO-violation rate is the *adaptation gain* — the
//! system-level payoff the paper's framework exists to deliver. Outcomes
//! serialize to the committed `amf-scenario/v1` report; every draw is a pure
//! function of the seed, so the same seed reproduces the report byte for
//! byte.

use std::collections::BTreeMap;
use std::path::PathBuf;

use amf_core::{FaultContext, FaultPlan};
use qos_dataset::{RegimePhase, RegimeTimeline, RegimeWorld, RegimeWorldConfig};
use qos_obs::{FlightConfig, FlightRecorder, Json};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::adapt::{Planner, PlannerConfig, PlannerObservation};
use crate::middleware::ExecutionMiddleware;
use crate::policy::{AdaptationPolicy, StaticPolicy, ThresholdPolicy};
use crate::prediction_service::{QosPredictionService, QosRecord, ServiceConfig};
use crate::workflow::{AbstractTask, Workflow};
use crate::ServiceError;
use qos_linalg::random::sample_indices;

/// Schema identifier of the scenario report.
pub const SCENARIO_SCHEMA: &str = "amf-scenario/v1";

/// One named scenario: a summary plus its phase timeline.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Stable scenario name (kebab-case, used by the CLI and CI gates).
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// The phase timeline, `(phase, ticks)` back to back.
    pub spans: Vec<(RegimePhase, u32)>,
}

/// The scenario catalog. `quick` shrinks every span (CI smoke / unit tests);
/// the full lengths generate the committed report.
///
/// `good` is the stationary control: a planner with working hysteresis must
/// issue **zero** plans (and therefore zero flaps) on it.
pub fn catalog(quick: bool) -> Vec<ScenarioSpec> {
    let u = if quick { 12 } else { 30 };
    use RegimePhase::*;
    vec![
        ScenarioSpec {
            name: "good",
            summary: "stationary control: no regime shift, planner must stay quiet",
            spans: vec![(Good, 4 * u)],
        },
        ScenarioSpec {
            name: "congested",
            summary: "sustained congestion hits stress-prone services",
            spans: vec![(Good, u), (Congested, 2 * u), (Good, u)],
        },
        ScenarioSpec {
            name: "lossy",
            summary: "lossy transport: retransmit tails spike observations",
            spans: vec![(Good, u), (Lossy, 2 * u), (Good, u)],
        },
        ScenarioSpec {
            name: "recovery",
            summary: "congestion followed by exponential relief",
            spans: vec![(Good, u), (Congested, u), (Recovery, 2 * u)],
        },
        ScenarioSpec {
            name: "flash-crowd",
            summary: "global load surge, stress-prone services slow most",
            spans: vec![(Good, u), (FlashCrowd, 2 * u), (Good, u)],
        },
        ScenarioSpec {
            name: "churn-storm",
            summary: "a seeded fraction of services goes dark mid-run",
            spans: vec![(Good, u), (ChurnStorm, 2 * u), (Good, u)],
        },
        ScenarioSpec {
            name: "regional-outage",
            summary: "one region's services time out entirely",
            spans: vec![(Good, u), (RegionalOutage, 2 * u), (Good, u)],
        },
        ScenarioSpec {
            name: "outlier-burst",
            summary: "correlated measurement garbage; actual QoS unaffected",
            spans: vec![(Good, u), (OutlierBurst, 2 * u), (Good, u)],
        },
        ScenarioSpec {
            name: "multi-phase",
            summary: "good -> congested -> lossy -> recovery, back to back",
            spans: vec![(Good, u), (Congested, u), (Lossy, u), (Recovery, u)],
        },
    ]
}

/// Looks a scenario up by name in the catalog.
///
/// # Errors
///
/// Returns [`ServiceError::InvalidConfig`] listing the known names.
pub fn find_scenario(name: &str, quick: bool) -> Result<ScenarioSpec, ServiceError> {
    let all = catalog(quick);
    all.iter().find(|s| s.name == name).cloned().ok_or_else(|| {
        let known: Vec<&str> = all.iter().map(|s| s.name).collect();
        ServiceError::InvalidConfig(format!(
            "unknown scenario '{name}' (known: {})",
            known.join(", ")
        ))
    })
}

/// Engine tuning: world dimensions, fleet shape, SLO, and planner knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Seed for the world, the fleet layout, and the model.
    pub seed: u64,
    /// Number of monitored users (rows of the QoS matrix).
    pub users: usize,
    /// Number of candidate services (columns).
    pub services: usize,
    /// Service regions (regional outages darken one).
    pub regions: usize,
    /// Applications under middleware control (each owned by one user).
    pub apps: usize,
    /// Abstract tasks per application.
    pub tasks_per_app: usize,
    /// Candidate services per task.
    pub candidates_per_task: usize,
    /// Per-task SLO on response time (seconds).
    pub slo: f64,
    /// Fraction of the user–service matrix observed per tick as background
    /// monitoring traffic.
    pub background_density: f64,
    /// Relative margin a re-rank must promise before a rebind fires.
    pub min_improvement: f64,
    /// A rebind that returns to the immediately-previous binding within this
    /// many ticks counts as a *flap*.
    pub flap_window: u32,
    /// Per-tick fleet violation rate at or below which the fleet counts as
    /// recovered (time-to-recover needs three consecutive such ticks).
    pub recover_threshold: f64,
    /// Planner thresholds and hysteresis.
    pub planner: PlannerConfig,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            users: 12,
            services: 40,
            regions: 4,
            apps: 6,
            tasks_per_app: 2,
            candidates_per_task: 4,
            slo: 2.5,
            background_density: 0.08,
            min_improvement: 0.1,
            flap_window: 6,
            recover_threshold: 0.05,
            planner: PlannerConfig::default(),
        }
    }
}

impl ScenarioConfig {
    fn validate(&self) -> Result<(), ServiceError> {
        let bad = |msg: &str| Err(ServiceError::InvalidConfig(format!("scenario: {msg}")));
        if self.apps == 0 || self.apps > self.users {
            return bad("need 1 <= apps <= users");
        }
        if self.tasks_per_app == 0 || self.candidates_per_task == 0 {
            return bad("workflow shape must be non-degenerate");
        }
        if self.tasks_per_app * self.candidates_per_task > self.services {
            return bad("not enough services for disjoint candidate sets");
        }
        if !(self.slo.is_finite() && self.slo > 0.0) {
            return bad("slo must be positive");
        }
        if !(0.0 < self.background_density && self.background_density <= 1.0) {
            return bad("background_density must be in (0, 1]");
        }
        if !(0.0..1.0).contains(&self.min_improvement) {
            return bad("min_improvement must be in [0, 1)");
        }
        if !(0.0..1.0).contains(&self.recover_threshold) {
            return bad("recover_threshold must be in [0, 1)");
        }
        Ok(())
    }
}

/// Metrics of one run (one mode over one scenario).
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// `"adaptive"` or `"static"`.
    pub mode: &'static str,
    /// Task executions (apps × tasks × ticks).
    pub executions: u64,
    /// Task executions that violated the SLO.
    pub violations: u64,
    /// `violations / executions`.
    pub slo_violation_rate: f64,
    /// Mean end-to-end workflow RT across apps and ticks (seconds).
    pub mean_end_to_end_rt: f64,
    /// Rebinds the policy executed.
    pub rebinds: u64,
    /// Rebinds that returned to the immediately-previous binding within the
    /// flap window.
    pub flaps: u64,
    /// Ticks from the first disruptive phase's start until the fleet's
    /// per-tick violation rate stayed at or below the recover threshold for
    /// three consecutive ticks. `None` when it never recovered (or the
    /// scenario has no disruption).
    pub time_to_recover: Option<u32>,
    /// Plans the MAPE-K planner issued (0 in static mode).
    pub planner_plans: u64,
    /// `(user-side, service-side)` drift alarms raised after warm-up.
    pub drift_alarms: (u64, u64),
}

/// Both runs of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// The timeline it ran.
    pub spans: Vec<(RegimePhase, u32)>,
    /// Total ticks.
    pub ticks: u32,
    /// Planner-driven run.
    pub adaptive: RunMetrics,
    /// Never-rebind baseline.
    pub baseline: RunMetrics,
}

impl ScenarioOutcome {
    /// Absolute SLO-violation-rate reduction delivered by adaptation
    /// (positive = adaptive better).
    pub fn adaptation_gain(&self) -> f64 {
        self.baseline.slo_violation_rate - self.adaptive.slo_violation_rate
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Adaptive,
    Static,
}

/// Runs scenarios and aggregates their outcomes.
#[derive(Debug, Clone)]
pub struct ScenarioEngine {
    config: ScenarioConfig,
    flight_dir: Option<PathBuf>,
}

impl ScenarioEngine {
    /// Builds an engine.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::InvalidConfig`] for degenerate configs.
    pub fn new(config: ScenarioConfig) -> Result<Self, ServiceError> {
        config.validate()?;
        Planner::new(config.planner)?;
        Ok(Self {
            config,
            flight_dir: None,
        })
    }

    /// Writes a per-scenario `amf-flight/v1` dump (`<dir>/<name>.flight.jsonl`)
    /// after each run: the global trace ring (engine panics, respawns, guard
    /// quarantines, drift alarms) plus the run's outcome metrics — the same
    /// black-box format the serving plane dumps, so `amf-qos trace` reads
    /// both.
    #[must_use]
    pub fn with_flight_dir(mut self, dir: PathBuf) -> Self {
        self.flight_dir = Some(dir);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// Runs one scenario in both modes over the same seeded world.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::InvalidConfig`] when the spec's timeline or a
    /// phase fault spec is invalid.
    pub fn run_scenario(&self, spec: &ScenarioSpec) -> Result<ScenarioOutcome, ServiceError> {
        let timeline = RegimeTimeline::new(spec.spans.clone())
            .map_err(|e| ServiceError::InvalidConfig(e.to_string()))?;
        let world_config = RegimeWorldConfig {
            users: self.config.users,
            services: self.config.services,
            regions: self.config.regions,
            seed: self.config.seed,
            ..Default::default()
        };
        let mut world = RegimeWorld::new(world_config, timeline.clone())
            .map_err(|e| ServiceError::InvalidConfig(e.to_string()))?;
        // A regional outage only measures anything when the fleet actually
        // depends on the darkened region: aim it at the region of the first
        // bound service (fleet construction is seed-only, so this stays
        // deterministic and identical across both modes).
        if spec
            .spans
            .iter()
            .any(|&(p, _)| p == RegimePhase::RegionalOutage)
        {
            if let Some(service) = self
                .build_fleet()
                .first()
                .and_then(|mw| mw.workflow().tasks().first().map(|t| t.bound_service()))
            {
                let aimed = RegimeWorldConfig {
                    outage_region: Some(world.region_of(service)),
                    ..world_config
                };
                world = RegimeWorld::new(aimed, timeline)
                    .map_err(|e| ServiceError::InvalidConfig(e.to_string()))?;
            }
        }
        let fault_plans = self.phase_fault_plans(spec)?;
        let adaptive = self.run_mode(spec, &world, &fault_plans, Mode::Adaptive);
        let baseline = self.run_mode(spec, &world, &fault_plans, Mode::Static);
        let outcome = ScenarioOutcome {
            name: spec.name.to_string(),
            spans: spec.spans.clone(),
            ticks: world.timeline().total_ticks(),
            adaptive,
            baseline,
        };
        self.dump_flight(&outcome);
        Ok(outcome)
    }

    /// Flight-records one finished scenario when a dump directory is set.
    fn dump_flight(&self, outcome: &ScenarioOutcome) {
        let Some(dir) = &self.flight_dir else {
            return;
        };
        let recorder = FlightRecorder::new(FlightConfig {
            path: Some(dir.join(format!("{}.flight.jsonl", outcome.name))),
            ..FlightConfig::default()
        });
        let events = qos_obs::global().trace().events();
        let mut metrics = Json::obj();
        metrics
            .set("scenario", Json::Str(outcome.name.clone()))
            .set("ticks", Json::UInt(u64::from(outcome.ticks)))
            .set("adaptation_gain", Json::Num(outcome.adaptation_gain()))
            .set(
                "adaptive_slo_violation_rate",
                Json::Num(outcome.adaptive.slo_violation_rate),
            )
            .set(
                "static_slo_violation_rate",
                Json::Num(outcome.baseline.slo_violation_rate),
            )
            .set("rebinds", Json::UInt(outcome.adaptive.rebinds))
            .set("flaps", Json::UInt(outcome.adaptive.flaps))
            .set("planner_plans", Json::UInt(outcome.adaptive.planner_plans))
            .set(
                "drift_alarms",
                Json::UInt(outcome.adaptive.drift_alarms.0 + outcome.adaptive.drift_alarms.1),
            );
        recorder.dump(
            &format!("scenario:{}", outcome.name),
            &[],
            &[],
            &events,
            &metrics,
        );
    }

    /// Runs every spec in order.
    ///
    /// # Errors
    ///
    /// Propagates the first scenario failure.
    pub fn run_all(&self, specs: &[ScenarioSpec]) -> Result<Vec<ScenarioOutcome>, ServiceError> {
        specs.iter().map(|s| self.run_scenario(s)).collect()
    }

    /// Parses each distinct phase's transport fault spec once, in the
    /// scenario context (network verbs are rejected there: they cannot fire
    /// against an in-process observation stream).
    fn phase_fault_plans(
        &self,
        spec: &ScenarioSpec,
    ) -> Result<BTreeMap<&'static str, FaultPlan>, ServiceError> {
        let mut plans = BTreeMap::new();
        for &(phase, _) in &spec.spans {
            if let Some(fault_spec) = phase.fault_spec() {
                if !plans.contains_key(phase.label()) {
                    let seeded = format!("{fault_spec};seed={}", self.config.seed);
                    let plan = FaultPlan::parse_in(&seeded, FaultContext::Scenario)
                        .map_err(ServiceError::InvalidConfig)?;
                    plans.insert(phase.label(), plan);
                }
            }
        }
        Ok(plans)
    }

    /// Deterministic fleet: app `i` belongs to user `i`; candidate sets are
    /// drawn without replacement from a seed-pinned RNG, so the adaptive and
    /// static runs start from identical bindings.
    fn build_fleet(&self) -> Vec<ExecutionMiddleware> {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xF1EE7);
        (0..self.config.apps)
            .filter_map(|user| {
                let needed = self.config.tasks_per_app * self.config.candidates_per_task;
                let services = sample_indices(&mut rng, self.config.services, needed);
                let tasks: Vec<AbstractTask> = services
                    .chunks(self.config.candidates_per_task)
                    .enumerate()
                    .filter_map(|(k, chunk)| {
                        AbstractTask::new(format!("task-{k}"), chunk.to_vec()).ok()
                    })
                    .collect();
                Workflow::new(tasks)
                    .ok()
                    .map(|wf| ExecutionMiddleware::new(user, wf, self.config.slo))
            })
            .collect()
    }

    fn run_mode(
        &self,
        spec: &ScenarioSpec,
        world: &RegimeWorld,
        fault_plans: &BTreeMap<&'static str, FaultPlan>,
        mode: Mode,
    ) -> RunMetrics {
        let c = &self.config;
        let service = QosPredictionService::new(ServiceConfig {
            amf: amf_core::AmfConfig::response_time().with_seed(c.seed),
            replay: amf_core::trainer::ReplayOptions {
                max_iterations: 20_000,
                min_iterations: 800,
                window: 400,
                tolerance: 2e-3,
                patience: 2,
            },
            ..Default::default()
        });
        // Register the whole population up front so dense ids equal world
        // indices in both modes.
        for u in 0..c.users {
            service.join_user(&format!("u{u}"));
        }
        for s in 0..c.services {
            service.join_service(&format!("s{s}"));
        }
        let mut fleet = self.build_fleet();
        let mut planner = match Planner::new(c.planner) {
            Ok(p) => p,
            Err(_) => unreachable!("config validated in ScenarioEngine::new"),
        };

        let total_ticks = world.timeline().total_ticks();
        let warmup_end = spec.spans.first().map_or(0, |&(_, t)| t);
        let tasks_per_tick = (fleet.len() * c.tasks_per_app) as u64;
        let threshold_policy = ThresholdPolicy {
            threshold: c.slo,
            min_improvement: c.min_improvement,
        };

        let mut executions = 0u64;
        let mut violations = 0u64;
        let mut rebinds = 0u64;
        let mut flaps = 0u64;
        let mut plans_issued = 0u64;
        let mut rt_sum = 0.0;
        let mut tick_rates: Vec<f64> = Vec::with_capacity(total_ticks as usize);
        let mut prev_rate = 0.0;
        let mut prev_alarm_total = 0u64;
        // Per (app, task): the most recent rebind as (tick, previous binding).
        let mut last_rebind: Vec<Vec<Option<(u32, usize)>>> =
            vec![vec![None; c.tasks_per_app]; fleet.len()];

        for tick in 0..total_ticks {
            let (phase, _) = world.phase_at(tick);
            service.advance_clock(u64::from(tick));

            // Monitor: background traffic — a seeded slice of the matrix,
            // possibly mangled by the phase's transport fault plan.
            let mut batch: Vec<QosRecord> = Vec::new();
            for u in 0..c.users {
                for s in 0..c.services {
                    if hash01(c.seed ^ 0xBAC6, u as u64, s as u64, u64::from(tick))
                        < c.background_density
                    {
                        batch.push(QosRecord {
                            user: format!("u{u}"),
                            service: format!("s{s}"),
                            timestamp: u64::from(tick),
                            value: world.observe(u, s, tick).reported,
                        });
                    }
                }
            }
            if let Some(plan) = fault_plans.get(phase.label()) {
                batch = plan.mutate_stream(&batch);
            }
            service.submit_batch(batch);
            service.idle();

            // The initial phase is warm-up: cold-start error transients can
            // trip the drift sentinel, so at the boundary the sentinel is
            // reset — scenario alarms then attribute to the disruption, never
            // to model warm-up (and never to a previous run).
            if tick == warmup_end {
                service.reset_drift_sentinel();
                prev_alarm_total = 0;
            }

            // Analyze + Plan (adaptive mode only).
            let acting = match mode {
                Mode::Static => false,
                Mode::Adaptive => {
                    let (ua, sa) = service.drift_alarms();
                    let alarm_total = ua + sa;
                    let decision = planner.observe(&PlannerObservation {
                        accuracy: service.windowed_accuracy(),
                        drift_alarm: alarm_total > prev_alarm_total,
                        violation_rate: prev_rate,
                    });
                    prev_alarm_total = alarm_total;
                    if decision.act {
                        plans_issued += 1;
                    }
                    decision.act
                }
            };

            // Execute: every app runs its workflow; when the planner acted,
            // candidates are re-ranked and the threshold policy may rebind.
            let mut tick_violations = 0u64;
            for (app_idx, app) in fleet.iter_mut().enumerate() {
                let user = app.user();
                let before = app.workflow().bound_services();
                let outcome = if acting {
                    let ranked = service.rank_candidates_ids(user, c.services);
                    let mut values: Vec<Option<f64>> = vec![None; c.services];
                    for (s, v) in ranked {
                        if s < values.len() {
                            values[s] = Some(v);
                        }
                    }
                    app.step(
                        |svc| world.actual(user, svc, tick),
                        |_, s| values.get(s).copied().flatten(),
                        &threshold_policy as &dyn AdaptationPolicy,
                    )
                } else {
                    app.step(
                        |svc| world.actual(user, svc, tick),
                        |_, _| None,
                        &StaticPolicy as &dyn AdaptationPolicy,
                    )
                };
                let after = app.workflow().bound_services();
                for (task_idx, (&b, &a)) in before.iter().zip(after.iter()).enumerate() {
                    if b != a {
                        rebinds += 1;
                        if let Some((t0, from)) = last_rebind[app_idx][task_idx] {
                            if a == from && tick - t0 <= c.flap_window {
                                flaps += 1;
                            }
                        }
                        last_rebind[app_idx][task_idx] = Some((tick, b));
                    }
                }
                // The app's own observations feed the predictor too — as
                // *reported* values (outlier bursts corrupt these as well).
                let mut own: Vec<QosRecord> = Vec::with_capacity(outcome.observations.len());
                for &(svc, _) in &outcome.observations {
                    own.push(QosRecord {
                        user: format!("u{user}"),
                        service: format!("s{svc}"),
                        timestamp: u64::from(tick),
                        value: world.observe(user, svc, tick).reported,
                    });
                }
                service.submit_batch(own);
                executions += app.workflow().len() as u64;
                violations += outcome.violations as u64;
                tick_violations += outcome.violations as u64;
                rt_sum += outcome.end_to_end_rt;
            }
            let rate = if tasks_per_tick == 0 {
                0.0
            } else {
                tick_violations as f64 / tasks_per_tick as f64
            };
            tick_rates.push(rate);
            prev_rate = rate;
        }

        let (ua, sa) = service.drift_alarms();
        RunMetrics {
            mode: match mode {
                Mode::Adaptive => "adaptive",
                Mode::Static => "static",
            },
            executions,
            violations,
            slo_violation_rate: if executions == 0 {
                0.0
            } else {
                violations as f64 / executions as f64
            },
            mean_end_to_end_rt: if fleet.is_empty() {
                0.0
            } else {
                rt_sum / (f64::from(total_ticks) * fleet.len() as f64)
            },
            rebinds,
            flaps,
            time_to_recover: time_to_recover(spec, &tick_rates, c.recover_threshold),
            planner_plans: plans_issued,
            drift_alarms: (ua, sa),
        }
    }
}

/// Ticks from the first disruptive phase's start until the fleet's per-tick
/// violation rate stayed at or below `threshold` for three consecutive
/// ticks. `None` for scenarios without disruption or fleets that never
/// recover inside the timeline.
fn time_to_recover(spec: &ScenarioSpec, tick_rates: &[f64], threshold: f64) -> Option<u32> {
    let mut start = 0u32;
    let mut disruption = None;
    for &(phase, ticks) in &spec.spans {
        if phase.is_disruptive() {
            disruption = Some(start);
            break;
        }
        start += ticks;
    }
    let disruption = disruption?;
    let rates = &tick_rates[disruption as usize..];
    rates
        .windows(3)
        .position(|w| w.iter().all(|&r| r <= threshold))
        .map(|offset| offset as u32)
}

/// Renders outcomes as the committed `amf-scenario/v1` report. Key order is
/// lexicographic (BTreeMap-backed), floats avoid wall-clock inputs, and all
/// counters are exact — the same seed yields a byte-identical document.
pub fn report_json(config: &ScenarioConfig, quick: bool, outcomes: &[ScenarioOutcome]) -> Json {
    let run = |m: &RunMetrics| {
        let mut j = Json::obj();
        j.set("executions", Json::UInt(m.executions))
            .set("violations", Json::UInt(m.violations))
            .set("slo_violation_rate", Json::Num(m.slo_violation_rate))
            .set("mean_end_to_end_rt", Json::Num(m.mean_end_to_end_rt))
            .set("rebinds", Json::UInt(m.rebinds))
            .set("flaps", Json::UInt(m.flaps))
            .set(
                "time_to_recover",
                m.time_to_recover
                    .map_or(Json::Null, |t| Json::UInt(u64::from(t))),
            )
            .set("planner_plans", Json::UInt(m.planner_plans))
            .set("drift_alarms", {
                let mut d = Json::obj();
                d.set("user", Json::UInt(m.drift_alarms.0))
                    .set("service", Json::UInt(m.drift_alarms.1));
                d
            });
        j
    };

    let mut scenarios = Vec::with_capacity(outcomes.len());
    let mut wins = 0u64;
    let mut ties = 0u64;
    let mut regressions = 0u64;
    let mut total_flaps = 0u64;
    for o in outcomes {
        let gain = o.adaptation_gain();
        if gain > 0.0 {
            wins += 1;
        } else if gain == 0.0 {
            ties += 1;
        } else {
            regressions += 1;
        }
        total_flaps += o.adaptive.flaps;
        let phases: Vec<Json> = o
            .spans
            .iter()
            .map(|&(phase, ticks)| {
                let mut p = Json::obj();
                p.set("phase", Json::Str(phase.label().to_string()))
                    .set("ticks", Json::UInt(u64::from(ticks)));
                p
            })
            .collect();
        let mut s = Json::obj();
        s.set("name", Json::Str(o.name.clone()))
            .set("phases", Json::Arr(phases))
            .set("ticks", Json::UInt(u64::from(o.ticks)))
            .set("adaptive", run(&o.adaptive))
            .set("static", run(&o.baseline))
            .set("adaptation_gain", Json::Num(gain))
            .set(
                "adaptive_no_worse",
                Json::Bool(o.adaptive.slo_violation_rate <= o.baseline.slo_violation_rate),
            );
        scenarios.push(s);
    }

    let mut summary = Json::obj();
    summary
        .set("scenarios", Json::UInt(outcomes.len() as u64))
        .set("adaptive_wins", Json::UInt(wins))
        .set("ties", Json::UInt(ties))
        .set("regressions", Json::UInt(regressions))
        .set("total_adaptive_flaps", Json::UInt(total_flaps));

    let mut cfg = Json::obj();
    cfg.set("users", Json::UInt(config.users as u64))
        .set("services", Json::UInt(config.services as u64))
        .set("regions", Json::UInt(config.regions as u64))
        .set("apps", Json::UInt(config.apps as u64))
        .set("tasks_per_app", Json::UInt(config.tasks_per_app as u64))
        .set(
            "candidates_per_task",
            Json::UInt(config.candidates_per_task as u64),
        )
        .set("slo_seconds", Json::Num(config.slo))
        .set("background_density", Json::Num(config.background_density))
        .set("min_improvement", Json::Num(config.min_improvement))
        .set("flap_window", Json::UInt(u64::from(config.flap_window)))
        .set("recover_threshold", Json::Num(config.recover_threshold));

    let mut root = Json::obj();
    root.set("schema", Json::Str(SCENARIO_SCHEMA.to_string()))
        .set("seed", Json::UInt(config.seed))
        .set("quick", Json::Bool(quick))
        .set("config", cfg)
        .set("scenarios", Json::Arr(scenarios))
        .set("summary", summary);
    root
}

/// SplitMix64-style stateless draw in [0, 1) (mirrors the regime world's
/// hashing so background sampling is order-independent).
fn hash01(seed: u64, a: u64, b: u64, c: u64) -> f64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(c.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> ScenarioConfig {
        ScenarioConfig::default()
    }

    #[test]
    fn catalog_names_are_unique_and_parse() {
        let specs = catalog(true);
        assert!(specs.len() >= 8);
        for (i, a) in specs.iter().enumerate() {
            for b in &specs[i + 1..] {
                assert_ne!(a.name, b.name);
            }
            assert!(RegimeTimeline::new(a.spans.clone()).is_ok());
        }
        assert!(find_scenario("congested", true).is_ok());
        assert!(find_scenario("nope", true).is_err());
        // Quick spans are strictly shorter.
        let full = catalog(false);
        for (q, f) in specs.iter().zip(&full) {
            assert_eq!(q.name, f.name);
            let sum = |s: &ScenarioSpec| s.spans.iter().map(|&(_, t)| t).sum::<u32>();
            assert!(sum(q) < sum(f));
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        for cfg in [
            ScenarioConfig {
                apps: 0,
                ..quick_config()
            },
            ScenarioConfig {
                apps: 100,
                ..quick_config()
            },
            ScenarioConfig {
                tasks_per_app: 20,
                candidates_per_task: 20,
                ..quick_config()
            },
            ScenarioConfig {
                slo: 0.0,
                ..quick_config()
            },
            ScenarioConfig {
                background_density: 0.0,
                ..quick_config()
            },
            ScenarioConfig {
                min_improvement: 1.0,
                ..quick_config()
            },
        ] {
            assert!(ScenarioEngine::new(cfg).is_err());
        }
    }

    #[test]
    fn stationary_control_never_flaps_and_ties() {
        let engine = ScenarioEngine::new(quick_config()).unwrap();
        let spec = find_scenario("good", true).unwrap();
        let out = engine.run_scenario(&spec).unwrap();
        assert_eq!(out.adaptive.planner_plans, 0, "planner must stay quiet");
        assert_eq!(out.adaptive.rebinds, 0);
        assert_eq!(out.adaptive.flaps, 0);
        assert_eq!(out.baseline.rebinds, 0);
        // No disruption -> no time-to-recover to speak of.
        assert_eq!(out.adaptive.time_to_recover, None);
    }

    #[test]
    fn congested_scenario_adaptive_beats_static() {
        let engine = ScenarioEngine::new(quick_config()).unwrap();
        let spec = find_scenario("congested", true).unwrap();
        let out = engine.run_scenario(&spec).unwrap();
        assert!(
            out.baseline.slo_violation_rate > 0.0,
            "congestion must hurt the static fleet"
        );
        assert!(
            out.adaptation_gain() > 0.0,
            "adaptive {} vs static {}",
            out.adaptive.slo_violation_rate,
            out.baseline.slo_violation_rate
        );
        assert!(out.adaptive.rebinds > 0);
    }

    #[test]
    fn report_schema_and_shape() {
        let engine = ScenarioEngine::new(quick_config()).unwrap();
        let spec = find_scenario("good", true).unwrap();
        let outcomes = vec![engine.run_scenario(&spec).unwrap()];
        let report = report_json(engine.config(), true, &outcomes);
        let text = report.to_string_pretty();
        let parsed = Json::parse(&text).unwrap();
        match &parsed {
            Json::Obj(map) => {
                assert_eq!(
                    map.get("schema"),
                    Some(&Json::Str(SCENARIO_SCHEMA.to_string()))
                );
                assert!(map.contains_key("scenarios"));
                assert!(map.contains_key("summary"));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn flight_dir_gets_a_per_scenario_dump() {
        let dir = std::env::temp_dir().join(format!(
            "amf_scenario_flight_{}_{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let engine = ScenarioEngine::new(quick_config())
            .unwrap()
            .with_flight_dir(dir.clone());
        let spec = find_scenario("good", true).unwrap();
        engine.run_scenario(&spec).unwrap();
        let dump = std::fs::read_to_string(dir.join("good.flight.jsonl")).unwrap();
        let header = Json::parse(dump.lines().next().unwrap()).unwrap();
        assert_eq!(
            header.get("schema").and_then(Json::as_str),
            Some("amf-flight/v1")
        );
        assert_eq!(
            header.get("reason").and_then(Json::as_str),
            Some("scenario:good")
        );
        // The header line carries the run outcome metrics.
        assert_eq!(header.get("kind").and_then(Json::as_str), Some("header"));
        assert_eq!(
            header
                .get("metrics")
                .and_then(|m| m.get("scenario"))
                .and_then(Json::as_str),
            Some("good")
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn runs_are_reproducible() {
        let engine = ScenarioEngine::new(quick_config()).unwrap();
        let spec = find_scenario("multi-phase", true).unwrap();
        let a = engine.run_scenario(&spec).unwrap();
        let b = engine.run_scenario(&spec).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn time_to_recover_window() {
        let spec = ScenarioSpec {
            name: "x",
            summary: "",
            spans: vec![(RegimePhase::Good, 2), (RegimePhase::Congested, 4)],
        };
        // Disruption starts at tick 2; rates recover from tick 3 onwards.
        let rates = [0.0, 0.0, 0.5, 0.0, 0.0, 0.0];
        assert_eq!(time_to_recover(&spec, &rates, 0.05), Some(1));
        let never = [0.0, 0.0, 0.5, 0.5, 0.5, 0.5];
        assert_eq!(time_to_recover(&spec, &never, 0.05), None);
        let calm = ScenarioSpec {
            name: "calm",
            summary: "",
            spans: vec![(RegimePhase::Good, 6)],
        };
        assert_eq!(time_to_recover(&calm, &rates, 0.05), None);
    }
}
