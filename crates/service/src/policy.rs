//! Adaptation policies ("various adaptation polices ... can be plugged in
//! and executed automatically", paper Section III).
//!
//! A policy looks at the QoS situation of one abstract task — the observed
//! QoS of its bound service and the *predicted* QoS of every candidate — and
//! decides whether to rebind. The quality of these decisions is exactly what
//! QoS prediction accuracy buys: a policy fed bad candidate predictions
//! executes "improper adaptations" (the paper's motivating failure mode).

use serde::{Deserialize, Serialize};

/// Everything a policy may inspect for one task at one decision point.
#[derive(Debug, Clone)]
pub struct PolicyContext<'a> {
    /// Most recent *observed* QoS of the bound service (e.g. response time in
    /// seconds), if any observation exists.
    pub observed_current: Option<f64>,
    /// Predicted QoS per candidate (same order as the task's candidate list);
    /// `None` where the predictor has no estimate.
    pub predicted: &'a [Option<f64>],
    /// Index (into the candidate list) of the currently bound candidate.
    pub bound: usize,
}

/// A pluggable adaptation decision rule.
///
/// Returns `Some(candidate_index)` to rebind the task, `None` to keep the
/// current binding. Implementations must be deterministic given the context.
pub trait AdaptationPolicy {
    /// Decides whether to rebind.
    fn decide(&self, ctx: &PolicyContext<'_>) -> Option<usize>;

    /// Display name for reports.
    fn name(&self) -> &'static str;
}

/// Rebinds only when the bound service violates a QoS threshold ("when to
/// trigger an adaptation action"), switching to the candidate with the best
/// predicted QoS ("which candidate services to employ").
///
/// Lower-is-better semantics (response time). For throughput-style metrics,
/// negate values before feeding the policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdPolicy {
    /// Observed QoS above this triggers adaptation (e.g. an SLA bound).
    pub threshold: f64,
    /// The predicted best candidate must beat the observed value by this
    /// relative margin to justify switching (hysteresis against churn).
    pub min_improvement: f64,
}

impl ThresholdPolicy {
    /// A policy with the given SLA threshold and a 10% improvement margin.
    pub fn new(threshold: f64) -> Self {
        Self {
            threshold,
            min_improvement: 0.1,
        }
    }
}

impl AdaptationPolicy for ThresholdPolicy {
    fn decide(&self, ctx: &PolicyContext<'_>) -> Option<usize> {
        let observed = ctx.observed_current?;
        if observed <= self.threshold {
            return None; // SLA holds; no trigger
        }
        let (best_idx, best_pred) = best_candidate(ctx.predicted)?;
        if best_idx == ctx.bound {
            return None;
        }
        if best_pred < observed * (1.0 - self.min_improvement) {
            Some(best_idx)
        } else {
            None
        }
    }

    fn name(&self) -> &'static str {
        "threshold"
    }
}

/// Always rebinds to the candidate with the best predicted QoS (greedy).
/// An upper-bound-style policy: maximum adaptation aggressiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BestPredictedPolicy;

impl AdaptationPolicy for BestPredictedPolicy {
    fn decide(&self, ctx: &PolicyContext<'_>) -> Option<usize> {
        let (best_idx, _) = best_candidate(ctx.predicted)?;
        (best_idx != ctx.bound).then_some(best_idx)
    }

    fn name(&self) -> &'static str {
        "best-predicted"
    }
}

/// Never adapts — the static baseline a self-adaptive system is judged
/// against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticPolicy;

impl AdaptationPolicy for StaticPolicy {
    fn decide(&self, _ctx: &PolicyContext<'_>) -> Option<usize> {
        None
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

/// Index and value of the smallest defined prediction.
fn best_candidate(predicted: &[Option<f64>]) -> Option<(usize, f64)> {
    predicted
        .iter()
        .enumerate()
        .filter_map(|(i, p)| p.filter(|v| v.is_finite()).map(|v| (i, v)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(
        observed: Option<f64>,
        predicted: &'a [Option<f64>],
        bound: usize,
    ) -> PolicyContext<'a> {
        PolicyContext {
            observed_current: observed,
            predicted,
            bound,
        }
    }

    #[test]
    fn threshold_does_not_trigger_below_sla() {
        let p = ThresholdPolicy::new(2.0);
        let preds = [Some(0.5), Some(1.0)];
        assert_eq!(p.decide(&ctx(Some(1.5), &preds, 1)), None);
    }

    #[test]
    fn threshold_switches_to_best_predicted() {
        let p = ThresholdPolicy::new(2.0);
        let preds = [Some(0.5), Some(3.0), Some(1.0)];
        assert_eq!(p.decide(&ctx(Some(3.0), &preds, 1)), Some(0));
    }

    #[test]
    fn threshold_requires_improvement_margin() {
        let p = ThresholdPolicy::new(2.0);
        // Best candidate (2.9) is not 10% better than observed 3.0.
        let preds = [Some(2.9), Some(3.1)];
        assert_eq!(p.decide(&ctx(Some(3.0), &preds, 1)), None);
    }

    #[test]
    fn threshold_keeps_current_if_already_best() {
        let p = ThresholdPolicy::new(2.0);
        let preds = [Some(5.0), Some(0.5)];
        assert_eq!(p.decide(&ctx(Some(3.0), &preds, 1)), None);
    }

    #[test]
    fn threshold_no_observation_no_action() {
        let p = ThresholdPolicy::new(2.0);
        let preds = [Some(0.5)];
        assert_eq!(p.decide(&ctx(None, &preds, 0)), None);
    }

    #[test]
    fn threshold_ignores_unpredicted_candidates() {
        let p = ThresholdPolicy::new(2.0);
        let preds = [None, Some(1.0), None];
        assert_eq!(p.decide(&ctx(Some(5.0), &preds, 0)), Some(1));
        let no_preds = [None, None];
        assert_eq!(p.decide(&ctx(Some(5.0), &no_preds, 0)), None);
    }

    #[test]
    fn best_predicted_always_chases_minimum() {
        let p = BestPredictedPolicy;
        let preds = [Some(1.0), Some(0.2), Some(0.8)];
        assert_eq!(p.decide(&ctx(None, &preds, 0)), Some(1));
        assert_eq!(p.decide(&ctx(None, &preds, 1)), None); // already best
    }

    #[test]
    fn static_policy_never_moves() {
        let p = StaticPolicy;
        let preds = [Some(0.1), Some(9.0)];
        assert_eq!(p.decide(&ctx(Some(100.0), &preds, 1)), None);
        assert_eq!(p.name(), "static");
    }

    #[test]
    fn policy_names() {
        assert_eq!(ThresholdPolicy::new(1.0).name(), "threshold");
        assert_eq!(BestPredictedPolicy.name(), "best-predicted");
    }
}
