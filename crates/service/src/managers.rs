//! User and service managers (paper Section III: "a service manager is
//! desired to provide utilities like service discovery and service
//! management ... a user manager is set up to manage the joining or leaving
//! activities of users").
//!
//! A [`Registry`] maps stable external identities (PlanetLab host names,
//! WSDL URLs, ...) to the dense indices the AMF model uses, and tracks which
//! entities are currently active. Indices are never reused: a departed
//! entity's feature vector stays in the model (it may return), exactly the
//! behaviour the paper's churn experiment relies on.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dense model index of a registered entity.
pub type EntityId = usize;

/// Registration state of one entity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Registration {
    id: EntityId,
    active: bool,
}

/// An identity registry for one side (users, or services).
///
/// # Examples
///
/// ```
/// use qos_service::Registry;
///
/// let mut users = Registry::new();
/// let alice = users.join("planetlab1.cs.example.edu");
/// assert_eq!(alice, 0);
/// assert_eq!(users.join("planetlab1.cs.example.edu"), alice); // idempotent
/// assert!(users.is_active(alice));
/// users.leave("planetlab1.cs.example.edu");
/// assert!(!users.is_active(alice));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Registry {
    by_name: HashMap<String, Registration>,
    names: Vec<String>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entities ever registered (dense index space size).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no entity was ever registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Number of currently active entities.
    pub fn active_count(&self) -> usize {
        self.by_name.values().filter(|r| r.active).count()
    }

    /// Registers (or re-activates) an entity, returning its dense id.
    /// Idempotent: an already-active entity keeps its id.
    pub fn join(&mut self, name: &str) -> EntityId {
        if let Some(reg) = self.by_name.get_mut(name) {
            reg.active = true;
            return reg.id;
        }
        let id = self.names.len();
        self.names.push(name.to_string());
        self.by_name
            .insert(name.to_string(), Registration { id, active: true });
        id
    }

    /// Marks an entity inactive. Returns its id if it was known.
    pub fn leave(&mut self, name: &str) -> Option<EntityId> {
        let reg = self.by_name.get_mut(name)?;
        reg.active = false;
        Some(reg.id)
    }

    /// Resolves an external name to its dense id (active or not).
    pub fn resolve(&self, name: &str) -> Option<EntityId> {
        self.by_name.get(name).map(|r| r.id)
    }

    /// External name of a dense id.
    pub fn name(&self, id: EntityId) -> Option<&str> {
        self.names.get(id).map(String::as_str)
    }

    /// Whether a dense id is currently active.
    pub fn is_active(&self, id: EntityId) -> bool {
        self.names
            .get(id)
            .and_then(|n| self.by_name.get(n))
            .is_some_and(|r| r.active)
    }

    /// Iterator over `(id, name, active)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (EntityId, &str, bool)> + '_ {
        self.names.iter().enumerate().map(move |(id, name)| {
            let active = self.by_name.get(name).is_some_and(|r| r.active);
            (id, name.as_str(), active)
        })
    }

    /// Ids of all currently active entities.
    pub fn active_ids(&self) -> Vec<EntityId> {
        self.iter()
            .filter(|&(_, _, active)| active)
            .map(|(id, _, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_assigns_sequential_ids() {
        let mut r = Registry::new();
        assert_eq!(r.join("a"), 0);
        assert_eq!(r.join("b"), 1);
        assert_eq!(r.join("c"), 2);
        assert_eq!(r.len(), 3);
        assert_eq!(r.active_count(), 3);
    }

    #[test]
    fn join_is_idempotent() {
        let mut r = Registry::new();
        let a = r.join("a");
        assert_eq!(r.join("a"), a);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn leave_deactivates_but_keeps_id() {
        let mut r = Registry::new();
        let a = r.join("a");
        assert_eq!(r.leave("a"), Some(a));
        assert!(!r.is_active(a));
        assert_eq!(r.len(), 1, "id space must not shrink");
        assert_eq!(r.resolve("a"), Some(a), "identity persists after leave");
        assert_eq!(r.active_count(), 0);
    }

    #[test]
    fn rejoin_reuses_id() {
        let mut r = Registry::new();
        let a = r.join("a");
        r.leave("a");
        assert_eq!(r.join("a"), a);
        assert!(r.is_active(a));
    }

    #[test]
    fn leave_unknown_is_none() {
        let mut r = Registry::new();
        assert_eq!(r.leave("ghost"), None);
    }

    #[test]
    fn name_and_resolve_roundtrip() {
        let mut r = Registry::new();
        let id = r.join("svc-weather");
        assert_eq!(r.name(id), Some("svc-weather"));
        assert_eq!(r.resolve("svc-weather"), Some(id));
        assert_eq!(r.name(99), None);
        assert_eq!(r.resolve("nope"), None);
    }

    #[test]
    fn iter_and_active_ids() {
        let mut r = Registry::new();
        r.join("a");
        r.join("b");
        r.join("c");
        r.leave("b");
        let all: Vec<(usize, &str, bool)> = r.iter().collect();
        assert_eq!(all.len(), 3);
        assert_eq!(all[1], (1, "b", false));
        assert_eq!(r.active_ids(), vec![0, 2]);
    }

    #[test]
    fn is_active_out_of_range() {
        let r = Registry::new();
        assert!(!r.is_active(0));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// A random churn script: join/leave events over a small name pool.
        fn script() -> impl Strategy<Value = Vec<(bool, u8)>> {
            proptest::collection::vec((proptest::bool::ANY, 0u8..8), 0..60)
        }

        proptest! {
            #[test]
            fn identity_is_stable_under_any_churn(events in script()) {
                let mut r = Registry::new();
                let mut first_id: std::collections::HashMap<u8, usize> =
                    std::collections::HashMap::new();
                for (join, who) in events {
                    let name = format!("n{who}");
                    if join {
                        let id = r.join(&name);
                        let expected = *first_id.entry(who).or_insert(id);
                        prop_assert_eq!(id, expected, "id changed across churn");
                    } else {
                        r.leave(&name);
                    }
                }
                // Ids are dense 0..len and names resolve back.
                for id in 0..r.len() {
                    let name = r.name(id).unwrap().to_string();
                    prop_assert_eq!(r.resolve(&name), Some(id));
                }
                prop_assert!(r.active_count() <= r.len());
                prop_assert_eq!(r.active_ids().len(), r.active_count());
            }
        }
    }
}
