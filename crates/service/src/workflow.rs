//! Workflows of abstract tasks bound to candidate services (paper Fig. 1).
//!
//! "The application logic is typically expressed as a workflow with a set of
//! abstract tasks ... for each abstract task there are a set of
//! functionally-equivalent candidate services." A [`Workflow`] here is a
//! sequential composition (the common BPEL core); each [`AbstractTask`]
//! carries its candidate set and its current binding, and rebinding a task is
//! the paper's "adaptation action".

use crate::ServiceError;
use serde::{Deserialize, Serialize};

/// One abstract task: a named step bound to one of several candidates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbstractTask {
    /// Task name (e.g. "A", "B" as in Fig. 1, or "fraud-detection").
    pub name: String,
    /// Dense service ids of the functionally-equivalent candidates.
    pub candidates: Vec<usize>,
    /// Index *into `candidates`* of the currently bound service.
    pub bound: usize,
}

impl AbstractTask {
    /// Creates a task bound to its first candidate.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::InvalidWorkflow`] when `candidates` is empty.
    pub fn new(name: impl Into<String>, candidates: Vec<usize>) -> Result<Self, ServiceError> {
        if candidates.is_empty() {
            return Err(ServiceError::InvalidWorkflow(
                "task needs at least one candidate service".into(),
            ));
        }
        Ok(Self {
            name: name.into(),
            candidates,
            bound: 0,
        })
    }

    /// Dense service id of the currently bound service.
    pub fn bound_service(&self) -> usize {
        self.candidates[self.bound]
    }

    /// Rebinds the task to candidate index `candidate` (an adaptation
    /// action). Returns the previously bound service id.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::InvalidWorkflow`] when the index is out of
    /// range.
    pub fn rebind(&mut self, candidate: usize) -> Result<usize, ServiceError> {
        if candidate >= self.candidates.len() {
            return Err(ServiceError::InvalidWorkflow(format!(
                "candidate index {candidate} out of range for task {} ({} candidates)",
                self.name,
                self.candidates.len()
            )));
        }
        let previous = self.bound_service();
        self.bound = candidate;
        Ok(previous)
    }
}

/// A sequential workflow of abstract tasks.
///
/// # Examples
///
/// ```
/// use qos_service::{AbstractTask, Workflow};
///
/// let workflow = Workflow::new(vec![
///     AbstractTask::new("A", vec![0, 1])?,
///     AbstractTask::new("B", vec![2, 3, 4])?,
/// ])?;
/// assert_eq!(workflow.bound_services(), vec![0, 2]);
/// # Ok::<(), qos_service::ServiceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workflow {
    tasks: Vec<AbstractTask>,
}

impl Workflow {
    /// Creates a workflow.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::InvalidWorkflow`] when `tasks` is empty.
    pub fn new(tasks: Vec<AbstractTask>) -> Result<Self, ServiceError> {
        if tasks.is_empty() {
            return Err(ServiceError::InvalidWorkflow(
                "workflow needs at least one task".into(),
            ));
        }
        Ok(Self { tasks })
    }

    /// The tasks in execution order.
    pub fn tasks(&self) -> &[AbstractTask] {
        &self.tasks
    }

    /// Mutable task access (for rebinding).
    pub fn tasks_mut(&mut self) -> &mut [AbstractTask] {
        &mut self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the workflow has no tasks (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Currently bound service id per task, in order.
    pub fn bound_services(&self) -> Vec<usize> {
        self.tasks.iter().map(AbstractTask::bound_service).collect()
    }

    /// End-to-end response time of one execution: the sum over tasks of the
    /// per-task values supplied by `qos_of` (sequential composition).
    pub fn end_to_end_rt<F: FnMut(usize) -> f64>(&self, mut qos_of: F) -> f64 {
        self.tasks.iter().map(|t| qos_of(t.bound_service())).sum()
    }

    /// All candidate service ids appearing anywhere in the workflow
    /// (deduplicated, sorted).
    pub fn all_candidates(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self
            .tasks
            .iter()
            .flat_map(|t| t.candidates.iter().copied())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workflow() -> Workflow {
        Workflow::new(vec![
            AbstractTask::new("A", vec![0, 1]).unwrap(),
            AbstractTask::new("B", vec![2, 3]).unwrap(),
            AbstractTask::new("C", vec![4, 5, 0]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn new_task_binds_first_candidate() {
        let t = AbstractTask::new("A", vec![7, 8]).unwrap();
        assert_eq!(t.bound_service(), 7);
        assert_eq!(t.name, "A");
    }

    #[test]
    fn empty_candidates_rejected() {
        assert!(matches!(
            AbstractTask::new("A", vec![]),
            Err(ServiceError::InvalidWorkflow(_))
        ));
    }

    #[test]
    fn rebind_switches_and_reports_previous() {
        let mut t = AbstractTask::new("A", vec![7, 8]).unwrap();
        assert_eq!(t.rebind(1).unwrap(), 7);
        assert_eq!(t.bound_service(), 8);
        assert!(t.rebind(5).is_err());
    }

    #[test]
    fn empty_workflow_rejected() {
        assert!(Workflow::new(vec![]).is_err());
    }

    #[test]
    fn bound_services_in_order() {
        let w = workflow();
        assert_eq!(w.bound_services(), vec![0, 2, 4]);
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
    }

    #[test]
    fn end_to_end_rt_sums_tasks() {
        let w = workflow();
        // service id -> RT = id as f64
        let rt = w.end_to_end_rt(|s| s as f64);
        assert_eq!(rt, 0.0 + 2.0 + 4.0);
    }

    #[test]
    fn rebind_through_workflow() {
        let mut w = workflow();
        w.tasks_mut()[1].rebind(1).unwrap();
        assert_eq!(w.bound_services(), vec![0, 3, 4]);
    }

    #[test]
    fn all_candidates_deduplicated() {
        let w = workflow();
        assert_eq!(w.all_candidates(), vec![0, 1, 2, 3, 4, 5]);
    }
}
