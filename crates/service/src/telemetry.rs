//! Live metrics endpoint: a dependency-free HTTP listener exposing the
//! process's telemetry while the prediction service runs.
//!
//! The paper's runtime-adaptation loop assumes an operator (or the
//! adaptation middleware itself) can watch prediction health *live* —
//! accuracy trending, queue depths, drift alarms — without pausing
//! ingestion. [`MetricsServer`] serves exactly that, std-only:
//!
//! | Route            | Body                                              |
//! |------------------|---------------------------------------------------|
//! | `GET /metrics`   | Prometheus text exposition 0.0.4 of the snapshot  |
//! | `GET /healthz`   | `amf-health/v1` JSON liveness + drift health      |
//! | `GET /snapshot.json` | the raw `amf-obs/v1` snapshot                 |
//!
//! The listener runs on one background thread; each scrape takes a fresh
//! snapshot from the configured source (typically
//! [`crate::QosPredictionService::stats_snapshot`]), so responses never
//! serve stale cached state. Scrapes read the same atomics the hot path
//! writes — no lock is held across a response write, and the update path is
//! never paused.

use qos_obs::Json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Schema tag of the `/healthz` response body.
pub const HEALTH_SCHEMA: &str = "amf-health/v1";

/// Hard cap on the request head (request line + headers) read per
/// connection; anything longer is answered `431` and dropped.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Per-connection socket read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

type SnapshotSource = Arc<dyn Fn() -> Json + Send + Sync>;

struct ServerState {
    source: SnapshotSource,
    stop: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
}

/// Background HTTP/1.1 listener serving `/metrics`, `/healthz`, and
/// `/snapshot.json` from a snapshot source.
///
/// # Examples
///
/// ```
/// use qos_service::telemetry::MetricsServer;
///
/// let server = MetricsServer::start("127.0.0.1:0", || {
///     qos_obs::global().snapshot_json(false)
/// })?;
/// let addr = server.local_addr(); // real port for port-0 binds
/// assert_ne!(addr.port(), 0);
/// server.stop();
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct MetricsServer {
    state: Arc<ServerState>,
    addr: SocketAddr,
    /// Clone of the listening socket: shutdown flips the shared handle to
    /// non-blocking so the accept loop cannot stay blocked even if the
    /// wake connection loses a race to a concurrent scrape.
    listener: TcpListener,
    accept_thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop on a background thread. The source closure is called
    /// once per scrape.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn start(
        addr: &str,
        source: impl Fn() -> Json + Send + Sync + 'static,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        let shutdown_handle = listener.try_clone()?;
        let state = Arc::new(ServerState {
            source: Arc::new(source),
            stop: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        });
        let accept_state = Arc::clone(&state);
        let accept_thread = std::thread::Builder::new()
            .name("amf-metrics-http".into())
            .spawn(move || accept_loop(&listener, &accept_state))?;
        qos_obs::global()
            .trace()
            .event("metrics_server_start", bound.to_string());
        Ok(Self {
            state,
            addr: bound,
            listener: shutdown_handle,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address — the real port when started with port 0.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served (any route, including 404s).
    pub fn requests(&self) -> u64 {
        self.state.requests.load(Ordering::Relaxed)
    }

    /// Connections dropped due to I/O or parse errors.
    pub fn errors(&self) -> u64 {
        self.state.errors.load(Ordering::Relaxed)
    }

    /// Stops the listener and joins the accept thread. Returns the total
    /// number of requests served.
    pub fn stop(mut self) -> u64 {
        self.shutdown();
        self.state.requests.load(Ordering::Relaxed)
    }

    fn shutdown(&mut self) {
        let Some(handle) = self.accept_thread.take() else {
            return;
        };
        self.state.stop.store(true, Ordering::Release);
        // Switch the shared listener handle to non-blocking *before* the
        // wake connection: even if a concurrent scrape consumes the wake
        // (the self-connect race), the accept loop's next `accept` returns
        // `WouldBlock` instead of parking forever, re-reads the stop flag,
        // and exits. The throwaway connection is only a latency shortcut.
        let _ = self.listener.set_nonblocking(true);
        if let Ok(stream) = TcpStream::connect(self.addr) {
            drop(stream);
        }
        let _ = handle.join();
        qos_obs::global()
            .trace()
            .event("metrics_server_stop", self.addr.to_string());
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .field("requests", &self.requests())
            .field("errors", &self.errors())
            .finish()
    }
}

fn accept_loop(listener: &TcpListener, state: &ServerState) {
    loop {
        // Observe the stop flag BEFORE blocking again. Without this check a
        // scrape that raced the shutdown wake could consume the throwaway
        // connection, leaving the loop to re-enter `accept` and block with
        // the flag already set — `stop()` would then hang in `join`.
        if state.stop.load(Ordering::Acquire) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Shutdown switched the shared handle to non-blocking; the
                // flag re-check above (next iteration) terminates the loop.
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
            Err(_) => continue,
        };
        if state.stop.load(Ordering::Acquire) {
            return;
        }
        if handle_connection(stream, state).is_err() {
            state.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Reads the request head (up to the blank line or the size cap) and
/// returns the request line.
fn read_request_line(stream: &mut TcpStream) -> std::io::Result<Option<String>> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Ok(None);
        }
    }
    let text = String::from_utf8_lossy(&buf);
    Ok(text.lines().next().map(str::to_string))
}

fn handle_connection(mut stream: TcpStream, state: &ServerState) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let Some(request_line) = read_request_line(&mut stream)? else {
        return respond(&mut stream, 431, "text/plain", "request too large\n");
    };
    state.requests.fetch_add(1, Ordering::Relaxed);
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => return respond(&mut stream, 400, "text/plain", "malformed request\n"),
    };
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "method not allowed\n");
    }
    // Strip any query string; scrapers sometimes append cache-busters.
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => {
            let snapshot = (state.source)();
            let body = qos_obs::render_prometheus(&snapshot);
            respond(&mut stream, 200, qos_obs::CONTENT_TYPE, &body)
        }
        "/snapshot.json" => {
            let body = (state.source)().to_string_compact();
            respond(&mut stream, 200, "application/json", &body)
        }
        "/healthz" => {
            let snapshot = (state.source)();
            let body = health_body(&snapshot);
            respond(&mut stream, 200, "application/json", &body)
        }
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

/// Builds the `/healthz` body (`amf-health/v1`) from an `amf-obs/v1`
/// snapshot. Three-state status, shared by [`MetricsServer`] and the
/// serving plane so both report identical health:
///
/// * `"draining"` — the serving plane has begun its graceful drain
///   (`serve.draining` gauge set);
/// * `"degraded"` — answers are riding the fallback ladder: the service
///   degraded flag is up, or the engine has exhausted its respawn budget
///   and abandoned workers (`service.fault.abandoned_workers` counter);
/// * `"ok"` — otherwise. Responding at all is the liveness signal.
///
/// Load harnesses and CI treat `"degraded"` as non-fatal but must surface
/// it (DESIGN.md §14).
pub fn health_body_from(snapshot: &Json) -> String {
    let drift_healthy = gauge_value(snapshot, "model.drift_healthy") != Some(0.0);
    let degraded = gauge_value(snapshot, "service.degraded").is_some_and(|v| v != 0.0)
        || counter_value(snapshot, "service.fault.abandoned_workers").is_some_and(|v| v > 0);
    let draining = gauge_value(snapshot, "serve.draining").is_some_and(|v| v != 0.0);
    let status = if draining {
        "draining"
    } else if degraded {
        "degraded"
    } else {
        "ok"
    };
    format!(
        "{{\"schema\":\"{HEALTH_SCHEMA}\",\"status\":\"{status}\",\
         \"drift_healthy\":{drift_healthy},\"degraded\":{degraded}}}"
    )
}

fn health_body(snapshot: &Json) -> String {
    health_body_from(snapshot)
}

fn counter_value(snapshot: &Json, key: &str) -> Option<u64> {
    let Json::Obj(map) = snapshot else {
        return None;
    };
    let Json::Obj(counters) = map.get("counters")? else {
        return None;
    };
    counters.get(key)?.as_u64()
}

fn gauge_value(snapshot: &Json, key: &str) -> Option<f64> {
    let Json::Obj(map) = snapshot else {
        return None;
    };
    let Json::Obj(gauges) = map.get("gauges")? else {
        return None;
    };
    match gauges.get(key)? {
        Json::Num(v) => Some(*v),
        Json::UInt(v) => Some(*v as f64),
        _ => None,
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_obs::MetricsRegistry;

    fn test_source() -> impl Fn() -> Json + Send + Sync {
        let registry = MetricsRegistry::new();
        registry.counter("engine.jobs_dispatched").add(42);
        registry.gauge("model.mre_w").set(0.25);
        registry.gauge("model.drift_healthy").set(1.0);
        registry.histogram("service.predict_ns").record(1500);
        move || registry.snapshot_json(false)
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
        request(addr, &format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"))
    }

    fn request(addr: SocketAddr, raw: &str) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a blank line");
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .unwrap();
        let content_type = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Type: "))
            .unwrap_or("")
            .to_string();
        (status, content_type, body.to_string())
    }

    #[test]
    fn serves_prometheus_metrics() {
        let server = MetricsServer::start("127.0.0.1:0", test_source()).unwrap();
        let (status, content_type, body) = get(server.local_addr(), "/metrics");
        assert_eq!(status, 200);
        assert_eq!(content_type, qos_obs::CONTENT_TYPE);
        let samples = qos_obs::parse_exposition(&body).expect("valid exposition");
        assert!(samples
            .iter()
            .any(|(k, v)| k == "amf_engine_jobs_dispatched_total" && *v == 42.0));
        assert!(samples
            .iter()
            .any(|(k, v)| k == "amf_model_mre_w" && *v == 0.25));
        assert!(server.stop() >= 1);
    }

    #[test]
    fn serves_snapshot_json_and_healthz() {
        let server = MetricsServer::start("127.0.0.1:0", test_source()).unwrap();
        let (status, content_type, body) = get(server.local_addr(), "/snapshot.json");
        assert_eq!(status, 200);
        assert_eq!(content_type, "application/json");
        let parsed = Json::parse(&body).expect("snapshot parses");
        assert_eq!(
            gauge_value(&parsed, "model.mre_w"),
            Some(0.25),
            "snapshot carries the gauge section"
        );

        let (status, content_type, body) = get(server.local_addr(), "/healthz");
        assert_eq!(status, 200);
        assert_eq!(content_type, "application/json");
        let health = Json::parse(&body).expect("health parses");
        let Json::Obj(map) = &health else {
            panic!("health body is an object");
        };
        assert_eq!(
            map.get("schema"),
            Some(&Json::Str(HEALTH_SCHEMA.to_string()))
        );
        assert_eq!(map.get("status"), Some(&Json::Str("ok".to_string())));
        assert_eq!(map.get("drift_healthy"), Some(&Json::Bool(true)));
        server.stop();
    }

    #[test]
    fn unknown_routes_and_methods_are_rejected() {
        let server = MetricsServer::start("127.0.0.1:0", test_source()).unwrap();
        let (status, _, _) = get(server.local_addr(), "/nope");
        assert_eq!(status, 404);
        let (status, _, _) = request(
            server.local_addr(),
            "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n",
        );
        assert_eq!(status, 405);
        // Query strings are tolerated on known routes.
        let (status, _, _) = get(server.local_addr(), "/metrics?ts=1");
        assert_eq!(status, 200);
        assert_eq!(server.stop(), 3);
    }

    #[test]
    fn health_status_is_three_state() {
        // ok: nothing unhealthy in the snapshot.
        let registry = MetricsRegistry::new();
        registry.gauge("model.drift_healthy").set(1.0);
        let body = health_body_from(&registry.snapshot_json(false));
        assert!(body.contains("\"status\":\"ok\""), "{body}");

        // degraded: the service flag is up.
        registry.gauge("service.degraded").set(1.0);
        let body = health_body_from(&registry.snapshot_json(false));
        assert!(body.contains("\"status\":\"degraded\""), "{body}");
        assert!(body.contains("\"degraded\":true"), "{body}");

        // degraded: flag clear but the engine abandoned workers (respawn
        // budget exhausted).
        registry.gauge("service.degraded").set(0.0);
        registry.counter("service.fault.abandoned_workers").add(1);
        let body = health_body_from(&registry.snapshot_json(false));
        assert!(body.contains("\"status\":\"degraded\""), "{body}");

        // draining wins over everything.
        registry.gauge("serve.draining").set(1.0);
        let body = health_body_from(&registry.snapshot_json(false));
        assert!(body.contains("\"status\":\"draining\""), "{body}");
    }

    #[test]
    fn repeated_start_stop_never_hangs() {
        // Regression pin for the shutdown self-connect race: if the accept
        // loop re-blocks without observing the stop flag, one of these
        // iterations wedges in `join` and the test times out. Scraping on
        // some rounds keeps connections racing the shutdown wake.
        for round in 0..50 {
            let server = MetricsServer::start("127.0.0.1:0", test_source()).unwrap();
            if round % 2 == 0 {
                let (status, _, _) = get(server.local_addr(), "/healthz");
                assert_eq!(status, 200, "round {round}");
            }
            server.stop();
        }
    }

    #[test]
    fn stop_joins_and_port_is_released() {
        let server = MetricsServer::start("127.0.0.1:0", test_source()).unwrap();
        let addr = server.local_addr();
        server.stop();
        // The listener is gone: a rebind of the same port succeeds.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "port still held after stop: {rebind:?}");
    }
}
