//! The QoS database of the prediction service (paper Fig. 3: "The QoS
//! database can be updated accordingly").
//!
//! Stores the raw observation history per `(user, service)` pair with a
//! bounded per-pair history, independent of the model's own expiry-driven
//! store — this is the audit/query side, used by operators and by the
//! monitoring parts of the middleware ("QoS manager monitors the QoS values
//! of service invocations").

use parking_lot::RwLock;
use std::collections::HashMap;

/// One stored observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Timestamp (seconds since simulation epoch).
    pub timestamp: u64,
    /// Observed raw QoS value.
    pub value: f64,
}

/// Thread-safe QoS observation history store.
///
/// # Examples
///
/// ```
/// use qos_service::QosDatabase;
///
/// let db = QosDatabase::new(16);
/// db.record(0, 0, 100, 1.4);
/// db.record(0, 0, 200, 1.6);
/// assert_eq!(db.latest(0, 0).unwrap().value, 1.6);
/// assert_eq!(db.history(0, 0).len(), 2);
/// ```
#[derive(Debug)]
pub struct QosDatabase {
    /// Per-pair ring of recent observations (oldest first).
    records: RwLock<HashMap<(usize, usize), Vec<Observation>>>,
    /// Maximum retained observations per pair.
    history_cap: usize,
}

impl QosDatabase {
    /// Creates a database retaining up to `history_cap` observations per
    /// pair (at least 1).
    pub fn new(history_cap: usize) -> Self {
        Self {
            records: RwLock::new(HashMap::new()),
            history_cap: history_cap.max(1),
        }
    }

    /// Records an observation.
    pub fn record(&self, user: usize, service: usize, timestamp: u64, value: f64) {
        let mut records = self.records.write();
        let history = records.entry((user, service)).or_default();
        history.push(Observation { timestamp, value });
        if history.len() > self.history_cap {
            let overflow = history.len() - self.history_cap;
            history.drain(..overflow);
        }
    }

    /// The most recent observation for a pair.
    pub fn latest(&self, user: usize, service: usize) -> Option<Observation> {
        self.records
            .read()
            .get(&(user, service))
            .and_then(|h| h.last())
            .copied()
    }

    /// Full retained history for a pair (oldest first).
    pub fn history(&self, user: usize, service: usize) -> Vec<Observation> {
        self.records
            .read()
            .get(&(user, service))
            .cloned()
            .unwrap_or_default()
    }

    /// Number of pairs with at least one observation.
    pub fn pair_count(&self) -> usize {
        self.records.read().len()
    }

    /// Total number of retained observations.
    pub fn observation_count(&self) -> usize {
        self.records.read().values().map(Vec::len).sum()
    }

    /// Mean of the retained values for one service across all users — the
    /// kind of aggregate a monitoring dashboard would show.
    pub fn service_mean(&self, service: usize) -> Option<f64> {
        let records = self.records.read();
        let mut sum = 0.0;
        let mut n = 0usize;
        for ((_, s), history) in records.iter() {
            if *s == service {
                for obs in history {
                    sum += obs.value;
                    n += 1;
                }
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Mean of the retained values one user observed across all services —
    /// the first fallback rung when the model cannot price a pair.
    pub fn user_mean(&self, user: usize) -> Option<f64> {
        let records = self.records.read();
        let mut sum = 0.0;
        let mut n = 0usize;
        for ((u, _), history) in records.iter() {
            if *u == user {
                for obs in history {
                    sum += obs.value;
                    n += 1;
                }
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Mean of every retained observation — the last data-driven fallback
    /// rung (degrades gracefully to "what does QoS look like on average").
    pub fn global_mean(&self) -> Option<f64> {
        let records = self.records.read();
        let mut sum = 0.0;
        let mut n = 0usize;
        for history in records.values() {
            for obs in history {
                sum += obs.value;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Removes all observations older than `cutoff`, returning how many were
    /// dropped.
    pub fn prune_before(&self, cutoff: u64) -> usize {
        let mut records = self.records.write();
        let mut removed = 0;
        records.retain(|_, history| {
            let before = history.len();
            history.retain(|o| o.timestamp >= cutoff);
            removed += before - history.len();
            !history.is_empty()
        });
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_latest() {
        let db = QosDatabase::new(4);
        assert!(db.latest(0, 0).is_none());
        db.record(0, 0, 10, 1.0);
        db.record(0, 0, 20, 2.0);
        assert_eq!(db.latest(0, 0).unwrap().value, 2.0);
        assert_eq!(db.latest(0, 0).unwrap().timestamp, 20);
    }

    #[test]
    fn history_capped() {
        let db = QosDatabase::new(3);
        for k in 0..10 {
            db.record(1, 1, k, k as f64);
        }
        let h = db.history(1, 1);
        assert_eq!(h.len(), 3);
        assert_eq!(h[0].timestamp, 7, "oldest retained should be t=7");
        assert_eq!(h[2].timestamp, 9);
    }

    #[test]
    fn cap_of_zero_clamps_to_one() {
        let db = QosDatabase::new(0);
        db.record(0, 0, 1, 1.0);
        db.record(0, 0, 2, 2.0);
        assert_eq!(db.history(0, 0).len(), 1);
    }

    #[test]
    fn counts() {
        let db = QosDatabase::new(8);
        db.record(0, 0, 1, 1.0);
        db.record(0, 1, 2, 2.0);
        db.record(0, 1, 3, 3.0);
        assert_eq!(db.pair_count(), 2);
        assert_eq!(db.observation_count(), 3);
    }

    #[test]
    fn service_mean_aggregates_users() {
        let db = QosDatabase::new(8);
        db.record(0, 5, 1, 2.0);
        db.record(1, 5, 1, 4.0);
        db.record(0, 6, 1, 100.0);
        assert_eq!(db.service_mean(5), Some(3.0));
        assert_eq!(db.service_mean(7), None);
    }

    #[test]
    fn user_and_global_means() {
        let db = QosDatabase::new(8);
        db.record(0, 5, 1, 2.0);
        db.record(0, 6, 1, 4.0);
        db.record(1, 5, 1, 6.0);
        assert_eq!(db.user_mean(0), Some(3.0));
        assert_eq!(db.user_mean(9), None);
        assert_eq!(db.global_mean(), Some(4.0));
        assert_eq!(QosDatabase::new(4).global_mean(), None);
    }

    #[test]
    fn prune_before_drops_old() {
        let db = QosDatabase::new(8);
        db.record(0, 0, 10, 1.0);
        db.record(0, 0, 20, 2.0);
        db.record(1, 1, 5, 3.0);
        let removed = db.prune_before(15);
        assert_eq!(removed, 2);
        assert_eq!(db.observation_count(), 1);
        assert_eq!(db.pair_count(), 1, "emptied pairs are removed");
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let db = Arc::new(QosDatabase::new(64));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    for k in 0..100 {
                        db.record(t, k % 10, k as u64, k as f64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.observation_count(), 400);
    }
}
