//! End-to-end adaptation simulation: the system-level payoff of accurate
//! candidate-QoS prediction.
//!
//! Drives a fleet of [`ExecutionMiddleware`] applications over the time
//! slices of a synthetic [`QosDataset`]: each slice, every application
//! executes once (observing ground-truth QoS of its bound services), all
//! observations plus a sampled stream of background traffic feed the shared
//! [`QosPredictionService`], and the adaptation policy rebinds tasks using
//! the model's candidate predictions. Comparing an adaptive run against a
//! static run quantifies what the paper's framework is *for*.

use crate::middleware::ExecutionMiddleware;
use crate::policy::AdaptationPolicy;
use crate::prediction_service::{QosPredictionService, QosRecord, ServiceConfig};
use crate::workflow::{AbstractTask, Workflow};
use crate::ServiceError;
use qos_dataset::{Attribute, QosDataset};
use qos_linalg::random::sample_indices;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Number of applications (each owned by one dataset user).
    pub applications: usize,
    /// Abstract tasks per application workflow.
    pub tasks_per_workflow: usize,
    /// Candidate services per task.
    pub candidates_per_task: usize,
    /// Per-task SLA threshold on response time (seconds).
    pub sla_threshold: f64,
    /// Number of dataset time slices to simulate.
    pub slices: usize,
    /// Fraction of the full user–service matrix observed per slice as
    /// background traffic feeding the predictor (the "user collaboration").
    pub background_density: f64,
    /// RNG seed for workflow construction and background sampling.
    pub seed: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            applications: 10,
            tasks_per_workflow: 3,
            candidates_per_task: 5,
            sla_threshold: 2.0,
            slices: 8,
            background_density: 0.1,
            seed: 7,
        }
    }
}

impl SimulationConfig {
    /// Validates against a dataset's dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::InvalidConfig`] when the simulation needs more
    /// users/services/slices than the dataset has.
    pub fn validate(&self, dataset: &QosDataset) -> Result<(), ServiceError> {
        let bad = |msg: String| Err(ServiceError::InvalidConfig(msg));
        if self.applications == 0 || self.applications > dataset.users() {
            return bad(format!("applications must be in 1..={}", dataset.users()));
        }
        if self.tasks_per_workflow == 0 || self.candidates_per_task == 0 {
            return bad("workflow shape must be non-degenerate".into());
        }
        if self.tasks_per_workflow * self.candidates_per_task > dataset.services() {
            return bad("not enough services for disjoint candidate sets".into());
        }
        if self.slices == 0 || self.slices > dataset.time_slices() {
            return bad(format!("slices must be in 1..={}", dataset.time_slices()));
        }
        if !(0.0 < self.background_density && self.background_density <= 1.0) {
            return bad("background_density must be in (0, 1]".into());
        }
        if self.sla_threshold.is_nan() || self.sla_threshold <= 0.0 {
            return bad("sla_threshold must be positive".into());
        }
        Ok(())
    }
}

/// Per-slice aggregate of one simulated policy run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SliceOutcome {
    /// Slice index.
    pub slice: usize,
    /// Mean end-to-end RT across applications.
    pub mean_end_to_end_rt: f64,
    /// Total adaptation actions executed this slice.
    pub adaptations: usize,
    /// Total per-task SLA violations observed this slice.
    pub violations: usize,
}

/// Full report of one policy run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Policy display name.
    pub policy: String,
    /// Per-slice outcomes in slice order.
    pub slices: Vec<SliceOutcome>,
}

impl SimulationReport {
    /// Mean end-to-end RT over all slices.
    pub fn mean_rt(&self) -> f64 {
        if self.slices.is_empty() {
            return f64::NAN;
        }
        self.slices
            .iter()
            .map(|s| s.mean_end_to_end_rt)
            .sum::<f64>()
            / self.slices.len() as f64
    }

    /// Mean RT over the trailing half of the run (after the model warms up).
    pub fn steady_state_rt(&self) -> f64 {
        let half = &self.slices[self.slices.len() / 2..];
        if half.is_empty() {
            return f64::NAN;
        }
        half.iter().map(|s| s.mean_end_to_end_rt).sum::<f64>() / half.len() as f64
    }

    /// Total adaptations over the run.
    pub fn total_adaptations(&self) -> usize {
        self.slices.iter().map(|s| s.adaptations).sum()
    }

    /// Total SLA violations over the run.
    pub fn total_violations(&self) -> usize {
        self.slices.iter().map(|s| s.violations).sum()
    }
}

/// The simulation driver.
pub struct AdaptationSimulation<'a> {
    dataset: &'a QosDataset,
    config: SimulationConfig,
}

impl<'a> AdaptationSimulation<'a> {
    /// Creates a simulation over `dataset`.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::InvalidConfig`] when `config` does not fit the
    /// dataset.
    pub fn new(dataset: &'a QosDataset, config: SimulationConfig) -> Result<Self, ServiceError> {
        config.validate(dataset)?;
        Ok(Self { dataset, config })
    }

    /// Builds the application fleet: each application belongs to a distinct
    /// dataset user and gets disjoint candidate sets drawn without
    /// replacement from the dataset's services.
    fn build_fleet(&self, rng: &mut StdRng) -> Vec<ExecutionMiddleware> {
        let users = sample_indices(rng, self.dataset.users(), self.config.applications);
        users
            .into_iter()
            .filter_map(|user| {
                let needed = self.config.tasks_per_workflow * self.config.candidates_per_task;
                let services = sample_indices(rng, self.dataset.services(), needed);
                let tasks: Vec<AbstractTask> = services
                    .chunks(self.config.candidates_per_task)
                    .enumerate()
                    .filter_map(|(k, chunk)| {
                        AbstractTask::new(format!("task-{k}"), chunk.to_vec()).ok()
                    })
                    .collect();
                // A degenerate configuration (zero candidates per task) yields
                // an empty workflow; skip the application instead of aborting
                // the whole simulation.
                Workflow::new(tasks).ok().map(|workflow| {
                    ExecutionMiddleware::new(user, workflow, self.config.sla_threshold)
                })
            })
            .collect()
    }

    /// Runs one policy over the configured slices, with predictions served by
    /// an AMF-backed prediction service fed by background traffic.
    pub fn run(&self, policy: &dyn AdaptationPolicy) -> SimulationReport {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut fleet = self.build_fleet(&mut rng);
        let service = QosPredictionService::new(ServiceConfig {
            amf: amf_core::AmfConfig::response_time().with_seed(self.config.seed),
            replay: amf_core::trainer::ReplayOptions {
                max_iterations: 100_000,
                min_iterations: 5_000,
                window: 1_000,
                tolerance: 1e-3,
                patience: 3,
            },
            ..Default::default()
        });

        let attr = Attribute::ResponseTime;
        let total_cells = self.dataset.users() * self.dataset.services();
        let background_per_slice =
            ((total_cells as f64) * self.config.background_density).round() as usize;

        let mut slices = Vec::with_capacity(self.config.slices);
        for slice in 0..self.config.slices {
            let now = self.dataset.slice_start_time(slice);
            service.advance_clock(now);

            // Background traffic: other users' observations this slice.
            let cells = sample_indices(&mut rng, total_cells, background_per_slice);
            for cell in cells {
                let (u, s) = (
                    cell / self.dataset.services(),
                    cell % self.dataset.services(),
                );
                service.submit(QosRecord {
                    user: format!("u{u}"),
                    service: format!("s{s}"),
                    timestamp: now,
                    value: self.dataset.value(attr, u, s, slice),
                });
            }
            // Idle-time convergence before decisions are made.
            service.idle();

            // Application executions.
            let mut rt_sum = 0.0;
            let mut adaptations = 0;
            let mut violations = 0;
            for app in fleet.iter_mut() {
                let user = app.user();
                let user_name = format!("u{user}");
                let outcome = app.step(
                    |svc| self.dataset.value(attr, user, svc, slice),
                    |u, s| {
                        let user_id = service.join_user(&format!("u{u}"));
                        let service_id = service.join_service(&format!("s{s}"));
                        service.predict_ids(user_id, service_id)
                    },
                    policy,
                );
                // Report this application's own observations too.
                for (svc, value) in &outcome.observations {
                    service.submit(QosRecord {
                        user: user_name.clone(),
                        service: format!("s{svc}"),
                        timestamp: now,
                        value: *value,
                    });
                }
                rt_sum += outcome.end_to_end_rt;
                adaptations += outcome.adaptations;
                violations += outcome.violations;
            }

            slices.push(SliceOutcome {
                slice,
                mean_end_to_end_rt: rt_sum / fleet.len() as f64,
                adaptations,
                violations,
            });
        }

        SimulationReport {
            policy: policy.name().to_string(),
            slices,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BestPredictedPolicy, StaticPolicy};
    use qos_dataset::DatasetConfig;

    fn dataset() -> QosDataset {
        QosDataset::generate(&DatasetConfig {
            users: 20,
            services: 40,
            time_slices: 6,
            ..DatasetConfig::small()
        })
    }

    fn config() -> SimulationConfig {
        SimulationConfig {
            applications: 4,
            tasks_per_workflow: 2,
            candidates_per_task: 4,
            slices: 6,
            background_density: 0.15,
            ..Default::default()
        }
    }

    #[test]
    fn config_validation() {
        let ds = dataset();
        config().validate(&ds).unwrap();
        let mut bad = config();
        bad.applications = 0;
        assert!(bad.validate(&ds).is_err());
        let mut bad = config();
        bad.applications = 100;
        assert!(bad.validate(&ds).is_err());
        let mut bad = config();
        bad.tasks_per_workflow = 10;
        bad.candidates_per_task = 10;
        assert!(bad.validate(&ds).is_err());
        let mut bad = config();
        bad.slices = 100;
        assert!(bad.validate(&ds).is_err());
        let mut bad = config();
        bad.background_density = 0.0;
        assert!(bad.validate(&ds).is_err());
        let mut bad = config();
        bad.sla_threshold = 0.0;
        assert!(bad.validate(&ds).is_err());
    }

    #[test]
    fn static_run_produces_full_report() {
        let ds = dataset();
        let sim = AdaptationSimulation::new(&ds, config()).unwrap();
        let report = sim.run(&StaticPolicy);
        assert_eq!(report.policy, "static");
        assert_eq!(report.slices.len(), 6);
        assert_eq!(report.total_adaptations(), 0);
        assert!(report.mean_rt() > 0.0);
        assert!(report.steady_state_rt() > 0.0);
    }

    #[test]
    fn adaptive_beats_static_at_steady_state() {
        let ds = dataset();
        let sim = AdaptationSimulation::new(&ds, config()).unwrap();
        let static_report = sim.run(&StaticPolicy);
        let adaptive_report = sim.run(&BestPredictedPolicy);
        assert!(adaptive_report.total_adaptations() > 0);
        // Greedy adaptation with a trained predictor should not be worse at
        // steady state than never adapting (both fleets start identically).
        assert!(
            adaptive_report.steady_state_rt() <= static_report.steady_state_rt() * 1.05,
            "adaptive {} vs static {}",
            adaptive_report.steady_state_rt(),
            static_report.steady_state_rt()
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let ds = dataset();
        let sim = AdaptationSimulation::new(&ds, config()).unwrap();
        let a = sim.run(&StaticPolicy);
        let b = sim.run(&StaticPolicy);
        assert_eq!(a, b);
    }

    #[test]
    fn report_aggregates() {
        let report = SimulationReport {
            policy: "x".into(),
            slices: vec![
                SliceOutcome {
                    slice: 0,
                    mean_end_to_end_rt: 2.0,
                    adaptations: 1,
                    violations: 2,
                },
                SliceOutcome {
                    slice: 1,
                    mean_end_to_end_rt: 4.0,
                    adaptations: 3,
                    violations: 0,
                },
            ],
        };
        assert_eq!(report.mean_rt(), 3.0);
        assert_eq!(report.steady_state_rt(), 4.0);
        assert_eq!(report.total_adaptations(), 4);
        assert_eq!(report.total_violations(), 2);
    }
}
