//! QoS-driven service adaptation framework (paper Section III).
//!
//! The paper wraps AMF in a two-module framework, reproduced here as a
//! simulation-friendly library:
//!
//! * **QoS prediction service** ([`QosPredictionService`]) — collects observed
//!   QoS data from all users ("input handling"), keeps the AMF model updated
//!   online ("online updating"), and serves predictions on demand ("QoS
//!   prediction") through one interface. [`managers`] provides the user and
//!   service managers that map external identities to model indices and track
//!   join/leave churn; [`database`] is the QoS record store.
//!
//! * **Execution middleware** ([`middleware`], [`workflow`], [`policy`]) — a
//!   BPEL-engine stand-in: an application is a [`workflow::Workflow`] of
//!   abstract tasks, each bound to one of several functionally-equivalent
//!   candidate services. Per time step the middleware invokes the bound
//!   services, reports the observed QoS, and lets an
//!   [`policy::AdaptationPolicy`] decide re-bindings ("adaptation actions")
//!   based on predicted QoS of the candidates.
//!
//! [`simulation`] drives the whole loop against a synthetic
//! [`qos_dataset::QosDataset`] to measure end-to-end adaptation quality —
//! the system-level payoff the paper motivates in its introduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod adapt;
pub mod database;
pub mod managers;
pub mod middleware;
pub mod monitor;
pub mod policy;
pub mod prediction_service;
pub mod scenario;
pub mod simulation;
pub mod telemetry;
pub mod workflow;

pub use adapt::{Planner, PlannerConfig, PlannerDecision, PlannerObservation, PlannerTier};
pub use database::QosDatabase;
pub use managers::{EntityId, Registry};
pub use middleware::ExecutionMiddleware;
pub use monitor::{MonitorConfig, QosMonitor};
pub use policy::{AdaptationPolicy, BestPredictedPolicy, ThresholdPolicy};
pub use prediction_service::{
    Prediction, PredictionSource, QosPredictionService, QosRecord, ServiceConfig, ServiceStats,
    SourceCounts,
};
pub use scenario::{
    catalog, find_scenario, report_json, RunMetrics, ScenarioConfig, ScenarioEngine,
    ScenarioOutcome, ScenarioSpec, SCENARIO_SCHEMA,
};
pub use simulation::{AdaptationSimulation, SimulationConfig, SimulationReport};
pub use telemetry::{MetricsServer, HEALTH_SCHEMA};
pub use workflow::{AbstractTask, Workflow};

/// Error type for the service framework.
#[derive(Debug)]
pub enum ServiceError {
    /// An external id was not registered.
    UnknownEntity {
        /// "user" or "service".
        kind: &'static str,
        /// The offending external id.
        id: String,
    },
    /// The underlying AMF model failed.
    Model(amf_core::AmfError),
    /// A workflow definition was invalid.
    InvalidWorkflow(String),
    /// A simulation configuration was invalid.
    InvalidConfig(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownEntity { kind, id } => write!(f, "unknown {kind}: {id}"),
            ServiceError::Model(e) => write!(f, "model error: {e}"),
            ServiceError::InvalidWorkflow(msg) => write!(f, "invalid workflow: {msg}"),
            ServiceError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<amf_core::AmfError> for ServiceError {
    fn from(e: amf_core::AmfError) -> Self {
        ServiceError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = ServiceError::UnknownEntity {
            kind: "user",
            id: "u-1".into(),
        };
        assert_eq!(e.to_string(), "unknown user: u-1");
        assert!(ServiceError::InvalidWorkflow("empty".into())
            .to_string()
            .contains("workflow"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServiceError>();
    }
}
