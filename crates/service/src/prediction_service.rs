//! The QoS prediction service (paper Fig. 3, right panel).
//!
//! Ties together the three stages the paper names:
//!
//! 1. **Input handling** — observed QoS records arrive as a stream (here via
//!    a `crossbeam` channel or direct calls), are screened by a
//!    [`SampleGuard`] (NaN/∞, non-positive, out-of-range, and statistical
//!    outliers are quarantined, never trained on), resolved to dense ids by
//!    the user/service managers, logged in the [`QosDatabase`], and fed to
//!    the model;
//! 2. **Online updating** — the embedded [`amf_core::AmfTrainer`] applies
//!    each sample immediately and replays live samples during idle time;
//! 3. **QoS prediction** — [`QosPredictionService::predict`] serves estimates
//!    for *candidate* services the user never invoked.
//!
//! # Fault tolerance
//!
//! A runtime-adaptation loop keeps calling this service while parts of it
//! are unhealthy, so every stage degrades instead of failing:
//!
//! * **Ingestion** — garbage records are quarantined with exact counters
//!   ([`QosPredictionService::guard_stats`]); a bounded input queue sheds
//!   load under backpressure ([`QosPredictionService::offer`]) rather than
//!   blocking the reporting path, counting every dropped record; sharded
//!   batch training survives worker crashes (respawn + journal replay in
//!   [`amf_core::ShardedEngine`]) and falls back to sequential application
//!   if the engine cannot be built at all.
//! * **Prediction** — [`QosPredictionService::predict_degraded`] never
//!   returns an error or a non-finite value: when the model cannot price a
//!   pair (unknown or cold entities, mid-recovery), it walks a fallback
//!   ladder — user mean → service mean → global mean → configured default —
//!   and tags the answer with its [`PredictionSource`] so callers can weigh
//!   it accordingly.

use crate::database::QosDatabase;
use crate::managers::Registry;
use crate::ServiceError;
use amf_core::engine::FaultStats;
use amf_core::fault::FaultPlan;
use amf_core::guard::{GuardConfig, GuardStats, SampleGuard};
use amf_core::{AmfConfig, AmfTrainer, QuarantineDiagnostics};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use qos_obs::{Counter, Histogram, Json, MetricsRegistry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One observed QoS record as submitted by a user's QoS manager.
#[derive(Debug, Clone, PartialEq)]
pub struct QosRecord {
    /// External user identity.
    pub user: String,
    /// External service identity.
    pub service: String,
    /// Observation timestamp (seconds since simulation epoch).
    pub timestamp: u64,
    /// Observed raw QoS value.
    pub value: f64,
}

/// Prediction-service configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Hyperparameters of the embedded AMF model.
    pub amf: AmfConfig,
    /// Observations retained per pair in the QoS database.
    pub history_cap: usize,
    /// Replay stopping criteria used by [`QosPredictionService::idle`].
    pub replay: amf_core::trainer::ReplayOptions,
    /// Worker threads/lock stripes used by batched ingestion
    /// ([`QosPredictionService::drain_inputs`] and
    /// [`QosPredictionService::submit_batch`]). `1` keeps ingestion on the
    /// calling thread; results are identical either way (the sharded engine
    /// preserves per-entity stream order).
    pub shards: usize,
    /// Engine consistency mode for batched ingestion.
    /// [`amf_core::Consistency::Parity`] (the default) is bitwise identical
    /// to sequential submission; [`amf_core::Consistency::Relaxed`] routes
    /// batches through the lock-free fast lane, trading bitwise equality for
    /// throughput with a statistically bounded accuracy gap (see DESIGN.md
    /// §13).
    pub consistency: amf_core::Consistency,
    /// Input screening. `Some` quarantines invalid samples before they reach
    /// the database or the model; `None` disables screening entirely. The
    /// default matches the model's QoS range with the statistical outlier
    /// gate off (hard validation only) — enable
    /// [`GuardConfig::outlier_gate`] for lossy transports.
    pub guard: Option<GuardConfig>,
    /// Capacity of the input channel ([`QosPredictionService::input_channel`]
    /// / [`QosPredictionService::offer`]). `0` keeps the channel unbounded
    /// (no shedding, unbounded memory under overload).
    pub input_queue_capacity: usize,
    /// EMA-error level at or above which an entity counts as *cold* for
    /// [`QosPredictionService::predict_degraded`] (freshly registered
    /// entities start at exactly `1.0`).
    pub cold_error_threshold: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let amf = AmfConfig::response_time();
        Self {
            amf,
            history_cap: 16,
            replay: amf_core::trainer::ReplayOptions::default(),
            shards: 1,
            consistency: amf_core::Consistency::Parity,
            guard: Some(GuardConfig {
                outlier_gate: false,
                ..GuardConfig::for_amf(&amf)
            }),
            input_queue_capacity: 0,
            cold_error_threshold: 1.0,
        }
    }
}

/// Where a degraded-mode prediction's value came from — ordered from most to
/// least informed. Anything other than [`PredictionSource::Model`] means the
/// AMF model could not price the pair and a coarser estimate was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PredictionSource {
    /// The AMF model, both entities known and warm.
    Model,
    /// Mean of the user's retained observations across services.
    UserMean,
    /// Mean of the service's retained observations across users.
    ServiceMean,
    /// Mean of every retained observation.
    GlobalMean,
    /// No data at all: the configured default (midpoint of the QoS range).
    Default,
}

impl PredictionSource {
    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            PredictionSource::Model => "model",
            PredictionSource::UserMean => "user-mean",
            PredictionSource::ServiceMean => "service-mean",
            PredictionSource::GlobalMean => "global-mean",
            PredictionSource::Default => "default",
        }
    }

    /// Whether the value came from the AMF model itself.
    pub fn is_model(self) -> bool {
        self == PredictionSource::Model
    }

    /// Every source, in ladder order (the order of [`SourceCounts`] fields).
    pub const ALL: [PredictionSource; 5] = [
        PredictionSource::Model,
        PredictionSource::UserMean,
        PredictionSource::ServiceMean,
        PredictionSource::GlobalMean,
        PredictionSource::Default,
    ];

    fn index(self) -> usize {
        match self {
            PredictionSource::Model => 0,
            PredictionSource::UserMean => 1,
            PredictionSource::ServiceMean => 2,
            PredictionSource::GlobalMean => 3,
            PredictionSource::Default => 4,
        }
    }
}

/// Per-rung tally of [`QosPredictionService::predict_degraded`] answers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceCounts {
    /// Served by the AMF model.
    pub model: u64,
    /// Served from the user's observation mean.
    pub user_mean: u64,
    /// Served from the service's observation mean.
    pub service_mean: u64,
    /// Served from the global observation mean.
    pub global_mean: u64,
    /// Served as the configured default (no data at all).
    pub default: u64,
}

impl SourceCounts {
    fn from_counters(counters: &[Arc<Counter>; 5], take: bool) -> Self {
        let read = |c: &Counter| if take { c.take() } else { c.get() };
        Self {
            model: read(&counters[0]),
            user_mean: read(&counters[1]),
            service_mean: read(&counters[2]),
            global_mean: read(&counters[3]),
            default: read(&counters[4]),
        }
    }

    /// Sum over every rung.
    pub fn total(&self) -> u64 {
        self.model + self.user_mean + self.service_mean + self.global_mean + self.default
    }
}

/// A degraded-mode prediction: always a finite value, tagged with how far
/// down the fallback ladder it came from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// The predicted QoS value (always finite).
    pub value: f64,
    /// Which rung of the fallback ladder produced it.
    pub source: PredictionSource,
}

/// Operational counters of a [`QosPredictionService`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Registered users.
    pub users: usize,
    /// Registered services.
    pub services: usize,
    /// Online model updates applied.
    pub updates: u64,
    /// Records admitted to training (screened in, or screening disabled).
    pub accepted: u64,
    /// Records quarantined by the input guard.
    pub rejected: u64,
    /// Records dropped by input-queue load shedding.
    pub dropped: u64,
    /// Whether ingestion has lost samples to an unrecoverable shard worker
    /// (predictions still flow, but the model may be missing updates).
    pub degraded: bool,
    /// Cumulative `predict_degraded` fallback-ladder tallies (never reset).
    pub sources_total: SourceCounts,
    /// Fallback-ladder tallies since the *previous* [`QosPredictionService::stats`]
    /// call — taking a snapshot resets this window, so two successive
    /// snapshots measure disjoint intervals (the rate view a monitoring loop
    /// wants; use [`ServiceStats::sources_total`] for lifetime counts).
    pub sources_interval: SourceCounts,
}

/// The QoS prediction service.
///
/// Thread-safe: records can be submitted from any thread (directly or through
/// the channel returned by [`QosPredictionService::input_channel`]); the
/// model is guarded by a mutex.
///
/// # Examples
///
/// ```
/// use qos_service::{QosPredictionService, QosRecord, ServiceConfig};
///
/// let service = QosPredictionService::new(ServiceConfig::default());
/// service.submit(QosRecord {
///     user: "u-pittsburgh".into(),
///     service: "ws-weather-1".into(),
///     timestamp: 0,
///     value: 1.4,
/// });
/// service.submit(QosRecord {
///     user: "u-hongkong".into(),
///     service: "ws-weather-1".into(),
///     timestamp: 1,
///     value: 0.6,
/// });
/// // Candidate prediction for a pair never invoked:
/// let estimate = service.predict("u-pittsburgh", "ws-weather-1").unwrap();
/// assert!(estimate > 0.0);
/// // Garbage is quarantined, not trained on:
/// service.submit(QosRecord {
///     user: "u-hongkong".into(),
///     service: "ws-weather-1".into(),
///     timestamp: 2,
///     value: f64::NAN,
/// });
/// assert_eq!(service.stats().rejected, 1);
/// ```
pub struct QosPredictionService {
    trainer: Mutex<AmfTrainer>,
    users: Mutex<Registry>,
    services: Mutex<Registry>,
    guard: Option<Mutex<SampleGuard>>,
    database: QosDatabase,
    config: ServiceConfig,
    input_tx: Sender<QosRecord>,
    input_rx: Receiver<QosRecord>,
    fault_plan: Mutex<Option<Arc<FaultPlan>>>,
    fault_stats: Mutex<FaultStats>,
    /// Per-instance metric registry: counters here are scoped to THIS
    /// service (tests assert exact per-instance counts), unlike amf-core's
    /// process-global instrumentation.
    metrics: MetricsRegistry,
    accepted: Arc<Counter>,
    dropped: Arc<Counter>,
    predictions: Arc<Counter>,
    predict_ns: Arc<Histogram>,
    source_total: [Arc<Counter>; 5],
    source_interval: [Arc<Counter>; 5],
    degraded: AtomicBool,
}

impl QosPredictionService {
    /// Creates the service.
    ///
    /// # Panics
    ///
    /// Panics if the AMF configuration is invalid; use
    /// [`QosPredictionService::try_new`] for a checked variant.
    pub fn new(config: ServiceConfig) -> Self {
        Self::try_new(config).expect("invalid service config")
    }

    /// Creates the service, validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Model`] when the AMF configuration is invalid.
    pub fn try_new(config: ServiceConfig) -> Result<Self, ServiceError> {
        let (input_tx, input_rx) = if config.input_queue_capacity > 0 {
            bounded(config.input_queue_capacity)
        } else {
            unbounded()
        };
        let metrics = MetricsRegistry::new();
        let accepted = metrics.counter("service.accepted");
        let dropped = metrics.counter("service.dropped");
        let predictions = metrics.counter("service.predictions");
        let predict_ns = metrics.histogram("service.predict_ns");
        let source_total = PredictionSource::ALL
            .map(|s| metrics.counter_labeled("service.predict_source", s.label()));
        let source_interval = PredictionSource::ALL
            .map(|s| metrics.counter_labeled("service.predict_source_interval", s.label()));
        Ok(Self {
            trainer: Mutex::new(AmfTrainer::new(config.amf)?),
            users: Mutex::new(Registry::new()),
            services: Mutex::new(Registry::new()),
            guard: config.guard.map(|g| Mutex::new(SampleGuard::new(g))),
            database: QosDatabase::new(config.history_cap),
            config,
            input_tx,
            input_rx,
            fault_plan: Mutex::new(None),
            fault_stats: Mutex::new(FaultStats::default()),
            metrics,
            accepted,
            dropped,
            predictions,
            predict_ns,
            source_total,
            source_interval,
            degraded: AtomicBool::new(false),
        })
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The QoS database (read-side access for monitoring).
    pub fn database(&self) -> &QosDatabase {
        &self.database
    }

    /// A sender for the input-handling stream; cloneable and usable from any
    /// thread. Queued records are applied by
    /// [`QosPredictionService::drain_inputs`]. When
    /// [`ServiceConfig::input_queue_capacity`] is non-zero the channel is
    /// bounded and `send` blocks when full — use
    /// [`QosPredictionService::offer`] for the non-blocking, load-shedding
    /// variant.
    pub fn input_channel(&self) -> Sender<QosRecord> {
        self.input_tx.clone()
    }

    /// Non-blocking enqueue with bounded retry and load shedding: tries the
    /// input queue a few times with a short backoff, then drops the record
    /// and counts it in [`ServiceStats::dropped`]. Returns whether the
    /// record was queued. On an unbounded queue this always succeeds.
    pub fn offer(&self, record: QosRecord) -> bool {
        const ATTEMPTS: u32 = 8;
        const BACKOFF: std::time::Duration = std::time::Duration::from_micros(100);
        let mut record = record;
        for attempt in 0..ATTEMPTS {
            match self.input_tx.try_send(record) {
                Ok(()) => return true,
                Err(TrySendError::Full(back)) => {
                    record = back;
                    if attempt + 1 < ATTEMPTS {
                        std::thread::sleep(BACKOFF);
                    }
                }
                Err(TrySendError::Disconnected(_)) => break,
            }
        }
        self.dropped.inc();
        false
    }

    /// Applies all queued channel records — through the sharded engine when
    /// `config.shards > 1`. Returns how many were accepted for training.
    pub fn drain_inputs(&self) -> usize {
        let mut batch = Vec::new();
        while let Ok(record) = self.input_rx.try_recv() {
            batch.push(record);
        }
        self.submit_batch(batch)
    }

    /// Registers a record's identities and screens its value. Returns the
    /// dense ids plus whether the record was admitted (admitted records are
    /// logged in the database; rejects are only quarantined).
    fn admit(&self, record: &QosRecord) -> (usize, usize, bool) {
        let user = self.users.lock().join(&record.user);
        let service = self.services.lock().join(&record.service);
        let admitted = match &self.guard {
            Some(guard) => guard.lock().admit(user, service, record.value).is_ok(),
            None => true,
        };
        if admitted {
            self.database
                .record(user, service, record.timestamp, record.value);
            self.accepted.inc();
        }
        (user, service, admitted)
    }

    /// Input handling + online updating for a whole batch of records.
    ///
    /// Identities are registered and admitted records logged exactly like
    /// [`QosPredictionService::submit`]; the model updates are applied by a
    /// [`amf_core::ShardedEngine`] with `config.shards` workers (sequentially
    /// when `shards <= 1` in parity mode). Under the default parity
    /// consistency, per-entity stream order is preserved and the resulting
    /// model is identical to one-by-one submission; under relaxed
    /// consistency it is statistically equivalent instead. Returns the
    /// number of records accepted for training (quarantined records are
    /// counted in [`ServiceStats::rejected`], not here).
    pub fn submit_batch(&self, records: Vec<QosRecord>) -> usize {
        if records.is_empty() {
            return 0;
        }
        let mut samples = Vec::with_capacity(records.len());
        for record in &records {
            let (user, service, admitted) = self.admit(record);
            if admitted {
                samples.push((user, service, record.timestamp, record.value));
            }
        }
        let n = samples.len();
        if n == 0 {
            return 0;
        }
        let mut trainer = self.trainer.lock();
        if self.config.shards > 1 || self.config.consistency == amf_core::Consistency::Relaxed {
            let plan = self.fault_plan.lock().clone();
            let options = amf_core::EngineOptions::with_consistency(
                self.config.shards,
                self.config.consistency,
            );
            match trainer.feed_batch_sharded_with(samples.clone(), options, plan) {
                Ok((fed, faults)) => {
                    self.absorb_fault_stats(faults);
                    return fed;
                }
                Err(_) => {
                    // The engine could not be built (invalid options, thread
                    // exhaustion): degrade to sequential application rather
                    // than dropping the batch or panicking.
                    self.degraded.store(true, Ordering::Relaxed);
                }
            }
        }
        for (user, service, timestamp, value) in samples {
            trainer.feed(user, service, timestamp, value);
        }
        n
    }

    /// Input handling + online updating for one record: registers identities,
    /// screens the value, stores and applies admitted records.
    /// Returns the `(user, service)` dense ids (assigned even for
    /// quarantined records — identity and data quality are independent).
    pub fn submit(&self, record: QosRecord) -> (usize, usize) {
        let (user, service, admitted) = self.admit(&record);
        if admitted {
            self.trainer
                .lock()
                .feed(user, service, record.timestamp, record.value);
        }
        (user, service)
    }

    /// Idle-time refinement: replays live samples until convergence
    /// (Algorithm 1's "randomly pick an existing data sample" branch).
    pub fn idle(&self) -> amf_core::TrainReport {
        self.trainer
            .lock()
            .replay_until_converged(self.config.replay)
    }

    /// Advances the service's notion of time (drives sample expiry when no
    /// new data arrives).
    pub fn advance_clock(&self, now: u64) {
        self.trainer.lock().advance_clock(now);
    }

    /// Windowed accuracy (MRE/NMAE over the sliding observation window) —
    /// the planner's *Analyze* input.
    pub fn windowed_accuracy(&self) -> amf_core::WindowedAccuracy {
        self.trainer.lock().model().windowed_accuracy()
    }

    /// Cumulative `(user, service)` drift-alarm counts from the model's
    /// Page–Hinkley sentinel.
    pub fn drift_alarms(&self) -> (u64, u64) {
        self.trainer.lock().model().drift_sentinel().alarms()
    }

    /// Whether the drift sentinel currently considers both error streams
    /// stationary.
    pub fn drift_healthy(&self) -> bool {
        self.trainer.lock().model().drift_sentinel().healthy()
    }

    /// Clears drift-detector state *and* alarm counters so back-to-back
    /// scenario runs never inherit alarms from a previous regime.
    pub fn reset_drift_sentinel(&self) {
        self.trainer.lock().model_mut().reset_drift_sentinel();
    }

    /// Predicts the QoS between a user and a (candidate) service.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownEntity`] when either identity was never
    /// registered. For an infallible variant that degrades instead, see
    /// [`QosPredictionService::predict_degraded`].
    pub fn predict(&self, user: &str, service: &str) -> Result<f64, ServiceError> {
        let user_id =
            self.users
                .lock()
                .resolve(user)
                .ok_or_else(|| ServiceError::UnknownEntity {
                    kind: "user",
                    id: user.to_string(),
                })?;
        let service_id =
            self.services
                .lock()
                .resolve(service)
                .ok_or_else(|| ServiceError::UnknownEntity {
                    kind: "service",
                    id: service.to_string(),
                })?;
        self.predict_ids(user_id, service_id)
            .ok_or_else(|| ServiceError::UnknownEntity {
                kind: "service",
                id: service.to_string(),
            })
    }

    /// Prediction by dense ids (the hot path for the middleware).
    pub fn predict_ids(&self, user: usize, service: usize) -> Option<f64> {
        let started = Instant::now();
        let out = self.trainer.lock().model().predict(user, service);
        self.predict_ns.record_duration(started.elapsed());
        self.predictions.inc();
        out
    }

    /// Infallible prediction: never errors, never returns NaN. Serves the
    /// model's estimate when both entities are known and *warm* (EMA error
    /// below [`ServiceConfig::cold_error_threshold`]); otherwise walks the
    /// fallback ladder — user mean, service mean, global mean, configured
    /// default — and tags the result with its [`PredictionSource`]. This is
    /// the adaptation loop's view of the service during recovery: degraded
    /// answers beat no answers.
    pub fn predict_degraded(&self, user: &str, service: &str) -> Prediction {
        let user_id = self.users.lock().resolve(user);
        let service_id = self.services.lock().resolve(service);
        self.predict_degraded_ids(user_id, service_id)
    }

    /// [`QosPredictionService::predict_degraded`] by (optional) dense ids.
    pub fn predict_degraded_ids(&self, user: Option<usize>, service: Option<usize>) -> Prediction {
        let started = Instant::now();
        let prediction = self.degraded_lookup(user, service);
        self.predict_ns.record_duration(started.elapsed());
        self.predictions.inc();
        self.source_total[prediction.source.index()].inc();
        self.source_interval[prediction.source.index()].inc();
        prediction
    }

    /// The fallback-ladder walk itself (counter-free).
    fn degraded_lookup(&self, user: Option<usize>, service: Option<usize>) -> Prediction {
        if let (Some(u), Some(s)) = (user, service) {
            let trainer = self.trainer.lock();
            let model = trainer.model();
            let warm =
                |error: Option<f64>| error.is_some_and(|e| e < self.config.cold_error_threshold);
            if warm(model.user_error(u)) && warm(model.service_error(s)) {
                if let Some(value) = model.predict(u, s) {
                    if value.is_finite() {
                        return Prediction {
                            value,
                            source: PredictionSource::Model,
                        };
                    }
                }
            }
        }
        if let Some(value) = user.and_then(|u| self.database.user_mean(u)) {
            if value.is_finite() {
                return Prediction {
                    value,
                    source: PredictionSource::UserMean,
                };
            }
        }
        if let Some(value) = service.and_then(|s| self.database.service_mean(s)) {
            if value.is_finite() {
                return Prediction {
                    value,
                    source: PredictionSource::ServiceMean,
                };
            }
        }
        if let Some(value) = self.database.global_mean() {
            if value.is_finite() {
                return Prediction {
                    value,
                    source: PredictionSource::GlobalMean,
                };
            }
        }
        Prediction {
            value: 0.5 * (self.config.amf.r_min + self.config.amf.r_max),
            source: PredictionSource::Default,
        }
    }

    /// Ranks every registered service for `user` by predicted QoS and
    /// returns the best `k` as `(service name, predicted value)` pairs,
    /// ascending (for response time, lower is better).
    ///
    /// This is the runtime-adaptation query from the paper: when a component
    /// fails, pick the replacement with the best *predicted* QoS for this
    /// specific user. It runs on the model's batch ranking kernel — one
    /// streaming pass over the contiguous service slab with a bounded top-k
    /// heap — rather than `k` separate `predict` calls, so it stays cheap
    /// even against thousands of candidates.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownEntity`] when the user was never
    /// registered.
    pub fn rank_candidates(
        &self,
        user: &str,
        k: usize,
    ) -> Result<Vec<(String, f64)>, ServiceError> {
        let user_id =
            self.users
                .lock()
                .resolve(user)
                .ok_or_else(|| ServiceError::UnknownEntity {
                    kind: "user",
                    id: user.to_string(),
                })?;
        let ranked = self.rank_candidates_ids(user_id, k);
        let services = self.services.lock();
        Ok(ranked
            .into_iter()
            .map(|(id, value)| {
                let name = services
                    .name(id)
                    .map_or_else(|| format!("service-{id}"), str::to_string);
                (name, value)
            })
            .collect())
    }

    /// [`QosPredictionService::rank_candidates`] by dense user id, returning
    /// dense service ids (the hot path for the middleware's adaptation loop).
    pub fn rank_candidates_ids(&self, user: usize, k: usize) -> Vec<(usize, f64)> {
        self.trainer.lock().model().rank_candidates(user, k)
    }

    /// Registers a user id without an observation (explicit join).
    pub fn join_user(&self, name: &str) -> usize {
        let id = self.users.lock().join(name);
        self.trainer.lock().model_mut().ensure_user(id);
        id
    }

    /// Registers a service id without an observation (service discovery).
    pub fn join_service(&self, name: &str) -> usize {
        let id = self.services.lock().join(name);
        self.trainer.lock().model_mut().ensure_service(id);
        id
    }

    /// Marks a user inactive.
    pub fn leave_user(&self, name: &str) -> Option<usize> {
        self.users.lock().leave(name)
    }

    /// Marks a service inactive (e.g. discontinued by its provider).
    pub fn leave_service(&self, name: &str) -> Option<usize> {
        self.services.lock().leave(name)
    }

    /// Attaches a deterministic fault script to subsequent sharded batch
    /// ingestion ([`QosPredictionService::submit_batch`] with
    /// `config.shards > 1`) — the test/chaos hook proving recovery claims.
    pub fn inject_fault_plan(&self, plan: Arc<FaultPlan>) {
        *self.fault_plan.lock() = Some(plan);
    }

    /// Detaches any fault script.
    pub fn clear_fault_plan(&self) {
        *self.fault_plan.lock() = None;
    }

    /// Cumulative fault counters across all sharded ingestion so far.
    pub fn fault_stats(&self) -> FaultStats {
        *self.fault_stats.lock()
    }

    /// The input guard's admission counters (`None` when screening is
    /// disabled).
    pub fn guard_stats(&self) -> Option<GuardStats> {
        self.guard.as_ref().map(|g| g.lock().stats())
    }

    /// A quarantine health report: per-service reject rates, histogram, and
    /// worst offenders (`None` when screening is disabled).
    pub fn quarantine_diagnostics(&self) -> Option<QuarantineDiagnostics> {
        self.guard
            .as_ref()
            .map(|g| QuarantineDiagnostics::of(&g.lock()))
    }

    fn absorb_fault_stats(&self, faults: FaultStats) {
        if faults == FaultStats::default() {
            return;
        }
        let mut total = self.fault_stats.lock();
        total.worker_panics += faults.worker_panics;
        total.injected_panics += faults.injected_panics;
        total.respawns += faults.respawns;
        total.jobs_replayed += faults.jobs_replayed;
        total.samples_lost += faults.samples_lost;
        total.abandoned_workers += faults.abandoned_workers;
        if faults.samples_lost > 0 || faults.abandoned_workers > 0 {
            self.degraded.store(true, Ordering::Relaxed);
        }
    }

    /// Operational counters snapshot.
    ///
    /// The fallback-ladder *interval* tallies
    /// ([`ServiceStats::sources_interval`]) are take-and-reset: each call
    /// returns the counts since the previous call and starts a new window.
    /// Everything else (including [`ServiceStats::sources_total`]) is
    /// cumulative.
    pub fn stats(&self) -> ServiceStats {
        let updates = self.trainer.lock().model().update_count();
        ServiceStats {
            users: self.users.lock().len(),
            services: self.services.lock().len(),
            updates,
            accepted: self.accepted.get(),
            rejected: self
                .guard
                .as_ref()
                .map(|g| g.lock().stats().rejected())
                .unwrap_or(0),
            dropped: self.dropped.get(),
            degraded: self.degraded.load(Ordering::Relaxed),
            sources_total: SourceCounts::from_counters(&self.source_total, false),
            sources_interval: SourceCounts::from_counters(&self.source_interval, true),
        }
    }

    /// A versioned (`amf-obs/v1`) JSON snapshot of every metric this process
    /// holds: this instance's registry (`service.*` counters, prediction
    /// latency, fallback-ladder tallies) merged with the process-global
    /// registry's amf-core instrumentation (`engine.*`, `guard.*`,
    /// `model.*`) plus the global trace ring. Reading a snapshot never
    /// resets anything (unlike [`QosPredictionService::stats`]'s interval
    /// view).
    pub fn stats_snapshot(&self) -> Json {
        // Service-level state that lives outside the registry is mirrored
        // into it at snapshot time, so the JSON is self-contained. The
        // model's windowed-accuracy gauges refresh on a sampled cadence in
        // the hot path; republishing here means a scrape always reads
        // current values.
        self.trainer.lock().model_mut().publish_accuracy_gauges();
        self.metrics
            .counter("service.users")
            .set(self.users.lock().len() as u64);
        self.metrics
            .counter("service.services")
            .set(self.services.lock().len() as u64);
        self.metrics
            .counter("service.updates")
            .set(self.trainer.lock().model().update_count());
        self.metrics
            .counter("service.rejected")
            .set(self.stats_rejected());
        self.metrics
            .gauge("service.degraded")
            .set(if self.degraded.load(Ordering::Relaxed) {
                1.0
            } else {
                0.0
            });
        {
            let faults = self.fault_stats.lock();
            for (name, value) in [
                ("service.fault.worker_panics", faults.worker_panics),
                ("service.fault.respawns", faults.respawns),
                ("service.fault.jobs_replayed", faults.jobs_replayed),
                ("service.fault.samples_lost", faults.samples_lost),
                ("service.fault.abandoned_workers", faults.abandoned_workers),
            ] {
                self.metrics.counter(name).set(value);
            }
        }
        let mut snapshot = qos_obs::global().snapshot_json(true);
        let own = self.metrics.snapshot_json(false);
        for section in ["counters", "gauges", "histograms"] {
            let (Some(Json::Obj(own_map)), Some(Json::Obj(dest))) = (
                match &own {
                    Json::Obj(map) => map.get(section).cloned(),
                    _ => None,
                },
                match &mut snapshot {
                    Json::Obj(map) => map.get_mut(section),
                    _ => None,
                },
            ) else {
                continue;
            };
            dest.extend(own_map);
        }
        snapshot
    }

    fn stats_rejected(&self) -> u64 {
        self.guard
            .as_ref()
            .map(|g| g.lock().stats().rejected())
            .unwrap_or(0)
    }
}

impl std::fmt::Debug for QosPredictionService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("QosPredictionService")
            .field("users", &stats.users)
            .field("services", &stats.services)
            .field("updates", &stats.updates)
            .field("rejected", &stats.rejected)
            .field("dropped", &stats.dropped)
            .field("degraded", &stats.degraded)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(user: &str, service: &str, t: u64, v: f64) -> QosRecord {
        QosRecord {
            user: user.into(),
            service: service.into(),
            timestamp: t,
            value: v,
        }
    }

    #[test]
    fn submit_registers_and_updates() {
        let svc = QosPredictionService::new(ServiceConfig::default());
        let (u, s) = svc.submit(record("alice", "ws-1", 0, 1.2));
        assert_eq!((u, s), (0, 0));
        let (u2, s2) = svc.submit(record("bob", "ws-1", 1, 0.8));
        assert_eq!((u2, s2), (1, 0));
        let stats = svc.stats();
        assert_eq!(stats.users, 2);
        assert_eq!(stats.services, 1);
        assert_eq!(stats.updates, 2);
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.rejected, 0);
        assert_eq!(svc.database().observation_count(), 2);
    }

    #[test]
    fn predict_by_name_and_id() {
        let svc = QosPredictionService::new(ServiceConfig::default());
        for k in 0..50 {
            svc.submit(record("alice", "ws-1", k, 1.5));
        }
        let by_name = svc.predict("alice", "ws-1").unwrap();
        let by_id = svc.predict_ids(0, 0).unwrap();
        assert_eq!(by_name, by_id);
        assert!(by_name > 0.0);
    }

    #[test]
    fn predict_unknown_entities() {
        let svc = QosPredictionService::new(ServiceConfig::default());
        svc.submit(record("alice", "ws-1", 0, 1.0));
        assert!(matches!(
            svc.predict("ghost", "ws-1"),
            Err(ServiceError::UnknownEntity { kind: "user", .. })
        ));
        assert!(matches!(
            svc.predict("alice", "ghost"),
            Err(ServiceError::UnknownEntity {
                kind: "service",
                ..
            })
        ));
    }

    #[test]
    fn rank_candidates_orders_by_prediction() {
        let svc = QosPredictionService::new(ServiceConfig::default());
        // Train three services to clearly separated response-time levels.
        for k in 0..400u64 {
            svc.submit(record("alice", "ws-fast", k, 0.3));
            svc.submit(record("alice", "ws-mid", k, 2.0));
            svc.submit(record("alice", "ws-slow", k, 9.0));
        }
        let ranked = svc.rank_candidates("alice", 2).unwrap();
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].0, "ws-fast");
        assert_eq!(ranked[1].0, "ws-mid");
        assert!(ranked[0].1 < ranked[1].1);
        // Names round-trip through the registry and values match predict.
        let direct = svc.predict("alice", "ws-fast").unwrap();
        assert!((ranked[0].1 - direct).abs() < 1e-12);
        // Ids variant agrees.
        let by_id = svc.rank_candidates_ids(0, 2);
        assert_eq!(by_id.len(), 2);
        assert_eq!(ranked[0].1.to_bits(), by_id[0].1.to_bits());
        // Unknown user errors.
        assert!(matches!(
            svc.rank_candidates("ghost", 2),
            Err(ServiceError::UnknownEntity { kind: "user", .. })
        ));
    }

    #[test]
    fn channel_ingestion() {
        let svc = QosPredictionService::new(ServiceConfig::default());
        let tx = svc.input_channel();
        tx.send(record("u1", "s1", 0, 1.0)).unwrap();
        tx.send(record("u2", "s1", 1, 2.0)).unwrap();
        assert_eq!(svc.drain_inputs(), 2);
        assert_eq!(svc.stats().updates, 2);
        assert_eq!(svc.drain_inputs(), 0);
    }

    #[test]
    fn channel_works_across_threads() {
        let svc = Arc::new(QosPredictionService::new(ServiceConfig::default()));
        let tx = svc.input_channel();
        let producer = std::thread::spawn(move || {
            for k in 0..20 {
                tx.send(record(&format!("u{}", k % 3), "s", k, 1.0))
                    .unwrap();
            }
        });
        producer.join().unwrap();
        assert_eq!(svc.drain_inputs(), 20);
    }

    #[test]
    fn sharded_batch_ingestion_matches_sequential() {
        let records: Vec<QosRecord> = (0..120u64)
            .map(|k| {
                record(
                    &format!("u{}", k % 6),
                    &format!("s{}", k % 8),
                    k,
                    0.4 + (k % 5) as f64 * 0.7,
                )
            })
            .collect();
        let seq = QosPredictionService::new(ServiceConfig::default());
        for r in records.clone() {
            seq.submit(r);
        }
        let sharded = QosPredictionService::new(ServiceConfig {
            shards: 4,
            ..Default::default()
        });
        assert_eq!(sharded.submit_batch(records), 120);
        assert_eq!(seq.stats(), sharded.stats());
        for u in 0..6 {
            for s in 0..8 {
                assert_eq!(seq.predict_ids(u, s), sharded.predict_ids(u, s));
            }
        }
    }

    #[test]
    fn relaxed_batch_ingestion_counts_and_predicts() {
        let records: Vec<QosRecord> = (0..200u64)
            .map(|k| {
                record(
                    &format!("u{}", k % 6),
                    &format!("s{}", k % 8),
                    k,
                    0.4 + (k % 5) as f64 * 0.7,
                )
            })
            .collect();
        let relaxed = QosPredictionService::new(ServiceConfig {
            shards: 4,
            consistency: amf_core::Consistency::Relaxed,
            ..Default::default()
        });
        assert_eq!(relaxed.submit_batch(records), 200);
        // No lost updates, and every touched pair is servable and finite.
        assert_eq!(relaxed.stats().updates, 200);
        for u in 0..6 {
            for s in 0..8 {
                let value = relaxed.predict_ids(u, s).expect("pair is known");
                assert!(value.is_finite() && value > 0.0, "({u},{s}) -> {value}");
            }
        }
    }

    #[test]
    fn sharded_channel_drain() {
        let svc = QosPredictionService::new(ServiceConfig {
            shards: 2,
            ..Default::default()
        });
        let tx = svc.input_channel();
        for k in 0..40u64 {
            tx.send(record(&format!("u{}", k % 4), "s", k, 1.0))
                .unwrap();
        }
        assert_eq!(svc.drain_inputs(), 40);
        assert_eq!(svc.stats().updates, 40);
        assert_eq!(svc.database().observation_count(), 40);
    }

    #[test]
    fn idle_replays_and_improves() {
        let svc = QosPredictionService::new(ServiceConfig {
            replay: amf_core::trainer::ReplayOptions {
                max_iterations: 20_000,
                min_iterations: 2_000,
                window: 200,
                tolerance: 1e-3,
                patience: 3,
            },
            ..Default::default()
        });
        for (u, s, v) in [
            ("a", "x", 1.0),
            ("a", "y", 2.0),
            ("b", "x", 2.0),
            ("b", "y", 4.0),
        ] {
            svc.submit(record(u, s, 0, v));
        }
        let report = svc.idle();
        assert!(report.iterations > 0);
        let p = svc.predict("a", "x").unwrap();
        assert!((p - 1.0).abs() < 1.0, "prediction {p}");
    }

    #[test]
    fn join_and_leave() {
        let svc = QosPredictionService::new(ServiceConfig::default());
        let u = svc.join_user("newcomer");
        assert_eq!(u, 0);
        let s = svc.join_service("new-service");
        assert_eq!(s, 0);
        // Joined entities are predictable immediately (random factors).
        assert!(svc.predict("newcomer", "new-service").is_ok());
        assert_eq!(svc.leave_user("newcomer"), Some(0));
        assert_eq!(svc.leave_service("ghost"), None);
    }

    #[test]
    fn debug_format_mentions_counts() {
        let svc = QosPredictionService::new(ServiceConfig::default());
        svc.submit(record("a", "b", 0, 1.0));
        let text = format!("{svc:?}");
        assert!(text.contains("users"));
        assert!(text.contains("degraded"));
    }

    #[test]
    fn garbage_is_quarantined_not_trained() {
        let svc = QosPredictionService::new(ServiceConfig::default());
        svc.submit(record("a", "s", 0, 1.0));
        svc.submit(record("a", "s", 1, f64::NAN));
        svc.submit(record("a", "s", 2, -3.0));
        svc.submit(record("a", "s", 3, f64::INFINITY));
        svc.submit(record("a", "s", 4, 1.2));
        let stats = svc.stats();
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.rejected, 3);
        assert_eq!(stats.updates, 2, "rejects must not train");
        assert_eq!(
            svc.database().observation_count(),
            2,
            "rejects stay out of the db"
        );
        let g = svc.guard_stats().unwrap();
        assert_eq!(g.not_finite, 2);
        assert_eq!(g.non_positive, 1);
        assert_eq!(g.seen(), 5);
        let diag = svc.quarantine_diagnostics().unwrap();
        assert_eq!(diag.services_with_rejects, 1);
    }

    #[test]
    fn batch_return_counts_only_admitted() {
        let svc = QosPredictionService::new(ServiceConfig {
            shards: 2,
            ..Default::default()
        });
        let batch = vec![
            record("u1", "s1", 0, 1.0),
            record("u2", "s1", 1, f64::NAN),
            record("u1", "s2", 2, 2.0),
            record("u2", "s2", 3, -1.0),
        ];
        assert_eq!(svc.submit_batch(batch), 2);
        let stats = svc.stats();
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.rejected, 2);
        assert_eq!(stats.updates, 2);
        // Identity registration is independent of data quality.
        assert_eq!(stats.users, 2);
        assert_eq!(stats.services, 2);
    }

    #[test]
    fn guard_disabled_accepts_everything() {
        let svc = QosPredictionService::new(ServiceConfig {
            guard: None,
            ..Default::default()
        });
        // Non-finite values would poison the transform; the point here is
        // only that the *gate* is off, so use an odd-but-finite value.
        svc.submit(record("a", "s", 0, 1e9));
        assert_eq!(svc.stats().accepted, 1);
        assert_eq!(svc.stats().rejected, 0);
        assert!(svc.guard_stats().is_none());
    }

    #[test]
    fn bounded_queue_offer_sheds_with_count() {
        let svc = QosPredictionService::new(ServiceConfig {
            input_queue_capacity: 4,
            ..Default::default()
        });
        let mut queued = 0;
        for k in 0..10u64 {
            if svc.offer(record("u", "s", k, 1.0)) {
                queued += 1;
            }
        }
        assert_eq!(queued, 4, "queue holds exactly its capacity");
        assert_eq!(svc.stats().dropped, 6);
        assert_eq!(svc.drain_inputs(), 4);
        // Space freed: offers succeed again.
        assert!(svc.offer(record("u", "s", 10, 1.0)));
        assert_eq!(svc.stats().dropped, 6);
    }

    #[test]
    fn predict_degraded_walks_the_fallback_ladder() {
        let svc = QosPredictionService::new(ServiceConfig::default());
        // Rung 5: nothing known at all — finite default.
        let p = svc.predict_degraded("ghost-user", "ghost-service");
        assert_eq!(p.source, PredictionSource::Default);
        assert!(p.value.is_finite());

        // One observation: known user, unknown service -> user mean.
        svc.submit(record("alice", "ws-1", 0, 2.0));
        let p = svc.predict_degraded("alice", "ghost-service");
        assert_eq!(p.source, PredictionSource::UserMean);
        assert_eq!(p.value, 2.0);

        // Unknown user, known service -> service mean.
        let p = svc.predict_degraded("ghost-user", "ws-1");
        assert_eq!(p.source, PredictionSource::ServiceMean);
        assert_eq!(p.value, 2.0);

        // Both known: whatever the rung (warmth depends on the first
        // sample's error), the value is finite.
        let p = svc.predict_degraded("alice", "ws-1");
        assert!(p.value.is_finite());

        // Joined-but-never-observed entities start with EMA error 1.0 —
        // cold by definition, so the model is skipped in favour of data.
        svc.join_user("cold-user");
        svc.join_service("cold-service");
        let p = svc.predict_degraded("cold-user", "cold-service");
        assert_eq!(p.source, PredictionSource::GlobalMean);
        assert_eq!(p.value, 2.0);

        // Warm the pair up; the model takes over.
        for k in 1..200 {
            svc.submit(record("alice", "ws-1", k, 2.0));
        }
        let p = svc.predict_degraded("alice", "ws-1");
        assert_eq!(p.source, PredictionSource::Model);
        assert!(p.value.is_finite());
        assert!((p.value - 2.0).abs() < 1.0, "warm prediction {}", p.value);
    }

    #[test]
    fn predict_degraded_never_nan_under_garbage_stream() {
        let svc = QosPredictionService::new(ServiceConfig::default());
        for k in 0..100u64 {
            let v = match k % 4 {
                0 => 1.0 + (k % 7) as f64 * 0.3,
                1 => f64::NAN,
                2 => -5.0,
                _ => 2.0,
            };
            svc.submit(record(&format!("u{}", k % 5), &format!("s{}", k % 3), k, v));
        }
        for u in 0..5 {
            for s in 0..3 {
                let p = svc.predict_degraded(&format!("u{u}"), &format!("s{s}"));
                assert!(p.value.is_finite(), "u{u}/s{s} -> {:?}", p);
            }
        }
    }

    #[test]
    fn fallback_source_counters_expose_total_and_interval_views() {
        let svc = QosPredictionService::new(ServiceConfig::default());
        // Three ladder walks with no data at all: all land on Default.
        for _ in 0..3 {
            let p = svc.predict_degraded("ghost", "ghost");
            assert_eq!(p.source, PredictionSource::Default);
        }
        let first = svc.stats();
        assert_eq!(first.sources_total.default, 3);
        assert_eq!(first.sources_interval.default, 3);
        assert_eq!(first.sources_total.total(), 3);

        // A second snapshot with no predictions in between: the interval
        // window is empty, the cumulative view unchanged. This is the
        // regression pin for per-call tallies that were never reset between
        // snapshots.
        let second = svc.stats();
        assert_eq!(second.sources_total.default, 3, "total view is cumulative");
        assert_eq!(
            second.sources_interval.total(),
            0,
            "interval view must reset at each snapshot"
        );

        // New activity lands in the next window only.
        svc.submit(record("alice", "ws-1", 0, 2.0));
        let p = svc.predict_degraded("alice", "ghost");
        assert_eq!(p.source, PredictionSource::UserMean);
        let third = svc.stats();
        assert_eq!(third.sources_total.default, 3);
        assert_eq!(third.sources_total.user_mean, 1);
        assert_eq!(third.sources_interval.user_mean, 1);
        assert_eq!(third.sources_interval.default, 0);
    }

    #[test]
    fn stats_snapshot_emits_schema_valid_self_contained_json() {
        let svc = QosPredictionService::new(ServiceConfig::default());
        for k in 0..50u64 {
            svc.submit(record(
                &format!("u{}", k % 4),
                &format!("s{}", k % 3),
                k,
                1.0,
            ));
        }
        svc.submit(record("u0", "s0", 50, f64::NAN));
        let _ = svc.predict_ids(0, 0);
        let _ = svc.predict_degraded("u1", "s2");

        let snapshot = svc.stats_snapshot();
        // The document round-trips through the strict parser in both forms.
        let compact = Json::parse(&snapshot.to_string_compact()).expect("compact parses");
        assert_eq!(compact, snapshot);
        assert_eq!(
            snapshot.get("schema").and_then(Json::as_str),
            Some(qos_obs::SCHEMA)
        );
        let counters = snapshot.get("counters").expect("counters section");
        let counter = |name: &str| counters.get(name).and_then(Json::as_u64).unwrap_or(0);
        assert_eq!(counter("service.accepted"), 50);
        assert_eq!(counter("service.rejected"), 1);
        assert_eq!(counter("service.updates"), 50);
        assert!(counter("service.predictions") >= 2);
        assert_eq!(
            counter("service.predict_source.model")
                + counter("service.predict_source.user-mean")
                + counter("service.predict_source.service-mean")
                + counter("service.predict_source.global-mean")
                + counter("service.predict_source.default"),
            1
        );
        // Global amf-core instrumentation rides along (sampled observe fires
        // on the very first update).
        assert!(counter("guard.admitted") >= 50);
        assert!(counter("model.observes_sampled") >= 1);
        let histograms = snapshot.get("histograms").expect("histograms section");
        let predict = histograms.get("service.predict_ns").expect("predict hist");
        assert!(predict.get("count").and_then(Json::as_u64).unwrap_or(0) >= 2);
        assert!(predict.get("p95_ns").and_then(Json::as_u64).is_some());
        // Snapshots are read-only: a second one reports the same counts.
        let again = svc.stats_snapshot();
        assert_eq!(
            again
                .get("counters")
                .and_then(|c| c.get("service.accepted"))
                .and_then(Json::as_u64),
            Some(50)
        );
    }

    #[test]
    fn sharded_ingestion_with_fault_plan_recovers() {
        let svc = QosPredictionService::new(ServiceConfig {
            shards: 3,
            ..Default::default()
        });
        svc.inject_fault_plan(Arc::new(FaultPlan::new(11).kill_worker(
            1,
            5,
            amf_core::KillPhase::Before,
        )));
        let records: Vec<QosRecord> = (0..300u64)
            .map(|k| {
                record(
                    &format!("u{}", k % 9),
                    &format!("s{}", k % 7),
                    k,
                    0.5 + (k % 4) as f64,
                )
            })
            .collect();
        assert_eq!(svc.submit_batch(records), 300);
        let faults = svc.fault_stats();
        assert_eq!(faults.worker_panics, 1);
        assert_eq!(faults.respawns, 1);
        assert_eq!(faults.samples_lost, 0);
        let stats = svc.stats();
        assert_eq!(stats.updates, 300, "no accepted sample may be lost");
        assert!(!stats.degraded);
        // Clean-run parity: the crashed-and-recovered model matches a
        // sequential service fed the same records.
        let clean = QosPredictionService::new(ServiceConfig::default());
        for k in 0..300u64 {
            clean.submit(record(
                &format!("u{}", k % 9),
                &format!("s{}", k % 7),
                k,
                0.5 + (k % 4) as f64,
            ));
        }
        for u in 0..9 {
            for s in 0..7 {
                assert_eq!(clean.predict_ids(u, s), svc.predict_ids(u, s));
            }
        }
    }
}
