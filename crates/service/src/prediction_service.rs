//! The QoS prediction service (paper Fig. 3, right panel).
//!
//! Ties together the three stages the paper names:
//!
//! 1. **Input handling** — observed QoS records arrive as a stream (here via
//!    a `crossbeam` channel or direct calls), are resolved to dense ids by
//!    the user/service managers, logged in the [`QosDatabase`], and fed to
//!    the model;
//! 2. **Online updating** — the embedded [`amf_core::AmfTrainer`] applies
//!    each sample immediately and replays live samples during idle time;
//! 3. **QoS prediction** — [`QosPredictionService::predict`] serves estimates
//!    for *candidate* services the user never invoked.

use crate::database::QosDatabase;
use crate::managers::Registry;
use crate::ServiceError;
use amf_core::{AmfConfig, AmfTrainer};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

/// One observed QoS record as submitted by a user's QoS manager.
#[derive(Debug, Clone, PartialEq)]
pub struct QosRecord {
    /// External user identity.
    pub user: String,
    /// External service identity.
    pub service: String,
    /// Observation timestamp (seconds since simulation epoch).
    pub timestamp: u64,
    /// Observed raw QoS value.
    pub value: f64,
}

/// Prediction-service configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Hyperparameters of the embedded AMF model.
    pub amf: AmfConfig,
    /// Observations retained per pair in the QoS database.
    pub history_cap: usize,
    /// Replay stopping criteria used by [`QosPredictionService::idle`].
    pub replay: amf_core::trainer::ReplayOptions,
    /// Worker threads/lock stripes used by batched ingestion
    /// ([`QosPredictionService::drain_inputs`] and
    /// [`QosPredictionService::submit_batch`]). `1` keeps ingestion on the
    /// calling thread; results are identical either way (the sharded engine
    /// preserves per-entity stream order).
    pub shards: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            amf: AmfConfig::response_time(),
            history_cap: 16,
            replay: amf_core::trainer::ReplayOptions::default(),
            shards: 1,
        }
    }
}

/// The QoS prediction service.
///
/// Thread-safe: records can be submitted from any thread (directly or through
/// the channel returned by [`QosPredictionService::input_channel`]); the
/// model is guarded by a mutex.
///
/// # Examples
///
/// ```
/// use qos_service::{QosPredictionService, QosRecord, ServiceConfig};
///
/// let service = QosPredictionService::new(ServiceConfig::default());
/// service.submit(QosRecord {
///     user: "u-pittsburgh".into(),
///     service: "ws-weather-1".into(),
///     timestamp: 0,
///     value: 1.4,
/// });
/// service.submit(QosRecord {
///     user: "u-hongkong".into(),
///     service: "ws-weather-1".into(),
///     timestamp: 1,
///     value: 0.6,
/// });
/// // Candidate prediction for a pair never invoked:
/// let estimate = service.predict("u-pittsburgh", "ws-weather-1").unwrap();
/// assert!(estimate > 0.0);
/// ```
pub struct QosPredictionService {
    trainer: Mutex<AmfTrainer>,
    users: Mutex<Registry>,
    services: Mutex<Registry>,
    database: QosDatabase,
    config: ServiceConfig,
    input_tx: Sender<QosRecord>,
    input_rx: Receiver<QosRecord>,
}

impl QosPredictionService {
    /// Creates the service.
    ///
    /// # Panics
    ///
    /// Panics if the AMF configuration is invalid; use
    /// [`QosPredictionService::try_new`] for a checked variant.
    pub fn new(config: ServiceConfig) -> Self {
        Self::try_new(config).expect("invalid service config")
    }

    /// Creates the service, validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Model`] when the AMF configuration is invalid.
    pub fn try_new(config: ServiceConfig) -> Result<Self, ServiceError> {
        let (input_tx, input_rx) = unbounded();
        Ok(Self {
            trainer: Mutex::new(AmfTrainer::new(config.amf)?),
            users: Mutex::new(Registry::new()),
            services: Mutex::new(Registry::new()),
            database: QosDatabase::new(config.history_cap),
            config,
            input_tx,
            input_rx,
        })
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The QoS database (read-side access for monitoring).
    pub fn database(&self) -> &QosDatabase {
        &self.database
    }

    /// A sender for the input-handling stream; cloneable and usable from any
    /// thread. Queued records are applied by
    /// [`QosPredictionService::drain_inputs`].
    pub fn input_channel(&self) -> Sender<QosRecord> {
        self.input_tx.clone()
    }

    /// Applies all queued channel records — through the sharded engine when
    /// `config.shards > 1`. Returns how many were processed.
    pub fn drain_inputs(&self) -> usize {
        let mut batch = Vec::new();
        while let Ok(record) = self.input_rx.try_recv() {
            batch.push(record);
        }
        self.submit_batch(batch)
    }

    /// Input handling + online updating for a whole batch of records.
    ///
    /// Identities are registered and the records logged exactly like
    /// [`QosPredictionService::submit`]; the model updates are applied by a
    /// [`amf_core::ShardedEngine`] with `config.shards` workers (sequentially
    /// when `shards <= 1`). Per-entity stream order is preserved, so the
    /// resulting model is identical to one-by-one submission. Returns the
    /// number of records applied.
    pub fn submit_batch(&self, records: Vec<QosRecord>) -> usize {
        if records.is_empty() {
            return 0;
        }
        let mut samples = Vec::with_capacity(records.len());
        {
            let mut users = self.users.lock();
            let mut services = self.services.lock();
            for record in &records {
                let user = users.join(&record.user);
                let service = services.join(&record.service);
                self.database
                    .record(user, service, record.timestamp, record.value);
                samples.push((user, service, record.timestamp, record.value));
            }
        }
        let n = samples.len();
        let mut trainer = self.trainer.lock();
        if self.config.shards > 1 {
            trainer
                .feed_batch_sharded(
                    samples,
                    amf_core::EngineOptions::with_shards(self.config.shards),
                )
                .expect("shards >= 2 is a valid engine option")
        } else {
            for (user, service, timestamp, value) in samples {
                trainer.feed(user, service, timestamp, value);
            }
            n
        }
    }

    /// Input handling + online updating for one record: registers identities,
    /// stores the record, and applies one online model update.
    /// Returns the `(user, service)` dense ids.
    pub fn submit(&self, record: QosRecord) -> (usize, usize) {
        let user = self.users.lock().join(&record.user);
        let service = self.services.lock().join(&record.service);
        self.database
            .record(user, service, record.timestamp, record.value);
        self.trainer
            .lock()
            .feed(user, service, record.timestamp, record.value);
        (user, service)
    }

    /// Idle-time refinement: replays live samples until convergence
    /// (Algorithm 1's "randomly pick an existing data sample" branch).
    pub fn idle(&self) -> amf_core::TrainReport {
        self.trainer
            .lock()
            .replay_until_converged(self.config.replay)
    }

    /// Advances the service's notion of time (drives sample expiry when no
    /// new data arrives).
    pub fn advance_clock(&self, now: u64) {
        self.trainer.lock().advance_clock(now);
    }

    /// Predicts the QoS between a user and a (candidate) service.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownEntity`] when either identity was never
    /// registered.
    pub fn predict(&self, user: &str, service: &str) -> Result<f64, ServiceError> {
        let user_id =
            self.users
                .lock()
                .resolve(user)
                .ok_or_else(|| ServiceError::UnknownEntity {
                    kind: "user",
                    id: user.to_string(),
                })?;
        let service_id =
            self.services
                .lock()
                .resolve(service)
                .ok_or_else(|| ServiceError::UnknownEntity {
                    kind: "service",
                    id: service.to_string(),
                })?;
        self.predict_ids(user_id, service_id)
            .ok_or_else(|| ServiceError::UnknownEntity {
                kind: "service",
                id: service.to_string(),
            })
    }

    /// Prediction by dense ids (the hot path for the middleware).
    pub fn predict_ids(&self, user: usize, service: usize) -> Option<f64> {
        self.trainer.lock().model().predict(user, service)
    }

    /// Registers a user id without an observation (explicit join).
    pub fn join_user(&self, name: &str) -> usize {
        let id = self.users.lock().join(name);
        self.trainer.lock().model_mut().ensure_user(id);
        id
    }

    /// Registers a service id without an observation (service discovery).
    pub fn join_service(&self, name: &str) -> usize {
        let id = self.services.lock().join(name);
        self.trainer.lock().model_mut().ensure_service(id);
        id
    }

    /// Marks a user inactive.
    pub fn leave_user(&self, name: &str) -> Option<usize> {
        self.users.lock().leave(name)
    }

    /// Marks a service inactive (e.g. discontinued by its provider).
    pub fn leave_service(&self, name: &str) -> Option<usize> {
        self.services.lock().leave(name)
    }

    /// Snapshot of `(registered_users, registered_services, model_updates)`.
    pub fn stats(&self) -> (usize, usize, u64) {
        let trainer = self.trainer.lock();
        (
            self.users.lock().len(),
            self.services.lock().len(),
            trainer.model().update_count(),
        )
    }
}

impl std::fmt::Debug for QosPredictionService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (users, services, updates) = self.stats();
        f.debug_struct("QosPredictionService")
            .field("users", &users)
            .field("services", &services)
            .field("updates", &updates)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(user: &str, service: &str, t: u64, v: f64) -> QosRecord {
        QosRecord {
            user: user.into(),
            service: service.into(),
            timestamp: t,
            value: v,
        }
    }

    #[test]
    fn submit_registers_and_updates() {
        let svc = QosPredictionService::new(ServiceConfig::default());
        let (u, s) = svc.submit(record("alice", "ws-1", 0, 1.2));
        assert_eq!((u, s), (0, 0));
        let (u2, s2) = svc.submit(record("bob", "ws-1", 1, 0.8));
        assert_eq!((u2, s2), (1, 0));
        let (users, services, updates) = svc.stats();
        assert_eq!(users, 2);
        assert_eq!(services, 1);
        assert_eq!(updates, 2);
        assert_eq!(svc.database().observation_count(), 2);
    }

    #[test]
    fn predict_by_name_and_id() {
        let svc = QosPredictionService::new(ServiceConfig::default());
        for k in 0..50 {
            svc.submit(record("alice", "ws-1", k, 1.5));
        }
        let by_name = svc.predict("alice", "ws-1").unwrap();
        let by_id = svc.predict_ids(0, 0).unwrap();
        assert_eq!(by_name, by_id);
        assert!(by_name > 0.0);
    }

    #[test]
    fn predict_unknown_entities() {
        let svc = QosPredictionService::new(ServiceConfig::default());
        svc.submit(record("alice", "ws-1", 0, 1.0));
        assert!(matches!(
            svc.predict("ghost", "ws-1"),
            Err(ServiceError::UnknownEntity { kind: "user", .. })
        ));
        assert!(matches!(
            svc.predict("alice", "ghost"),
            Err(ServiceError::UnknownEntity {
                kind: "service",
                ..
            })
        ));
    }

    #[test]
    fn channel_ingestion() {
        let svc = QosPredictionService::new(ServiceConfig::default());
        let tx = svc.input_channel();
        tx.send(record("u1", "s1", 0, 1.0)).unwrap();
        tx.send(record("u2", "s1", 1, 2.0)).unwrap();
        assert_eq!(svc.drain_inputs(), 2);
        assert_eq!(svc.stats().2, 2);
        assert_eq!(svc.drain_inputs(), 0);
    }

    #[test]
    fn channel_works_across_threads() {
        use std::sync::Arc;
        let svc = Arc::new(QosPredictionService::new(ServiceConfig::default()));
        let tx = svc.input_channel();
        let producer = std::thread::spawn(move || {
            for k in 0..20 {
                tx.send(record(&format!("u{}", k % 3), "s", k, 1.0))
                    .unwrap();
            }
        });
        producer.join().unwrap();
        assert_eq!(svc.drain_inputs(), 20);
    }

    #[test]
    fn sharded_batch_ingestion_matches_sequential() {
        let records: Vec<QosRecord> = (0..120u64)
            .map(|k| {
                record(
                    &format!("u{}", k % 6),
                    &format!("s{}", k % 8),
                    k,
                    0.4 + (k % 5) as f64 * 0.7,
                )
            })
            .collect();
        let seq = QosPredictionService::new(ServiceConfig::default());
        for r in records.clone() {
            seq.submit(r);
        }
        let sharded = QosPredictionService::new(ServiceConfig {
            shards: 4,
            ..Default::default()
        });
        assert_eq!(sharded.submit_batch(records), 120);
        assert_eq!(seq.stats(), sharded.stats());
        for u in 0..6 {
            for s in 0..8 {
                assert_eq!(seq.predict_ids(u, s), sharded.predict_ids(u, s));
            }
        }
    }

    #[test]
    fn sharded_channel_drain() {
        let svc = QosPredictionService::new(ServiceConfig {
            shards: 2,
            ..Default::default()
        });
        let tx = svc.input_channel();
        for k in 0..40u64 {
            tx.send(record(&format!("u{}", k % 4), "s", k, 1.0)).unwrap();
        }
        assert_eq!(svc.drain_inputs(), 40);
        assert_eq!(svc.stats().2, 40);
        assert_eq!(svc.database().observation_count(), 40);
    }

    #[test]
    fn idle_replays_and_improves() {
        let svc = QosPredictionService::new(ServiceConfig {
            replay: amf_core::trainer::ReplayOptions {
                max_iterations: 20_000,
                min_iterations: 2_000,
                window: 200,
                tolerance: 1e-3,
                patience: 3,
            },
            ..Default::default()
        });
        for (u, s, v) in [
            ("a", "x", 1.0),
            ("a", "y", 2.0),
            ("b", "x", 2.0),
            ("b", "y", 4.0),
        ] {
            svc.submit(record(u, s, 0, v));
        }
        let report = svc.idle();
        assert!(report.iterations > 0);
        let p = svc.predict("a", "x").unwrap();
        assert!((p - 1.0).abs() < 1.0, "prediction {p}");
    }

    #[test]
    fn join_and_leave() {
        let svc = QosPredictionService::new(ServiceConfig::default());
        let u = svc.join_user("newcomer");
        assert_eq!(u, 0);
        let s = svc.join_service("new-service");
        assert_eq!(s, 0);
        // Joined entities are predictable immediately (random factors).
        assert!(svc.predict("newcomer", "new-service").is_ok());
        assert_eq!(svc.leave_user("newcomer"), Some(0));
        assert_eq!(svc.leave_service("ghost"), None);
    }

    #[test]
    fn debug_format_mentions_counts() {
        let svc = QosPredictionService::new(ServiceConfig::default());
        svc.submit(record("a", "b", 0, 1.0));
        let text = format!("{svc:?}");
        assert!(text.contains("users"));
    }
}
