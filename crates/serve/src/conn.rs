//! Per-connection state machine for the readiness-loop serving plane.
//!
//! One [`ConnState`] tracks everything the poller knows about a client
//! socket: the accumulated read buffer, how many requests have been parsed
//! off it (each gets a per-connection **sequence number**), the responses
//! completed so far, and the write queue. The invariants that make
//! HTTP/1.1 keep-alive + pipelining correct live here:
//!
//! * **In-order responses.** Requests may complete on different workers in
//!   any order; responses are buffered in [`ConnState::complete`] and only
//!   flushed to the socket in sequence-number order.
//! * **Late binding of `Connection:`.** Response bytes are rendered at
//!   flush time, not completion time, so the keep-alive/close decision
//!   sees the *current* drain flag, the per-connection served count vs
//!   `max_requests_per_conn`, and any read-side failure — an in-flight
//!   response during a drain always goes out `Connection: close`.
//! * **Sticky errors.** A malformed request poisons only the framing of
//!   its own connection: the error response is sequenced after the good
//!   responses before it, reads stop, and the connection closes after the
//!   flush — the worker pool never sees the bad bytes.
//! * **Bounded buffering.** Reads pause (TCP backpressure, not rejects)
//!   while a connection has `max_inflight_per_conn` requests outstanding
//!   or its read buffer is at the high-water mark, so one greedy pipelined
//!   peer cannot monopolize queue slots or memory.

use crate::http::{self, HttpError, Parsed, Request};
use qos_obs::{StageClock, TraceRecord};
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// Pause reads once this much unparsed input is buffered on one
/// connection (≈ 8 pipelined max-size heads; bodies count too).
pub const READ_HIGH_WATER: usize = 256 * 1024;

/// Saturating `later - earlier` in nanoseconds (0 when out of order).
fn duration_ns(earlier: Instant, later: Instant) -> u64 {
    u64::try_from(later.saturating_duration_since(earlier).as_nanos()).unwrap_or(u64::MAX)
}

/// What a finished response should be counted as by the plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RespKind {
    /// 200 family.
    Ok,
    /// Clean 4xx protocol error.
    ClientError,
    /// 503 fast-reject: pending queue full.
    RejOverload,
    /// 503 deadline reject (on arrival or mid-batch).
    RejDeadline,
    /// 503 rejected because the plane is draining.
    RejDraining,
    /// 500 from a caught worker panic.
    Panic,
}

impl RespKind {
    /// Classifies a routed status (worker side; the inline paths pick
    /// their kind explicitly).
    pub fn from_status(status: u16) -> Self {
        match status {
            200..=299 => RespKind::Ok,
            503 => RespKind::RejDeadline,
            500 => RespKind::Panic,
            _ => RespKind::ClientError,
        }
    }
}

/// A finished response waiting for its in-order flush slot.
#[derive(Debug)]
pub struct CompletedResponse {
    /// HTTP status.
    pub status: u16,
    /// Content-Type header value.
    pub content_type: String,
    /// Response body.
    pub body: String,
    /// Whether the *request* asked for keep-alive (the flush decision may
    /// still override to close).
    pub keep_alive_wanted: bool,
    /// Counting bucket.
    pub kind: RespKind,
    /// Trace context, when the request got far enough to be stamped. The
    /// flush stage and final status are filled in at render time.
    pub trace: Option<TraceRecord>,
    /// When the response was parked via [`ConnState::complete`] (start of
    /// the flush stage).
    parked_at: Option<Instant>,
}

impl CompletedResponse {
    /// An untraced response (inline protocol errors, tests).
    pub fn new(
        status: u16,
        content_type: impl Into<String>,
        body: impl Into<String>,
        keep_alive_wanted: bool,
        kind: RespKind,
    ) -> Self {
        Self {
            status,
            content_type: content_type.into(),
            body: body.into(),
            keep_alive_wanted,
            kind,
            trace: None,
            parked_at: None,
        }
    }

    /// Attaches the request's trace context; the response will carry
    /// `x-amf-trace-id` / `x-amf-stage-us` headers when flushed.
    pub fn with_trace(mut self, trace: TraceRecord) -> Self {
        self.trace = Some(trace);
        self
    }
}

/// Read-side timing of one parsed request, measured by the connection
/// state machine and carried into the request's [`StageClock`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ReqTiming {
    /// Connection accept → first byte of this request (non-zero only for a
    /// connection's first request; later requests ride an open socket).
    pub accept_ns: u64,
    /// First buffered byte of this request → parse completion (spans a
    /// slow-trickled arrival).
    pub parse_ns: u64,
}

/// Events produced by feeding freshly-read bytes through the parser.
#[derive(Debug)]
pub enum ReadEvent {
    /// A complete request, with its per-connection sequence number and
    /// read-side stage timing.
    Request(Box<Request>, u64, ReqTiming),
    /// A framing/protocol error; a response slot `seq` was reserved for
    /// the error answer and the connection is now closing.
    Error(HttpError, u64),
}

/// Transport-level outcome of a read pass.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Connection remains usable (events may still have been produced).
    Continue,
    /// Hard transport error: the plane should drop the connection now.
    HardClose,
}

/// Why one parse pass stopped (drives the EOF disposition).
enum ParseHalt {
    /// Buffer fully consumed.
    Drained,
    /// A request is mid-arrival (head or body incomplete).
    Partial,
    /// In-flight quota or request budget paused parsing with complete
    /// requests still buffered.
    Quota,
    /// A framing error stopped the connection.
    Errored,
}

/// Per-connection state owned by the poller thread (see module docs).
#[derive(Debug)]
pub struct ConnState {
    /// The non-blocking client socket.
    pub stream: TcpStream,
    /// Generation tag carried by jobs/completions so a recycled slot never
    /// receives a stale response (ABA guard).
    pub gen: u64,
    /// Peer address (quota key and trace label).
    pub peer: SocketAddr,
    /// When the connection was accepted.
    pub opened: Instant,
    /// Last moment bytes moved in either direction.
    pub last_activity: Instant,
    /// Responses fully flushed on this connection.
    pub served: u64,
    /// No further reads (EOF, error, drain, or close header decided).
    pub reads_stopped: bool,
    /// Close the socket once every pending response has been written.
    pub close_after_flush: bool,
    read_buf: Vec<u8>,
    write_bufs: VecDeque<Vec<u8>>,
    write_offset: usize,
    completed: BTreeMap<u64, CompletedResponse>,
    next_seq: u64,
    next_flush: u64,
    /// Set while an incomplete request head/body sits in `read_buf`
    /// (slowloris guard: the plane 408s it past the io timeout).
    pub partial_since: Option<Instant>,
    eof_seen: bool,
    /// When the first byte of the request currently at the front of
    /// `read_buf` arrived (drives the parse-stage timing).
    read_started: Option<Instant>,
}

impl ConnState {
    /// Wraps an accepted, non-blocking socket.
    pub fn new(stream: TcpStream, peer: SocketAddr, gen: u64, now: Instant) -> Self {
        Self {
            stream,
            gen,
            peer,
            opened: now,
            last_activity: now,
            served: 0,
            reads_stopped: false,
            close_after_flush: false,
            read_buf: Vec::new(),
            write_bufs: VecDeque::new(),
            write_offset: 0,
            completed: BTreeMap::new(),
            next_seq: 0,
            next_flush: 0,
            partial_since: None,
            eof_seen: false,
            read_started: None,
        }
    }

    /// Requests parsed whose responses have not yet been flushed.
    pub fn outstanding(&self) -> u64 {
        self.next_seq - self.next_flush
    }

    /// Whether the poller should keep POLLIN armed. After EOF the socket
    /// stays permanently "readable", so interest is dropped and any
    /// remaining buffered pipeline is drained via
    /// [`ConnState::has_buffered`] passes instead. A pending partial
    /// request overrides the high-water mark: its remaining bytes must be
    /// allowed in or it could never complete (the parser's 431/413 caps
    /// bound how much that admits).
    pub fn wants_read(&self, max_inflight: u64, budget_left: u64) -> bool {
        !self.reads_stopped
            && !self.eof_seen
            && self.outstanding() < max_inflight
            && budget_left > 0
            && (self.read_buf.len() < READ_HIGH_WATER || self.partial_since.is_some())
    }

    /// Whether buffered bytes are worth another parse pass right now.
    pub fn wants_parse(&self, max_inflight: u64, budget_left: u64) -> bool {
        !self.reads_stopped
            && self.has_buffered()
            && self.outstanding() < max_inflight
            && budget_left > 0
    }

    /// Whether the poller should keep POLLOUT armed.
    pub fn wants_write(&self) -> bool {
        !self.write_bufs.is_empty()
    }

    /// Whether the connection has said everything it ever will and can be
    /// dropped.
    pub fn done(&self) -> bool {
        self.close_after_flush
            && self.outstanding() == 0
            && self.write_bufs.is_empty()
            && self.completed.is_empty()
    }

    /// Reads whatever the socket has, parses up to `budget_left` further
    /// requests (the caller computes it from the per-conn quota and
    /// `max_requests_per_conn`), and reports parsed requests / framing
    /// errors plus whether the transport survived.
    pub fn read_and_parse(
        &mut self,
        max_body_bytes: usize,
        max_inflight: u64,
        budget_left: u64,
        now: Instant,
    ) -> (Vec<ReadEvent>, ReadOutcome) {
        let mut events = Vec::new();
        if self.reads_stopped {
            return (events, ReadOutcome::Continue);
        }
        if !self.fill_read_buf(READ_HIGH_WATER, now) {
            return (events, ReadOutcome::HardClose);
        }
        let mut remaining = budget_left;
        let parse = |conn: &mut Self, remaining: &mut u64, events: &mut Vec<ReadEvent>| {
            let seq_before = conn.next_seq;
            let halt = conn.parse_available(max_body_bytes, max_inflight, *remaining, now, events);
            *remaining = remaining.saturating_sub(conn.next_seq - seq_before);
            halt
        };
        let mut halt = parse(self, &mut remaining, &mut events);
        // One request may legally outgrow the pipeline high-water (bodies
        // run up to max_body_bytes): keep reading for the partial request,
        // bounded by the single-request ceiling the parser itself enforces
        // (431 past the head cap, 413 past the body cap).
        let single_request_cap = (http::MAX_HEAD_BYTES + max_body_bytes).max(READ_HIGH_WATER);
        while matches!(halt, ParseHalt::Partial)
            && !self.eof_seen
            && self.read_buf.len() >= READ_HIGH_WATER
            && self.read_buf.len() < single_request_cap
        {
            let before = self.read_buf.len();
            if !self.fill_read_buf(single_request_cap, now) {
                return (events, ReadOutcome::HardClose);
            }
            if self.read_buf.len() == before {
                break; // would-block: `wants_read`'s partial override re-arms POLLIN
            }
            halt = parse(self, &mut remaining, &mut events);
        }

        if self.eof_seen && !self.reads_stopped {
            match halt {
                // Complete pipelined requests are still buffered behind the
                // in-flight quota: keep parsing them on later passes; the
                // EOF only means no further bytes will arrive.
                ParseHalt::Quota => {}
                ParseHalt::Drained => {
                    self.reads_stopped = true;
                    self.close_after_flush = true;
                }
                ParseHalt::Partial => {
                    // The peer closed mid-request: the leftover bytes can
                    // never frame, so answer 400 like the blocking plane
                    // did.
                    self.reads_stopped = true;
                    self.close_after_flush = true;
                    let seq = self.alloc_seq();
                    events.push(ReadEvent::Error(
                        HttpError::BadRequest("truncated request (early close)"),
                        seq,
                    ));
                    self.read_buf.clear();
                    self.partial_since = None;
                }
                ParseHalt::Errored => {}
            }
        }
        (events, ReadOutcome::Continue)
    }

    /// Reads until would-block, EOF, or `cap` buffered bytes. Returns
    /// `false` on a hard transport error.
    fn fill_read_buf(&mut self, cap: usize, now: Instant) -> bool {
        let mut chunk = [0u8; 16 * 1024];
        while self.read_buf.len() < cap {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof_seen = true;
                    return true;
                }
                Ok(n) => {
                    if self.read_buf.is_empty() {
                        self.read_started = Some(now);
                    }
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    self.last_activity = now;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        true
    }

    fn parse_available(
        &mut self,
        max_body_bytes: usize,
        max_inflight: u64,
        mut budget_left: u64,
        now: Instant,
        events: &mut Vec<ReadEvent>,
    ) -> ParseHalt {
        loop {
            if self.reads_stopped {
                return ParseHalt::Errored;
            }
            if self.read_buf.is_empty() {
                return ParseHalt::Drained;
            }
            if self.outstanding() >= max_inflight || budget_left == 0 {
                return ParseHalt::Quota;
            }
            match http::parse_request(&self.read_buf, max_body_bytes) {
                Ok(Parsed::Complete { request, consumed }) => {
                    let started = self.read_started.unwrap_or(now);
                    let timing = ReqTiming {
                        accept_ns: if self.next_seq == 0 {
                            duration_ns(self.opened, started)
                        } else {
                            0
                        },
                        parse_ns: duration_ns(started, now),
                    };
                    self.read_buf.drain(..consumed);
                    self.partial_since = None;
                    // A pipelined successor already buffered starts its
                    // parse clock now; otherwise wait for the next byte.
                    self.read_started = if self.read_buf.is_empty() {
                        None
                    } else {
                        Some(now)
                    };
                    let seq = self.alloc_seq();
                    budget_left -= 1;
                    events.push(ReadEvent::Request(Box::new(request), seq, timing));
                }
                Ok(Parsed::Incomplete) => {
                    if self.partial_since.is_none() {
                        self.partial_since = Some(now);
                    }
                    return ParseHalt::Partial;
                }
                Err(e) => {
                    // Framing is unrecoverable: reserve a response slot for
                    // the error, drop the poisoned bytes, stop reading.
                    let seq = self.alloc_seq();
                    self.reads_stopped = true;
                    self.close_after_flush = true;
                    self.read_buf.clear();
                    self.partial_since = None;
                    events.push(ReadEvent::Error(e, seq));
                    return ParseHalt::Errored;
                }
            }
        }
    }

    fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Whether unparsed bytes are sitting in the read buffer (a paused
    /// pipeline or a partial request) — the poller re-runs the parser on
    /// these when quota frees, without waiting for socket readability.
    pub fn has_buffered(&self) -> bool {
        !self.read_buf.is_empty()
    }

    /// Gives up on a partial request that outlived the read window
    /// (slowloris guard): reserves a response slot for the `408`, drops
    /// the stale bytes, and stops reads. Returns the reserved slot.
    pub fn fail_partial(&mut self) -> u64 {
        let seq = self.alloc_seq();
        self.reads_stopped = true;
        self.close_after_flush = true;
        self.read_buf.clear();
        self.partial_since = None;
        seq
    }

    /// Parks a finished response until its in-order flush slot comes up
    /// (starts the flush-stage clock).
    pub fn complete(&mut self, seq: u64, mut response: CompletedResponse) {
        response.parked_at = Some(Instant::now());
        self.completed.insert(seq, response);
    }

    /// Moves every response whose turn has come into the write queue,
    /// rendering headers with the keep-alive decision made *now* (drain
    /// state, request budget, read health). Traced responses pick up their
    /// flush-stage time and final status here and carry the
    /// `x-amf-trace-id` / `x-amf-stage-us` headers. Returns the
    /// (status, kind, trace) of each rendered response for the plane's
    /// counters and flight recorder.
    pub fn flush_ready(
        &mut self,
        draining: bool,
        max_requests_per_conn: u64,
    ) -> Vec<(u16, RespKind, Option<TraceRecord>)> {
        let mut rendered = Vec::new();
        while let Some(response) = self.completed.remove(&self.next_flush) {
            self.next_flush += 1;
            self.served += 1;
            let keep_alive = response.keep_alive_wanted
                && !draining
                && !self.close_after_flush
                && !self.reads_stopped
                && self.served < max_requests_per_conn;
            if !keep_alive {
                self.close_after_flush = true;
                self.reads_stopped = true;
            }
            let mut trace = response.trace;
            if let Some(record) = trace.as_mut() {
                if let Some(parked) = response.parked_at {
                    let flush_ns = u64::try_from(parked.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    record.stages.set(StageClock::FLUSH, flush_ns);
                }
                record.status = response.status;
            }
            let bytes = match trace.as_ref().filter(|t| !t.trace_id.is_empty()) {
                Some(record) => http::render_response_with(
                    response.status,
                    &response.content_type,
                    &response.body,
                    keep_alive,
                    &[
                        ("x-amf-trace-id", record.trace_id.as_str()),
                        ("x-amf-stage-us", record.stages.header_us().as_str()),
                    ],
                ),
                None => http::render_response(
                    response.status,
                    &response.content_type,
                    &response.body,
                    keep_alive,
                ),
            };
            self.write_bufs.push_back(bytes);
            rendered.push((response.status, response.kind, trace));
        }
        rendered
    }

    /// Writes as much of the queued responses as the socket accepts.
    ///
    /// # Errors
    ///
    /// Returns the transport failure (the plane drops the connection).
    pub fn write_some(&mut self, now: Instant) -> std::io::Result<()> {
        while let Some(front) = self.write_bufs.front() {
            match self.stream.write(&front[self.write_offset..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "peer stopped accepting bytes",
                    ))
                }
                Ok(n) => {
                    self.write_offset += n;
                    self.last_activity = now;
                    if self.write_offset >= front.len() {
                        self.write_bufs.pop_front();
                        self.write_offset = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Duration;

    /// Builds a connected (client, server-side ConnState) pair.
    fn pair() -> (TcpStream, ConnState) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, peer) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (client, ConnState::new(server, peer, 1, Instant::now()))
    }

    fn send(client: &mut TcpStream, bytes: &[u8]) {
        client.write_all(bytes).unwrap();
        client.flush().unwrap();
        // Give loopback a moment to deliver before the nonblocking read.
        std::thread::sleep(Duration::from_millis(20));
    }

    #[test]
    fn pipelined_requests_get_sequential_seqs() {
        let (mut client, mut conn) = pair();
        send(
            &mut client,
            b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n",
        );
        let (events, outcome) = conn.read_and_parse(1024, 32, 1024, Instant::now());
        assert_eq!(outcome, ReadOutcome::Continue);
        let seqs: Vec<u64> = events
            .iter()
            .map(|e| match e {
                ReadEvent::Request(_, seq, _) => *seq,
                ReadEvent::Error(e, _) => panic!("unexpected error {e:?}"),
            })
            .collect();
        assert_eq!(seqs, vec![0, 1]);
        assert_eq!(conn.outstanding(), 2);
    }

    #[test]
    fn out_of_order_completions_flush_in_order() {
        let (mut client, mut conn) = pair();
        send(
            &mut client,
            b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n",
        );
        let (events, _) = conn.read_and_parse(1024, 32, 1024, Instant::now());
        assert_eq!(events.len(), 2);

        let make = |body: &str| CompletedResponse::new(200, "text/plain", body, true, RespKind::Ok);
        // Second request finishes first; nothing may flush yet.
        conn.complete(1, make("second"));
        assert!(conn.flush_ready(false, 1024).is_empty());
        conn.complete(0, make("first"));
        let rendered = conn.flush_ready(false, 1024);
        assert_eq!(rendered.len(), 2);
        conn.write_some(Instant::now()).unwrap();

        client
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut out = Vec::new();
        let mut chunk = [0u8; 4096];
        while out.len() < 40 {
            let n = client.read(&mut chunk).unwrap();
            if n == 0 {
                break;
            }
            out.extend_from_slice(&chunk[..n]);
        }
        let text = String::from_utf8(out).unwrap();
        let first_at = text.find("first").expect("first response present");
        let second_at = text.find("second").expect("second response present");
        assert!(first_at < second_at, "responses flushed in request order");
    }

    #[test]
    fn max_requests_budget_forces_close_header() {
        let (mut client, mut conn) = pair();
        send(&mut client, b"GET / HTTP/1.1\r\n\r\n");
        let (events, _) = conn.read_and_parse(1024, 32, 1024, Instant::now());
        assert_eq!(events.len(), 1);
        conn.complete(
            0,
            CompletedResponse::new(200, "text/plain", "x", true, RespKind::Ok),
        );
        // Budget of 1 request per connection: response must close.
        conn.flush_ready(false, 1);
        assert!(conn.close_after_flush);
        conn.write_some(Instant::now()).unwrap();
        assert!(conn.done());
    }

    #[test]
    fn traced_response_carries_trace_headers_at_flush() {
        let (mut client, mut conn) = pair();
        send(&mut client, b"GET /healthz HTTP/1.1\r\n\r\n");
        let (events, _) = conn.read_and_parse(1024, 32, 1024, Instant::now());
        assert_eq!(events.len(), 1);
        let mut stages = StageClock::new();
        stages.set(StageClock::EXECUTE, 5_000);
        let trace = TraceRecord {
            trace_id: "req-7".into(),
            endpoint: "/healthz",
            status: 0,
            stages,
            deadline_slack_us: 100,
        };
        conn.complete(
            0,
            CompletedResponse::new(200, "text/plain", "ok", true, RespKind::Ok).with_trace(trace),
        );
        let rendered = conn.flush_ready(false, 1024);
        assert_eq!(rendered.len(), 1);
        let record = rendered[0].2.as_ref().expect("trace record returned");
        assert_eq!(record.status, 200, "status bound at flush");
        conn.write_some(Instant::now()).unwrap();

        client
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut out = Vec::new();
        let mut chunk = [0u8; 4096];
        while !out.windows(4).any(|w| w == b"\r\n\r\n") {
            let n = client.read(&mut chunk).unwrap();
            if n == 0 {
                break;
            }
            out.extend_from_slice(&chunk[..n]);
        }
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("x-amf-trace-id: req-7\r\n"), "{text}");
        assert!(text.contains("x-amf-stage-us: "), "{text}");
        assert!(text.contains("execute=5"), "{text}");
    }

    #[test]
    fn malformed_bytes_reserve_an_error_slot_and_stop_reads() {
        let (mut client, mut conn) = pair();
        send(&mut client, b"NOT HTTP AT ALL\r\n\r\n");
        let (events, outcome) = conn.read_and_parse(1024, 32, 1024, Instant::now());
        assert_eq!(outcome, ReadOutcome::Continue);
        assert!(matches!(events[0], ReadEvent::Error(_, 0)));
        assert!(conn.reads_stopped);
        assert!(conn.close_after_flush);
        // Further bytes are ignored entirely.
        send(&mut client, b"GET / HTTP/1.1\r\n\r\n");
        let (events, _) = conn.read_and_parse(1024, 32, 1024, Instant::now());
        assert!(events.is_empty());
    }

    #[test]
    fn eof_with_partial_request_is_a_truncation_error() {
        let (mut client, mut conn) = pair();
        send(&mut client, b"POST /v1/predict HTTP/1.1\r\nContent-Le");
        client.shutdown(std::net::Shutdown::Write).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let (events, _) = conn.read_and_parse(1024, 32, 1024, Instant::now());
        assert!(
            matches!(
                events.last(),
                Some(ReadEvent::Error(HttpError::BadRequest(_), _))
            ),
            "{events:?}"
        );
    }

    #[test]
    fn body_larger_than_high_water_still_completes() {
        let (client, mut conn) = pair();
        let body = vec![b'x'; READ_HIGH_WATER + 64 * 1024];
        let mut raw = format!(
            "POST /v1/observe HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        raw.extend_from_slice(&body);
        // Write from a thread: loopback buffers are smaller than the body,
        // so the writer blocks until the server side keeps reading.
        let writer = std::thread::spawn(move || {
            let mut client = client;
            client.write_all(&raw).unwrap();
            client.flush().unwrap();
        });
        let cap = 2 * 1024 * 1024;
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut parsed = Vec::new();
        while parsed.is_empty() && Instant::now() < deadline {
            let (events, outcome) = conn.read_and_parse(cap, 32, 1024, Instant::now());
            assert_eq!(outcome, ReadOutcome::Continue);
            parsed = events;
            std::thread::sleep(Duration::from_millis(5));
        }
        writer.join().unwrap();
        match parsed.first() {
            Some(ReadEvent::Request(request, 0, _)) => {
                assert_eq!(request.body.len(), body.len());
            }
            other => panic!("expected the oversized request to parse: {other:?}"),
        }
    }

    #[test]
    fn quota_pauses_parsing_without_dropping_bytes() {
        let (mut client, mut conn) = pair();
        let mut raw = Vec::new();
        for _ in 0..4 {
            raw.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
        }
        send(&mut client, &raw);
        // Quota 2: only two requests parse; the rest stay buffered.
        let (events, _) = conn.read_and_parse(1024, 2, 1024, Instant::now());
        assert_eq!(events.len(), 2);
        assert_eq!(conn.outstanding(), 2);
        assert!(!conn.wants_read(2, 1024), "reads paused at quota");
        // Flushing responses frees quota; parsing resumes on the buffer.
        for seq in 0..2 {
            conn.complete(
                seq,
                CompletedResponse::new(200, "text/plain", "", true, RespKind::Ok),
            );
        }
        conn.flush_ready(false, 1024);
        let (events, _) = conn.read_and_parse(1024, 2, 1024, Instant::now());
        assert_eq!(events.len(), 2, "buffered pipeline resumes");
    }
}
