//! Closed/open-loop load generator with deterministic fault injection.
//!
//! The harness measures the serving plane the way the paper's runtime
//! adaptation loop would experience it: a mixed `observe`/`predict`/`rank`
//! workload, per-request timeouts, and a seeded [`FaultPlan`] deciding —
//! per logical request — whether the network misbehaves
//! (conn-reset / slow-read / black-hole, see [`crate::client`]).
//!
//! Two arrival models:
//!
//! * **closed loop** — each worker issues its next request as soon as the
//!   previous one finishes. Driven at enough concurrency this saturates
//!   the plane, so the measured throughput of *successful* answers is the
//!   max-sustainable-QPS estimate reported in `achieved_qps`.
//! * **open loop** — workers pace request *starts* on a fixed schedule
//!   (`offered_qps`), regardless of completions, which is what exposes
//!   queue-wait deadline rejections: arrivals do not slow down just
//!   because the server is struggling.
//!
//! Two transports (PR 8):
//!
//! * **per-conn** — one TCP connection per request (`Connection: close`),
//!   the PR 7 baseline that prices the handshake tax.
//! * **keep-alive** — each worker holds one persistent connection
//!   ([`crate::client::KeepAliveClient`]) and may **pipeline** up to
//!   `pipeline` requests per write; connection-reuse accounting
//!   (`connects`, `conn_reuses`, `requests_per_conn`) lands in the
//!   report. Pipelined batches record the batch's end-to-end latency for
//!   each member (the wait of the last response — conservative).
//!
//! Every run ends with a `/healthz` probe and a `/snapshot.json` scrape so
//! the report carries the server's own verdict (`server_health`,
//! `server_worker_panics`) next to the client-side measurements, plus a
//! `/debug/exemplars` fetch that reconciles the server's tail exemplars
//! against the client's own clock by trace id. Reports serialize to the
//! `amf-bench-serve/v3` schema committed in `BENCH_SERVE.json` (v2 added
//! the transport/reuse fields and the paired per-conn vs keep-alive run
//! layout; v3 added the per-stage breakdown and the client/server
//! reconciliation block).

use crate::client::{ClientConfig, ClientError, HttpResponse, KeepAliveClient, ServeClient};
use amf_core::{FaultPlan, NetFault};
use qos_obs::Json;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Schema tag of a serialized [`LoadReport`].
pub const BENCH_SERVE_SCHEMA: &str = "amf-bench-serve/v3";

/// Arrival model for the generated load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// `concurrency` workers, back-to-back requests (saturating).
    Closed {
        /// Worker count.
        concurrency: usize,
    },
    /// Request starts paced at `qps` across `concurrency` workers.
    Open {
        /// Offered load, requests per second (> 0).
        qps: f64,
        /// Worker count bounding in-flight requests.
        concurrency: usize,
    },
}

impl LoadMode {
    fn concurrency(self) -> usize {
        match self {
            LoadMode::Closed { concurrency } | LoadMode::Open { concurrency, .. } => {
                concurrency.max(1)
            }
        }
    }
}

/// Load-harness configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Arrival model.
    pub mode: LoadMode,
    /// Total logical requests to issue.
    pub requests: u64,
    /// Seed for workload mix and fault decisions.
    pub seed: u64,
    /// Optional fault plan; only its network verbs matter here.
    pub fault_plan: Option<FaultPlan>,
    /// Per-request client behaviour (timeouts, retry budget, deadline).
    pub client: ClientConfig,
    /// Fraction of requests that are `observe` batches.
    pub observe_fraction: f64,
    /// Fraction of requests that are `rank` queries.
    pub rank_fraction: f64,
    /// Distinct synthetic users (`user-{n}`).
    pub users: usize,
    /// Distinct synthetic services (`svc-{n}`).
    pub services: usize,
    /// Records (lines) per observe/predict body.
    pub batch: usize,
    /// Use one persistent connection per worker ([`KeepAliveClient`])
    /// instead of one connection per request.
    pub keep_alive: bool,
    /// Pipeline depth for keep-alive workers (requests written back to
    /// back before reading responses). `<= 1` disables pipelining; only
    /// consecutive un-faulted requests are batched, so fault injection
    /// still lands on the exact seeded request ids.
    pub pipeline: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            mode: LoadMode::Closed { concurrency: 4 },
            requests: 200,
            seed: 42,
            fault_plan: None,
            client: ClientConfig::default(),
            observe_fraction: 0.4,
            rank_fraction: 0.1,
            users: 24,
            services: 32,
            batch: 8,
            keep_alive: false,
            pipeline: 1,
        }
    }
}

/// Outcome counters and latency digest of one load run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Run label (`"clean"`, `"faulted"`, ...).
    pub label: String,
    /// Canonical fault-plan spec, if any.
    pub fault_plan: Option<String>,
    /// `"closed"` or `"open"`.
    pub mode: &'static str,
    /// `"per-conn"` or `"keep-alive"`.
    pub transport: &'static str,
    /// Pipeline depth the workers ran with (1 = no pipelining).
    pub pipeline_depth: u64,
    /// TCP connections opened by the workers. Per-conn transport opens
    /// one per logical request by construction (retries not counted);
    /// keep-alive counts actual dials, including reconnects.
    pub connects: u64,
    /// Requests that reused an already-open connection (keep-alive only).
    pub conn_reuses: u64,
    /// Worker count.
    pub concurrency: usize,
    /// Offered QPS for open-loop runs.
    pub offered_qps: Option<f64>,
    /// Logical requests issued.
    pub requests: u64,
    /// 2xx responses.
    pub ok: u64,
    /// 4xx responses (protocol errors the server answered cleanly).
    pub http_4xx: u64,
    /// 503 responses surviving retry (load shed / deadline / draining).
    pub http_503: u64,
    /// Other 5xx responses.
    pub http_5xx_other: u64,
    /// Requests lost to transport failures (after retry, if permitted).
    pub transport_errors: u64,
    /// Injected conn-reset faults.
    pub faults_conn_reset: u64,
    /// Injected slow-read faults.
    pub faults_slow_read: u64,
    /// Injected black-hole faults.
    pub faults_blackhole: u64,
    /// Retry attempts consumed across all requests.
    pub retries: u64,
    /// Individual predictions returned.
    pub predictions: u64,
    /// Predictions answered below the `model` rung.
    pub degraded_answers: u64,
    /// Sorted end-to-end latencies (µs) of answered requests.
    pub latencies_us: Vec<u64>,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Successful answers per second over the wall clock.
    pub achieved_qps: f64,
    /// Server `/healthz` status after the run (`ok|degraded|draining`).
    pub server_health: String,
    /// Server-side `serve.worker_panics` counter after the run (must be 0).
    pub server_worker_panics: u64,
    /// Per-request (trace id, client-measured µs) for individually-timed
    /// answered requests (pipelined batch members are excluded — their
    /// client clock measures the batch, not the request).
    pub traced: Vec<(String, u64)>,
    /// Sum of server-reported stage µs across answered requests, indexed
    /// like [`qos_obs::STAGES`].
    pub stage_us_sum: [u64; 6],
    /// Responses whose `x-amf-stage-us` header parsed.
    pub stage_samples: u64,
    /// Client/server tail reconciliation (`None` when the exemplar fetch
    /// failed or the server predates tracing).
    pub reconciliation: Option<StageReconciliation>,
}

/// How the server's tail exemplars line up with the client's own clock.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageReconciliation {
    /// Exemplars the server exposed.
    pub exemplars: u64,
    /// Exemplars matched (by trace id) to a client-timed request.
    pub matched: u64,
    /// Median of per-request `server stage sum / client latency` over the
    /// matches (0 when nothing matched).
    pub median_ratio: f64,
}

impl StageReconciliation {
    /// Whether the median ratio is within `tolerance` of 1.0 (and at
    /// least one exemplar matched).
    pub fn within(&self, tolerance: f64) -> bool {
        self.matched > 0 && (self.median_ratio - 1.0).abs() <= tolerance
    }
}

impl LoadReport {
    /// Latency percentile in µs (`p` in `[0, 100]`); 0 when no samples.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        // Nearest-rank: ceil(p% · n) - 1, clamped.
        let n = self.latencies_us.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.latencies_us[rank.saturating_sub(1).min(n - 1)]
    }

    /// Fraction of requests that got no valid answer (transport failures
    /// plus 5xx), in `[0, 1]`.
    pub fn error_rate(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        let failed = self.transport_errors + self.http_503 + self.http_5xx_other;
        failed as f64 / self.requests as f64
    }

    /// Fraction of predictions answered below the `model` rung.
    pub fn degraded_rate(&self) -> f64 {
        if self.predictions == 0 {
            return 0.0;
        }
        self.degraded_answers as f64 / self.predictions as f64
    }

    /// Mean requests served per opened connection (1.0 for per-conn).
    pub fn requests_per_conn(&self) -> f64 {
        if self.connects == 0 {
            return 0.0;
        }
        self.requests as f64 / self.connects as f64
    }

    /// Serializes to the `amf-bench-serve/v3` report object.
    pub fn to_json(&self) -> Json {
        let mean_us = if self.latencies_us.is_empty() {
            0.0
        } else {
            self.latencies_us.iter().sum::<u64>() as f64 / self.latencies_us.len() as f64
        };
        let mut latency = Json::obj();
        latency
            .set("p50", Json::UInt(self.percentile_us(50.0)))
            .set("p95", Json::UInt(self.percentile_us(95.0)))
            .set("p99", Json::UInt(self.percentile_us(99.0)))
            .set(
                "max",
                Json::UInt(self.latencies_us.last().copied().unwrap_or(0)),
            )
            .set("mean", Json::Num(mean_us))
            .set("samples", Json::UInt(self.latencies_us.len() as u64));
        let mut faults = Json::obj();
        faults
            .set("conn-reset", Json::UInt(self.faults_conn_reset))
            .set("slow-read", Json::UInt(self.faults_slow_read))
            .set("blackhole", Json::UInt(self.faults_blackhole));
        let mut out = Json::obj();
        out.set("schema", Json::Str(BENCH_SERVE_SCHEMA.into()))
            .set("label", Json::Str(self.label.clone()))
            .set(
                "fault_plan",
                match &self.fault_plan {
                    Some(spec) => Json::Str(spec.clone()),
                    None => Json::Null,
                },
            )
            .set("mode", Json::Str(self.mode.into()))
            .set("transport", Json::Str(self.transport.into()))
            .set("pipeline_depth", Json::UInt(self.pipeline_depth))
            .set("connects", Json::UInt(self.connects))
            .set("conn_reuses", Json::UInt(self.conn_reuses))
            .set("requests_per_conn", Json::Num(self.requests_per_conn()))
            .set("concurrency", Json::UInt(self.concurrency as u64))
            .set(
                "offered_qps",
                match self.offered_qps {
                    Some(qps) => Json::Num(qps),
                    None => Json::Null,
                },
            )
            .set("requests", Json::UInt(self.requests))
            .set("ok", Json::UInt(self.ok))
            .set("http_4xx", Json::UInt(self.http_4xx))
            .set("http_503", Json::UInt(self.http_503))
            .set("http_5xx_other", Json::UInt(self.http_5xx_other))
            .set("transport_errors", Json::UInt(self.transport_errors))
            .set("faults_injected", faults)
            .set("retries", Json::UInt(self.retries))
            .set("predictions", Json::UInt(self.predictions))
            .set("degraded_answers", Json::UInt(self.degraded_answers))
            .set("degraded_rate", Json::Num(self.degraded_rate()))
            .set("error_rate", Json::Num(self.error_rate()))
            .set("latency_us", latency)
            .set("wall_ms", Json::UInt(self.wall.as_millis() as u64))
            .set("achieved_qps", Json::Num(self.achieved_qps))
            .set("server_health", Json::Str(self.server_health.clone()))
            .set(
                "server_worker_panics",
                Json::UInt(self.server_worker_panics),
            );
        let mut stage_mean = Json::obj();
        if self.stage_samples > 0 {
            for (name, sum) in qos_obs::STAGES.iter().zip(self.stage_us_sum) {
                stage_mean.set(name, Json::Num(sum as f64 / self.stage_samples as f64));
            }
        }
        out.set("stage_samples", Json::UInt(self.stage_samples))
            .set("stage_mean_us", stage_mean)
            .set(
                "reconciliation",
                match &self.reconciliation {
                    Some(r) => {
                        let mut obj = Json::obj();
                        obj.set("exemplars", Json::UInt(r.exemplars))
                            .set("matched", Json::UInt(r.matched))
                            .set("median_ratio", Json::Num(r.median_ratio))
                            .set("within_10pct", Json::Bool(r.within(0.10)));
                        obj
                    }
                    None => Json::Null,
                },
            );
        out
    }
}

/// Runs a configured load against a serving plane.
#[derive(Debug, Clone)]
pub struct LoadRunner {
    config: LoadConfig,
}

/// Per-thread tallies merged after the join.
#[derive(Default)]
struct ThreadTally {
    ok: u64,
    http_4xx: u64,
    http_503: u64,
    http_5xx_other: u64,
    transport_errors: u64,
    conn_reset: u64,
    slow_read: u64,
    blackhole: u64,
    retries: u64,
    predictions: u64,
    degraded: u64,
    connects: u64,
    reuses: u64,
    latencies_us: Vec<u64>,
    traced: Vec<(String, u64)>,
    stage_us_sum: [u64; 6],
    stage_samples: u64,
}

/// Folds a response's `x-amf-stage-us` breakdown into the tally and
/// returns the server-reported stage sum when the header parsed.
fn note_stages(tally: &mut ThreadTally, response: &HttpResponse) -> Option<u64> {
    let us = qos_obs::StageClock::parse_header_us(&response.stage_us)?;
    tally.stage_samples += 1;
    for (slot, v) in tally.stage_us_sum.iter_mut().zip(us) {
        *slot += v;
    }
    Some(us.iter().sum())
}

impl LoadRunner {
    /// Creates a runner for `config`.
    pub fn new(config: LoadConfig) -> Self {
        Self { config }
    }

    /// Issues the configured load against `addr` and returns the merged
    /// report labelled `label`.
    pub fn run(&self, addr: SocketAddr, label: &str) -> LoadReport {
        let config = &self.config;
        let threads = config.mode.concurrency();
        let per_thread = config.requests.div_ceil(threads as u64);
        let open_interval = match config.mode {
            LoadMode::Open { qps, .. } if qps > 0.0 => {
                Some(Duration::from_secs_f64(threads as f64 / qps))
            }
            _ => None,
        };

        let started = Instant::now();
        let tallies: Vec<ThreadTally> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for thread_id in 0..threads {
                let first = thread_id as u64 * per_thread;
                let count = per_thread.min(config.requests.saturating_sub(first));
                handles.push(scope.spawn(move || {
                    run_thread(addr, config, thread_id as u64, first, count, open_interval)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_default())
                .collect()
        });
        let wall = started.elapsed();

        let mut report = LoadReport {
            label: label.to_string(),
            fault_plan: config
                .fault_plan
                .as_ref()
                .filter(|plan| plan.mutates_network())
                .map(ToString::to_string),
            mode: match config.mode {
                LoadMode::Closed { .. } => "closed",
                LoadMode::Open { .. } => "open",
            },
            transport: if config.keep_alive {
                "keep-alive"
            } else {
                "per-conn"
            },
            pipeline_depth: if config.keep_alive {
                config.pipeline.max(1) as u64
            } else {
                1
            },
            concurrency: threads,
            offered_qps: match config.mode {
                LoadMode::Open { qps, .. } => Some(qps),
                LoadMode::Closed { .. } => None,
            },
            requests: config.requests,
            wall,
            ..LoadReport::default()
        };
        for tally in tallies {
            report.ok += tally.ok;
            report.http_4xx += tally.http_4xx;
            report.http_503 += tally.http_503;
            report.http_5xx_other += tally.http_5xx_other;
            report.transport_errors += tally.transport_errors;
            report.faults_conn_reset += tally.conn_reset;
            report.faults_slow_read += tally.slow_read;
            report.faults_blackhole += tally.blackhole;
            report.retries += tally.retries;
            report.predictions += tally.predictions;
            report.degraded_answers += tally.degraded;
            report.connects += tally.connects;
            report.conn_reuses += tally.reuses;
            report.latencies_us.extend(tally.latencies_us);
            report.traced.extend(tally.traced);
            report.stage_samples += tally.stage_samples;
            for (slot, v) in report.stage_us_sum.iter_mut().zip(tally.stage_us_sum) {
                *slot += v;
            }
        }
        report.latencies_us.sort_unstable();
        report.achieved_qps = if wall.as_secs_f64() > 0.0 {
            report.ok as f64 / wall.as_secs_f64()
        } else {
            0.0
        };

        // The server's own verdict: health status and the panic counter.
        let mut probe = ServeClient::new(addr, config.client, config.seed ^ 0x9d0b);
        report.server_health = probe
            .request("GET", "/healthz", "", None, true)
            .ok()
            .and_then(|r| Json::parse(&r.body).ok())
            .and_then(|h| h.get("status").and_then(Json::as_str).map(String::from))
            .unwrap_or_else(|| "unreachable".to_string());
        report.server_worker_panics = probe
            .request("GET", "/snapshot.json", "", None, true)
            .ok()
            .and_then(|r| Json::parse(&r.body).ok())
            .and_then(|snapshot| {
                snapshot
                    .get("counters")?
                    .get("serve.worker_panics")?
                    .as_u64()
            })
            .unwrap_or(0);

        // Reconcile the server's tail exemplars against this run's client
        // clocks: exemplars carry the trace id the client saw echoed back,
        // so a by-id join compares the server's stage sum with the
        // client-measured end-to-end latency of the same request.
        let by_id: HashMap<&str, u64> = report
            .traced
            .iter()
            .map(|(id, us)| (id.as_str(), *us))
            .collect();
        report.reconciliation = probe
            .request("GET", "/debug/exemplars", "", None, true)
            .ok()
            .and_then(|r| Json::parse(&r.body).ok())
            .map(|doc| {
                let exemplars = doc
                    .get("exemplars")
                    .and_then(Json::as_arr)
                    .map(<[Json]>::to_vec)
                    .unwrap_or_default();
                let mut ratios: Vec<f64> = exemplars
                    .iter()
                    .filter_map(|ex| {
                        let id = ex.get("trace_id").and_then(Json::as_str)?;
                        let server_us = ex.get("total_us").and_then(Json::as_u64)?;
                        let client_us = *by_id.get(id)?;
                        (client_us > 0).then(|| server_us as f64 / client_us as f64)
                    })
                    .collect();
                ratios.sort_by(f64::total_cmp);
                StageReconciliation {
                    exemplars: exemplars.len() as u64,
                    matched: ratios.len() as u64,
                    median_ratio: ratios.get(ratios.len() / 2).copied().unwrap_or(0.0),
                }
            });
        report
    }
}

/// Either transport behind one request interface, so the issuing loop is
/// shared between the per-conn baseline and the keep-alive mode.
enum LoadClient {
    PerConn(ServeClient),
    KeepAlive(KeepAliveClient),
}

impl LoadClient {
    fn request(
        &mut self,
        path: &str,
        body: &str,
        fault: Option<NetFault>,
        idempotent: bool,
    ) -> Result<HttpResponse, ClientError> {
        match self {
            LoadClient::PerConn(c) => c.request("POST", path, body, fault, idempotent),
            LoadClient::KeepAlive(c) => c.request("POST", path, body, fault, idempotent),
        }
    }
}

fn run_thread(
    addr: SocketAddr,
    config: &LoadConfig,
    thread_id: u64,
    first: u64,
    count: u64,
    open_interval: Option<Duration>,
) -> ThreadTally {
    let mut tally = ThreadTally::default();
    let client_seed = config.seed ^ (thread_id << 32);
    let mut client = if config.keep_alive {
        LoadClient::KeepAlive(KeepAliveClient::new(addr, config.client, client_seed))
    } else {
        LoadClient::PerConn(ServeClient::new(addr, config.client, client_seed))
    };
    let depth = if config.keep_alive {
        config.pipeline.max(1)
    } else {
        1
    };
    let mut rng = Xorshift::new(config.seed ^ 0xC0FFEE ^ thread_id.wrapping_mul(0x9E37_79B9));
    let epoch = Instant::now();
    // Consecutive un-faulted requests waiting to go out in one pipelined
    // write (depth > 1 only).
    let mut pending: Vec<(&'static str, String)> = Vec::new();
    for i in 0..count {
        if let Some(interval) = open_interval {
            // Open loop: pace the *start* time; a slow server does not slow
            // down arrivals.
            let target = interval.mul_f64(i as f64);
            let elapsed = epoch.elapsed();
            if target > elapsed {
                std::thread::sleep(target - elapsed);
            }
        }
        let request_id = first + i;
        let fault = config
            .fault_plan
            .as_ref()
            .and_then(|plan| plan.net_fault(request_id));
        match fault {
            Some(NetFault::ConnReset) => tally.conn_reset += 1,
            Some(NetFault::SlowRead) => tally.slow_read += 1,
            Some(NetFault::Blackhole) => tally.blackhole += 1,
            None => {}
        }
        let (path, body, idempotent) = build_request(config, &mut rng);
        if depth > 1 && fault.is_none() {
            pending.push((path, body));
            if pending.len() >= depth {
                flush_pipeline(&mut client, &mut pending, &mut tally);
            }
            continue;
        }
        // A faulted request breaks the batch: flush what is queued so the
        // fault hits the seeded request id, on its own exchange.
        flush_pipeline(&mut client, &mut pending, &mut tally);
        let begun = Instant::now();
        match client.request(path, &body, fault, idempotent) {
            Ok(response) => {
                tally.retries += u64::from(response.retries);
                let client_us = elapsed_us(begun);
                tally.latencies_us.push(client_us);
                // Individually-timed exchange: eligible for client/server
                // reconciliation by trace id.
                if note_stages(&mut tally, &response).is_some() && !response.trace_id.is_empty() {
                    tally.traced.push((response.trace_id.clone(), client_us));
                }
                classify_response(&mut tally, path, &response);
            }
            Err(_faulted_or_transport) => tally.transport_errors += 1,
        }
    }
    flush_pipeline(&mut client, &mut pending, &mut tally);
    if let LoadClient::KeepAlive(c) = &client {
        tally.connects = c.connects();
        tally.reuses = c.reuses();
    } else {
        // Per-conn opens one connection per logical request by
        // construction (retries excluded — they are reported separately).
        tally.connects = count;
    }
    tally
}

/// Writes the queued batch in one pipelined exchange and tallies every
/// response. Each member records the batch's end-to-end latency (the wait
/// of the last response); a transport failure loses the whole batch.
fn flush_pipeline(
    client: &mut LoadClient,
    pending: &mut Vec<(&'static str, String)>,
    tally: &mut ThreadTally,
) {
    if pending.is_empty() {
        return;
    }
    let LoadClient::KeepAlive(keep_alive) = client else {
        debug_assert!(false, "pipelining requires the keep-alive transport");
        pending.clear();
        return;
    };
    let requests: Vec<(&str, &str, &str)> = pending
        .iter()
        .map(|(path, body)| ("POST", *path, body.as_str()))
        .collect();
    let begun = Instant::now();
    match keep_alive.pipeline(&requests) {
        Ok(responses) => {
            let batch_us = elapsed_us(begun);
            for (response, (path, _)) in responses.iter().zip(pending.iter()) {
                tally.latencies_us.push(batch_us);
                // Server-side stage breakdowns stay valid per request, but
                // the client clock measured the batch — so no `traced`
                // entry (it would skew reconciliation).
                note_stages(tally, response);
                classify_response(tally, path, response);
            }
        }
        Err(_) => tally.transport_errors += pending.len() as u64,
    }
    pending.clear();
}

/// Buckets one answered response into the tally, extracting prediction
/// counts from `predict` bodies.
fn classify_response(tally: &mut ThreadTally, path: &str, response: &HttpResponse) {
    match response.status {
        200..=299 => {
            tally.ok += 1;
            if path == "/v1/predict" {
                if let Ok(parsed) = Json::parse(&response.body) {
                    let results = parsed
                        .get("results")
                        .and_then(Json::as_arr)
                        .map_or(0, <[Json]>::len);
                    tally.predictions += results as u64;
                    tally.degraded += parsed.get("degraded").and_then(Json::as_u64).unwrap_or(0);
                }
            }
        }
        400..=499 => tally.http_4xx += 1,
        503 => tally.http_503 += 1,
        _ => tally.http_5xx_other += 1,
    }
}

fn elapsed_us(begun: Instant) -> u64 {
    begun.elapsed().as_micros().min(u64::MAX as u128) as u64
}

/// Picks the next operation from the configured mix and renders its body.
fn build_request(config: &LoadConfig, rng: &mut Xorshift) -> (&'static str, String, bool) {
    let roll = rng.next_f64();
    let user = rng.next_u64() as usize % config.users.max(1);
    if roll < config.observe_fraction {
        let mut body = String::with_capacity(config.batch * 64);
        for _ in 0..config.batch.max(1) {
            let service = rng.next_u64() as usize % config.services.max(1);
            let value = synthetic_value(user, service, rng);
            body.push_str(&format!(
                "{{\"user\":\"user-{user}\",\"service\":\"svc-{service}\",\
                 \"timestamp\":{},\"value\":{value:.4}}}\n",
                rng.next_u64() % 100_000
            ));
        }
        // observe mutates the model: never retried (DESIGN.md §14).
        ("/v1/observe", body, false)
    } else if roll < config.observe_fraction + config.rank_fraction {
        (
            "/v1/rank",
            format!("{{\"user\":\"user-{user}\",\"k\":5}}"),
            true,
        )
    } else {
        let mut body = String::with_capacity(config.batch * 40);
        for _ in 0..config.batch.max(1) {
            let service = rng.next_u64() as usize % config.services.max(1);
            body.push_str(&format!(
                "{{\"user\":\"user-{user}\",\"service\":\"svc-{service}\"}}\n"
            ));
        }
        ("/v1/predict", body, true)
    }
}

/// Stable per-pair baseline plus noise, spanning ~two orders of magnitude
/// like response times do.
fn synthetic_value(user: usize, service: usize, rng: &mut Xorshift) -> f64 {
    let base = 0.05 + ((user * 31 + service * 17) % 97) as f64 * 0.02;
    base * (0.8 + 0.4 * rng.next_f64())
}

/// xorshift64* — deterministic, dependency-free.
struct Xorshift(u64);

impl Xorshift {
    fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_rates() {
        let report = LoadReport {
            requests: 10,
            ok: 8,
            http_503: 1,
            transport_errors: 1,
            predictions: 4,
            degraded_answers: 1,
            latencies_us: vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100],
            ..LoadReport::default()
        };
        assert_eq!(report.percentile_us(50.0), 50);
        assert_eq!(report.percentile_us(99.0), 100);
        assert_eq!(report.percentile_us(0.0), 10);
        assert!((report.error_rate() - 0.2).abs() < 1e-12);
        assert!((report.degraded_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_report_serializes_finite() {
        let report = LoadReport {
            label: "empty".into(),
            mode: "closed",
            ..LoadReport::default()
        };
        let json = report.to_json();
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some(BENCH_SERVE_SCHEMA)
        );
        assert_eq!(
            json.get("latency_us")
                .and_then(|l| l.get("p99"))
                .and_then(Json::as_u64),
            Some(0)
        );
        // Round-trips through the strict parser (no NaN/Inf leakage).
        assert!(Json::parse(&json.to_string_compact()).is_ok());
    }

    #[test]
    fn reconciliation_serializes_and_gates_on_tolerance() {
        let mut report = LoadReport {
            label: "traced".into(),
            mode: "closed",
            stage_samples: 2,
            stage_us_sum: [2, 4, 6, 8, 10, 12],
            ..LoadReport::default()
        };
        report.reconciliation = Some(StageReconciliation {
            exemplars: 4,
            matched: 3,
            median_ratio: 0.97,
        });
        let json = report.to_json();
        let recon = json.get("reconciliation").expect("reconciliation block");
        assert_eq!(recon.get("matched").and_then(Json::as_u64), Some(3));
        assert_eq!(recon.get("within_10pct"), Some(&Json::Bool(true)));
        assert_eq!(
            json.get("stage_mean_us")
                .and_then(|s| s.get("execute"))
                .and_then(Json::as_f64),
            Some(5.0)
        );
        assert!(StageReconciliation {
            exemplars: 1,
            matched: 1,
            median_ratio: 1.09,
        }
        .within(0.10));
        // No matches means no verdict, however good the ratio looks.
        assert!(!StageReconciliation::default().within(0.10));
        // An unreconciled report serializes the block as null.
        report.reconciliation = None;
        assert_eq!(report.to_json().get("reconciliation"), Some(&Json::Null));
    }

    #[test]
    fn workload_mix_is_deterministic_and_respects_fractions() {
        let config = LoadConfig {
            observe_fraction: 0.3,
            rank_fraction: 0.2,
            ..LoadConfig::default()
        };
        let mut rng_a = Xorshift::new(9);
        let mut rng_b = Xorshift::new(9);
        let mut counts = [0u32; 3];
        for _ in 0..2000 {
            let (path_a, body_a, idem_a) = build_request(&config, &mut rng_a);
            let (path_b, body_b, idem_b) = build_request(&config, &mut rng_b);
            assert_eq!((path_a, &body_a, idem_a), (path_b, &body_b, idem_b));
            match path_a {
                "/v1/observe" => {
                    assert!(!idem_a, "observe must never be marked idempotent");
                    counts[0] += 1;
                }
                "/v1/rank" => counts[1] += 1,
                _ => counts[2] += 1,
            }
        }
        let observed = counts[0] as f64 / 2000.0;
        let ranked = counts[1] as f64 / 2000.0;
        assert!((observed - 0.3).abs() < 0.05, "observe fraction {observed}");
        assert!((ranked - 0.2).abs() < 0.05, "rank fraction {ranked}");
    }
}
