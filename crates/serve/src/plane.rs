//! The serving plane: acceptor + bounded queue + fixed worker pool over a
//! [`QosPredictionService`], with deadlines, admission control, and a
//! graceful drain.
//!
//! ## Request lifecycle
//!
//! 1. The **acceptor** thread accepts a connection, stamps its arrival
//!    time, and `try_send`s it into a bounded queue. A full queue is the
//!    first admission level: the acceptor answers `503 overloaded`
//!    immediately (fast-reject) instead of letting a backlog build.
//! 2. A **worker** pops the connection, reads the request (hardened parse,
//!    see [`crate::http`]), and resolves the request's deadline budget
//!    (`x-amf-deadline-ms` header, else the configured default). If the
//!    time already spent queued exceeds the budget, the request is
//!    rejected on arrival (`503 deadline`) without touching the model —
//!    the client has given up; serving it would be wasted work.
//! 3. Handlers re-check the remaining budget between batch items, so one
//!    oversized batch cannot blow through its deadline silently.
//! 4. Predictions always ride
//!    [`QosPredictionService::predict_degraded`] — the second admission
//!    level: while the engine is rebuilding or entities are cold, answers
//!    degrade along the fallback ladder (tagged with their
//!    [`qos_service::PredictionSource`]) instead of failing.
//!
//! ## Drain
//!
//! [`ServePlane::stop`] flips the draining flag (visible in `/healthz`),
//! stops the acceptor (stop flag observed *before* blocking again, plus a
//! non-blocking listener and a wake connection — no self-connect race),
//! lets the workers flush every queued connection, joins them, and
//! publishes a final metrics snapshot.

use crate::http::{self, HttpError, Request};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use qos_obs::Json;
use qos_service::telemetry::health_body_from;
use qos_service::QosPredictionService;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Schema tag of every JSON body the plane emits.
pub const SERVE_SCHEMA: &str = "amf-serve/v1";

/// Serving-plane configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Fixed worker-pool size.
    pub workers: usize,
    /// Bounded accept-queue capacity; beyond it the acceptor fast-rejects.
    pub max_pending: usize,
    /// Per-request body cap (`413` beyond it).
    pub max_body_bytes: usize,
    /// Socket read/write timeout per connection.
    pub io_timeout: Duration,
    /// Deadline budget applied when a request carries no
    /// `x-amf-deadline-ms` header.
    pub default_deadline: Duration,
    /// Hard cap on client-supplied deadlines (keeps one client from
    /// pinning a worker arbitrarily long).
    pub max_deadline: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_pending: 128,
            max_body_bytes: 1024 * 1024,
            io_timeout: Duration::from_secs(2),
            default_deadline: Duration::from_secs(1),
            max_deadline: Duration::from_secs(30),
        }
    }
}

/// Operational counters of a [`ServePlane`] (all cumulative).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections accepted into the queue.
    pub accepted: u64,
    /// Requests fully parsed and routed.
    pub requests: u64,
    /// `200` responses.
    pub ok: u64,
    /// `4xx` protocol-error responses (400/404/405/408/413/422/431).
    pub client_errors: u64,
    /// Fast-rejects: accept queue full (`503`).
    pub rejected_overload: u64,
    /// Reject-on-arrival: queue wait exceeded the deadline budget (`503`).
    pub rejected_deadline: u64,
    /// Rejected because the plane was draining (`503`).
    pub rejected_draining: u64,
    /// Worker panics caught by the pool (must stay 0; the pool survives).
    pub worker_panics: u64,
    /// Connections lost to transport errors before a response could be
    /// written.
    pub io_errors: u64,
    /// Observation records queued for training.
    pub observe_queued: u64,
    /// Observation records shed by the bounded input queue.
    pub observe_shed: u64,
    /// Individual predictions served.
    pub predictions: u64,
    /// Predictions answered below the `model` rung (degraded answers).
    pub degraded_answers: u64,
    /// Rank queries served.
    pub ranks: u64,
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    requests: AtomicU64,
    ok: AtomicU64,
    client_errors: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_deadline: AtomicU64,
    rejected_draining: AtomicU64,
    worker_panics: AtomicU64,
    io_errors: AtomicU64,
    observe_queued: AtomicU64,
    observe_shed: AtomicU64,
    predictions: AtomicU64,
    degraded_answers: AtomicU64,
    ranks: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServeStats {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServeStats {
            accepted: get(&self.accepted),
            requests: get(&self.requests),
            ok: get(&self.ok),
            client_errors: get(&self.client_errors),
            rejected_overload: get(&self.rejected_overload),
            rejected_deadline: get(&self.rejected_deadline),
            rejected_draining: get(&self.rejected_draining),
            worker_panics: get(&self.worker_panics),
            io_errors: get(&self.io_errors),
            observe_queued: get(&self.observe_queued),
            observe_shed: get(&self.observe_shed),
            predictions: get(&self.predictions),
            degraded_answers: get(&self.degraded_answers),
            ranks: get(&self.ranks),
        }
    }
}

struct PlaneState {
    service: Arc<QosPredictionService>,
    config: ServeConfig,
    counters: Counters,
    stop: AtomicBool,
    draining: AtomicBool,
}

impl PlaneState {
    /// Mirrors the plane's counters into the process-global registry so
    /// `/metrics` scrapes and snapshots carry `serve.*` families alongside
    /// the service/engine instrumentation.
    fn publish_metrics(&self) {
        let stats = self.counters.snapshot();
        let global = qos_obs::global();
        for (name, value) in [
            ("serve.accepted", stats.accepted),
            ("serve.requests", stats.requests),
            ("serve.ok", stats.ok),
            ("serve.client_errors", stats.client_errors),
            ("serve.rejected_overload", stats.rejected_overload),
            ("serve.rejected_deadline", stats.rejected_deadline),
            ("serve.rejected_draining", stats.rejected_draining),
            ("serve.worker_panics", stats.worker_panics),
            ("serve.io_errors", stats.io_errors),
            ("serve.observe_queued", stats.observe_queued),
            ("serve.observe_shed", stats.observe_shed),
            ("serve.predictions", stats.predictions),
            ("serve.degraded_answers", stats.degraded_answers),
            ("serve.ranks", stats.ranks),
        ] {
            global.counter(name).set(value);
        }
        global
            .gauge("serve.draining")
            .set(if self.draining.load(Ordering::Relaxed) {
                1.0
            } else {
                0.0
            });
    }

    fn snapshot(&self) -> Json {
        self.publish_metrics();
        self.service.stats_snapshot()
    }
}

struct Pending {
    stream: TcpStream,
    arrived: Instant,
}

/// The serving plane. See the module docs for the request lifecycle.
pub struct ServePlane {
    state: Arc<PlaneState>,
    addr: SocketAddr,
    /// A clone of the listening socket, kept so shutdown can switch the
    /// shared handle to non-blocking — the drain path does not depend on a
    /// self-connect racing the accept loop.
    listener: TcpListener,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServePlane {
    /// Binds `addr` (port 0 for ephemeral) and starts the acceptor and the
    /// worker pool.
    ///
    /// # Errors
    ///
    /// Returns the bind/spawn error.
    pub fn start(
        addr: &str,
        service: Arc<QosPredictionService>,
        config: ServeConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        let shutdown_handle = listener.try_clone()?;
        let state = Arc::new(PlaneState {
            service,
            config,
            counters: Counters::default(),
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
        });

        let (tx, rx) = bounded::<Pending>(config.max_pending.max(1));
        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let rx: Receiver<Pending> = rx.clone();
            let worker_state = Arc::clone(&state);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("amf-serve-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &worker_state))?,
            );
        }
        let accept_state = Arc::clone(&state);
        let acceptor = std::thread::Builder::new()
            .name("amf-serve-accept".into())
            .spawn(move || accept_loop(&listener, tx, &accept_state))?;

        qos_obs::global()
            .trace()
            .event("serve_plane_start", bound.to_string());
        Ok(Self {
            state,
            addr: bound,
            listener: shutdown_handle,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (the real port for port-0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current operational counters.
    pub fn stats(&self) -> ServeStats {
        self.state.counters.snapshot()
    }

    /// Whether the plane is draining (stop initiated).
    pub fn draining(&self) -> bool {
        self.state.draining.load(Ordering::Relaxed)
    }

    /// Graceful drain: stop accepting, flush every queued and in-flight
    /// request, join all threads, publish a final snapshot. Returns the
    /// final counters.
    pub fn stop(mut self) -> ServeStats {
        self.shutdown();
        self.state.counters.snapshot()
    }

    fn shutdown(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        // Order matters: draining first (healthz flips to "draining" and
        // late arrivals are answered 503), then stop + non-blocking so the
        // accept loop observes the flag before it can block again. The wake
        // connection is only a latency optimization — with the shared
        // handle non-blocking the loop exits on its own regardless of
        // whether the connect wins or loses the race.
        self.state.draining.store(true, Ordering::SeqCst);
        self.state.stop.store(true, Ordering::SeqCst);
        let _ = self.listener.set_nonblocking(true);
        if let Ok(stream) = TcpStream::connect(self.addr) {
            drop(stream);
        }
        let _ = acceptor.join();
        // The acceptor owned the queue's only sender; once it exits the
        // workers drain whatever is queued (in-flight flush) and then see
        // the disconnect and stop.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.state.publish_metrics();
        qos_obs::global()
            .trace()
            .event("serve_plane_stop", self.addr.to_string());
    }
}

impl Drop for ServePlane {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ServePlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServePlane")
            .field("addr", &self.addr)
            .field("stats", &self.stats())
            .finish()
    }
}

fn accept_loop(listener: &TcpListener, tx: Sender<Pending>, state: &PlaneState) {
    loop {
        // The stop flag is observed BEFORE blocking again — combined with
        // the non-blocking switch in shutdown this is what makes the drain
        // race-free (a connection arriving concurrently with shutdown can
        // consume the wake, but it cannot make this loop block forever).
        if state.stop.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if state.stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
            Err(_) => continue,
        };
        if state.draining.load(Ordering::SeqCst) {
            reject_inline(stream, state, 503, "draining");
            state
                .counters
                .rejected_draining
                .fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let pending = Pending {
            stream,
            arrived: Instant::now(),
        };
        match tx.try_send(pending) {
            Ok(()) => {
                state.counters.accepted.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(pending)) => {
                // First admission level: the queue is full, so by the time
                // this connection reached a worker its budget would likely
                // be gone anyway. Reject now, cheaply, from the acceptor.
                reject_inline(pending.stream, state, 503, "overloaded");
                state
                    .counters
                    .rejected_overload
                    .fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

/// Best-effort error response written straight from the acceptor thread
/// (short write timeout so a slow peer cannot stall accepting).
fn reject_inline(mut stream: TcpStream, state: &PlaneState, status: u16, error: &str) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let body = error_body(error);
    if http::write_response(&mut stream, status, "application/json", &body).is_err() {
        state.counters.io_errors.fetch_add(1, Ordering::Relaxed);
    }
}

fn worker_loop(rx: &Receiver<Pending>, state: &PlaneState) {
    while let Ok(pending) = rx.recv() {
        // A panic in one connection's handler must never take down the
        // pool; it is counted and the worker moves on.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_connection(pending, state);
        }));
        if outcome.is_err() {
            state.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn handle_connection(pending: Pending, state: &PlaneState) {
    let Pending {
        mut stream,
        arrived,
    } = pending;
    let config = &state.config;
    let _ = stream.set_read_timeout(Some(config.io_timeout));
    let _ = stream.set_write_timeout(Some(config.io_timeout));

    let request = match http::read_request(&mut stream, config.max_body_bytes) {
        Ok(request) => request,
        Err(e) => {
            match e.status() {
                Some(status) => {
                    state.counters.client_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = http::write_response(
                        &mut stream,
                        status,
                        "application/json",
                        &error_body(e.message()),
                    );
                }
                None => {
                    if !matches!(e, HttpError::CleanClose) {
                        state.counters.io_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            return;
        }
    };
    state.counters.requests.fetch_add(1, Ordering::Relaxed);

    // Deadline budget: header wins (capped), else the configured default.
    let deadline = match request.header("x-amf-deadline-ms") {
        Some(raw) => match raw.parse::<u64>() {
            Ok(ms) => Duration::from_millis(ms).min(config.max_deadline),
            Err(_) => {
                state.counters.client_errors.fetch_add(1, Ordering::Relaxed);
                let _ = http::write_response(
                    &mut stream,
                    400,
                    "application/json",
                    &error_body("bad x-amf-deadline-ms"),
                );
                return;
            }
        },
        None => config.default_deadline,
    };
    let expires = arrived + deadline;

    // Reject-on-arrival: the queue wait (plus request read) already burned
    // the whole budget — answering would be wasted work the client no
    // longer waits for.
    if Instant::now() > expires {
        state
            .counters
            .rejected_deadline
            .fetch_add(1, Ordering::Relaxed);
        let _ = http::write_response(
            &mut stream,
            503,
            "application/json",
            &error_body("deadline exceeded in queue"),
        );
        return;
    }

    let (status, content_type, body) = route(&request, state, expires);
    match status {
        200 => state.counters.ok.fetch_add(1, Ordering::Relaxed),
        503 => state
            .counters
            .rejected_deadline
            .fetch_add(1, Ordering::Relaxed),
        _ => state.counters.client_errors.fetch_add(1, Ordering::Relaxed),
    };
    if http::write_response(&mut stream, status, &content_type, &body).is_err() {
        state.counters.io_errors.fetch_add(1, Ordering::Relaxed);
    }
}

type RouteResponse = (u16, String, String);

fn route(request: &Request, state: &PlaneState, expires: Instant) -> RouteResponse {
    let json = |status: u16, body: String| (status, "application/json".to_string(), body);
    match (request.method.as_str(), request.route()) {
        ("POST", "/v1/observe") => handle_observe(request, state),
        ("POST", "/v1/predict") => handle_predict(request, state, expires),
        ("POST", "/v1/rank") => handle_rank(request, state),
        ("GET", "/metrics") => {
            let snapshot = state.snapshot();
            (
                200,
                qos_obs::CONTENT_TYPE.to_string(),
                qos_obs::render_prometheus(&snapshot),
            )
        }
        ("GET", "/snapshot.json") => json(200, state.snapshot().to_string_compact()),
        ("GET", "/healthz") => json(200, health_body_from(&state.snapshot())),
        ("GET" | "POST", _) => json(404, error_body("not found")),
        _ => json(405, error_body("method not allowed")),
    }
}

/// `POST /v1/observe` — newline-delimited JSON records. Not idempotent:
/// clients must never retry (DESIGN.md §14 retry-safety table). Garbage
/// lines are counted, never fatal; valid records ride the bounded input
/// queue (load-shedding) and are applied in one batch drain.
fn handle_observe(request: &Request, state: &PlaneState) -> RouteResponse {
    let body = match request.body_str() {
        Ok(body) => body,
        Err(e) => return (400, "application/json".to_string(), error_body(e.message())),
    };
    let mut queued = 0u64;
    let mut shed = 0u64;
    let mut invalid = 0u64;
    for line in body.lines().filter(|l| !l.trim().is_empty()) {
        let Some(record) = parse_observe_line(line) else {
            invalid += 1;
            continue;
        };
        if state.service.offer(record) {
            queued += 1;
        } else {
            shed += 1;
        }
    }
    let applied = state.service.drain_inputs() as u64;
    state
        .counters
        .observe_queued
        .fetch_add(queued, Ordering::Relaxed);
    state
        .counters
        .observe_shed
        .fetch_add(shed, Ordering::Relaxed);
    let mut out = Json::obj();
    out.set("schema", Json::Str(SERVE_SCHEMA.into()))
        .set("op", Json::Str("observe".into()))
        .set("queued", Json::UInt(queued))
        .set("shed", Json::UInt(shed))
        .set("invalid", Json::UInt(invalid))
        .set("applied", Json::UInt(applied));
    (200, "application/json".to_string(), out.to_string_compact())
}

fn parse_observe_line(line: &str) -> Option<qos_service::QosRecord> {
    let parsed = Json::parse(line).ok()?;
    let user = parsed.get("user")?.as_str()?.to_string();
    let service = parsed.get("service")?.as_str()?.to_string();
    let timestamp = parsed.get("timestamp").and_then(Json::as_u64).unwrap_or(0);
    // `null` (JSON's only spelling of a non-finite float) maps to NaN so
    // the value still reaches the guard and is *counted* as quarantined
    // garbage rather than silently vanishing at the protocol layer.
    let value = match parsed.get("value") {
        Some(Json::Null) => f64::NAN,
        Some(v) => v.as_f64()?,
        None => return None,
    };
    Some(qos_service::QosRecord {
        user,
        service,
        timestamp,
        value,
    })
}

/// `POST /v1/predict` — newline-delimited `{"user","service"}` pairs.
/// Idempotent (read-only): safe to retry. Every answer is a degraded-mode
/// prediction tagged with its fallback-ladder source; the deadline budget
/// is re-checked between items.
fn handle_predict(request: &Request, state: &PlaneState, expires: Instant) -> RouteResponse {
    let body = match request.body_str() {
        Ok(body) => body,
        Err(e) => return (400, "application/json".to_string(), error_body(e.message())),
    };
    let mut results = Vec::new();
    let mut invalid = 0u64;
    let mut degraded = 0u64;
    for line in body.lines().filter(|l| !l.trim().is_empty()) {
        if Instant::now() > expires {
            // Budget burned mid-batch: a partial answer is not a valid
            // prediction set, and predict is idempotent — fail cleanly and
            // let the client retry with a fresh budget.
            return (
                503,
                "application/json".to_string(),
                error_body("deadline exceeded mid-batch"),
            );
        }
        let pair = Json::parse(line).ok().and_then(|parsed| {
            let user = parsed.get("user")?.as_str()?.to_string();
            let service = parsed.get("service")?.as_str()?.to_string();
            Some((user, service))
        });
        let Some((user, service)) = pair else {
            invalid += 1;
            continue;
        };
        let prediction = state.service.predict_degraded(&user, &service);
        if !prediction.source.is_model() {
            degraded += 1;
        }
        let mut entry = Json::obj();
        entry
            .set("user", Json::Str(user))
            .set("service", Json::Str(service))
            .set("value", Json::Num(prediction.value))
            .set("source", Json::Str(prediction.source.label().into()));
        results.push(entry);
    }
    state
        .counters
        .predictions
        .fetch_add(results.len() as u64, Ordering::Relaxed);
    state
        .counters
        .degraded_answers
        .fetch_add(degraded, Ordering::Relaxed);
    let mut out = Json::obj();
    out.set("schema", Json::Str(SERVE_SCHEMA.into()))
        .set("op", Json::Str("predict".into()))
        .set("invalid", Json::UInt(invalid))
        .set("degraded", Json::UInt(degraded))
        .set("results", Json::Arr(results));
    (200, "application/json".to_string(), out.to_string_compact())
}

/// `POST /v1/rank` — one JSON object `{"user": ..., "k": ...}`. Idempotent
/// (read-only): safe to retry. An unknown user is a clean `422`, not a
/// degraded guess — ranking candidates for nobody is a caller bug.
fn handle_rank(request: &Request, state: &PlaneState) -> RouteResponse {
    let json = |status: u16, body: String| (status, "application/json".to_string(), body);
    let body = match request.body_str() {
        Ok(body) => body,
        Err(e) => return json(400, error_body(e.message())),
    };
    let Ok(parsed) = Json::parse(body.trim()) else {
        return json(400, error_body("rank body is not valid JSON"));
    };
    let Some(user) = parsed.get("user").and_then(Json::as_str) else {
        return json(400, error_body("rank body missing \"user\""));
    };
    let k = parsed
        .get("k")
        .and_then(Json::as_u64)
        .unwrap_or(5)
        .min(1000) as usize;
    match state.service.rank_candidates(user, k) {
        Ok(ranked) => {
            state.counters.ranks.fetch_add(1, Ordering::Relaxed);
            let results = ranked
                .into_iter()
                .map(|(service, value)| {
                    let mut entry = Json::obj();
                    entry
                        .set("service", Json::Str(service))
                        .set("value", Json::Num(value));
                    entry
                })
                .collect();
            let mut out = Json::obj();
            out.set("schema", Json::Str(SERVE_SCHEMA.into()))
                .set("op", Json::Str("rank".into()))
                .set("user", Json::Str(user.to_string()))
                .set("results", Json::Arr(results));
            json(200, out.to_string_compact())
        }
        Err(e) => json(422, error_body_owned(e.to_string())),
    }
}

fn error_body(message: &str) -> String {
    error_body_owned(message.to_string())
}

fn error_body_owned(message: String) -> String {
    let mut out = Json::obj();
    out.set("schema", Json::Str(SERVE_SCHEMA.into()))
        .set("error", Json::Str(message));
    out.to_string_compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_service::ServiceConfig;
    use std::io::{Read, Write};

    fn test_plane(config: ServeConfig) -> ServePlane {
        let service = Arc::new(QosPredictionService::new(ServiceConfig {
            input_queue_capacity: 1024,
            ..ServiceConfig::default()
        }));
        ServePlane::start("127.0.0.1:0", service, config).expect("bind")
    }

    fn raw_request(addr: SocketAddr, raw: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    fn post(addr: SocketAddr, path: &str, body: &str, headers: &str) -> (u16, String) {
        let raw = format!(
            "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n{headers}\r\n{body}",
            body.len()
        );
        let response = raw_request(addr, raw.as_bytes());
        let (head, body) = response.split_once("\r\n\r\n").expect("blank line");
        let status = head
            .split_whitespace()
            .nth(1)
            .expect("status")
            .parse()
            .unwrap();
        (status, body.to_string())
    }

    #[test]
    fn observe_predict_rank_round_trip() {
        let plane = test_plane(ServeConfig::default());
        let addr = plane.local_addr();
        let mut observations = String::new();
        for t in 0..60u64 {
            observations.push_str(&format!(
                "{{\"user\":\"u{}\",\"service\":\"s{}\",\"timestamp\":{t},\"value\":{}}}\n",
                t % 3,
                t % 4,
                0.5 + (t % 5) as f64
            ));
        }
        let (status, body) = post(addr, "/v1/observe", &observations, "");
        assert_eq!(status, 200, "{body}");
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(parsed.get("queued").and_then(Json::as_u64), Some(60));
        assert_eq!(parsed.get("applied").and_then(Json::as_u64), Some(60));
        assert_eq!(parsed.get("shed").and_then(Json::as_u64), Some(0));

        let (status, body) = post(
            addr,
            "/v1/predict",
            "{\"user\":\"u0\",\"service\":\"s1\"}\n{\"user\":\"ghost\",\"service\":\"s1\"}\n",
            "",
        );
        assert_eq!(status, 200, "{body}");
        let parsed = Json::parse(&body).unwrap();
        let results = parsed.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(results.len(), 2);
        for entry in results {
            let value = entry.get("value").and_then(Json::as_f64).unwrap();
            assert!(value.is_finite());
            assert!(entry.get("source").and_then(Json::as_str).is_some());
        }

        let (status, body) = post(addr, "/v1/rank", "{\"user\":\"u0\",\"k\":2}", "");
        assert_eq!(status, 200, "{body}");
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(
            parsed
                .get("results")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );

        let stats = plane.stop();
        assert_eq!(stats.worker_panics, 0);
        assert_eq!(stats.ok, 3);
        assert_eq!(stats.predictions, 2);
        assert_eq!(stats.ranks, 1);
        assert!(stats.degraded_answers >= 1, "ghost user degrades");
    }

    #[test]
    fn zero_deadline_is_rejected_on_arrival() {
        let plane = test_plane(ServeConfig::default());
        let addr = plane.local_addr();
        let (status, body) = post(
            addr,
            "/v1/predict",
            "{\"user\":\"u\",\"service\":\"s\"}\n",
            "x-amf-deadline-ms: 0\r\n",
        );
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("deadline"));
        let stats = plane.stop();
        assert_eq!(stats.rejected_deadline, 1);
        assert_eq!(stats.worker_panics, 0);
    }

    #[test]
    fn bad_deadline_header_is_400() {
        let plane = test_plane(ServeConfig::default());
        let (status, body) = post(
            plane.local_addr(),
            "/v1/predict",
            "{}",
            "x-amf-deadline-ms: soon\r\n",
        );
        assert_eq!(status, 400, "{body}");
        plane.stop();
    }

    #[test]
    fn unknown_rank_user_is_422_and_routes_404_405() {
        let plane = test_plane(ServeConfig::default());
        let addr = plane.local_addr();
        let (status, _) = post(addr, "/v1/rank", "{\"user\":\"nobody\"}", "");
        assert_eq!(status, 422);
        let (status, _) = post(addr, "/v1/unknown", "{}", "");
        assert_eq!(status, 404);
        let response = raw_request(addr, b"DELETE /v1/rank HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 405"));
        let stats = plane.stop();
        assert_eq!(stats.worker_panics, 0);
    }

    #[test]
    fn health_metrics_snapshot_served() {
        let plane = test_plane(ServeConfig::default());
        let addr = plane.local_addr();
        let health = raw_request(addr, b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        assert!(health.contains("\"status\":\"ok\""), "{health}");
        let metrics = raw_request(addr, b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(
            metrics.contains("amf_serve_requests"),
            "serve counters exported"
        );
        let snapshot = raw_request(addr, b"GET /snapshot.json HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(snapshot.contains(qos_obs::SCHEMA));
        plane.stop();
    }

    #[test]
    fn drain_is_graceful_and_port_released() {
        let plane = test_plane(ServeConfig::default());
        let addr = plane.local_addr();
        let (status, _) = post(
            addr,
            "/v1/observe",
            "{\"user\":\"u\",\"service\":\"s\",\"value\":1.0}\n",
            "",
        );
        assert_eq!(status, 200);
        let stats = plane.stop();
        assert_eq!(stats.worker_panics, 0);
        // Fully drained: the port rebinds immediately.
        assert!(
            TcpListener::bind(addr).is_ok(),
            "port still held after stop"
        );
    }

    #[test]
    fn repeated_start_stop_never_hangs() {
        // The drain-path regression pin (shared-listener shape): shutdown
        // must terminate promptly every time, scrape or no scrape.
        for round in 0..25 {
            let plane = test_plane(ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            });
            if round % 3 == 0 {
                let health = raw_request(plane.local_addr(), b"GET /healthz HTTP/1.1\r\n\r\n");
                assert!(health.starts_with("HTTP/1.1 200"));
            }
            let stats = plane.stop();
            assert_eq!(stats.worker_panics, 0, "round {round}");
        }
    }
}
