//! The serving plane: a `poll(2)` readiness loop + EDF pending queue +
//! fixed worker pool over a [`QosPredictionService`], with keep-alive,
//! pipelining, deadlines, admission control, and a graceful drain.
//!
//! ## Architecture (DESIGN.md §15)
//!
//! One **poller** thread owns every socket: the listener, a wake channel,
//! and a bounded table of non-blocking client connections (each a
//! [`crate::conn::ConnState`] state machine). Requests parsed off a
//! connection are stamped with a deadline expiry and admitted into a
//! bounded **earliest-deadline-first queue** ([`crate::edf::EdfQueue`]);
//! a fixed pool of **workers** pops the soonest-to-expire request, routes
//! it through the prediction service, and sends the completion back to the
//! poller (wake channel), which flushes responses **in request order** per
//! connection — pipelined clients get HTTP/1.1 semantics even though the
//! work completes out of order.
//!
//! ## Admission control (three levels)
//!
//! 1. **Connection table full** — the poller stops polling the listener:
//!    accept backpressure, new connections wait in the SYN backlog.
//! 2. **EDF queue full** — the request is answered `503 overloaded`
//!    inline, without touching a worker (fast-reject).
//! 3. **Deadline** — a request whose `x-amf-deadline-ms` budget is already
//!    zero fast-rejects inline; workers re-check expiry at pop (reject
//!    after queue wait) and handlers re-check mid-batch.
//!
//! Per-connection fairness: a connection may have at most
//! [`ServeConfig::max_inflight_per_conn`] requests in flight — beyond
//! that the poller stops re-arming its reads (TCP backpressure), so one
//! greedy pipelined peer cannot monopolize queue slots.
//!
//! ## Drain
//!
//! [`ServePlane::stop`] flips the draining flag (visible in `/healthz`),
//! closes the EDF queue (workers flush every admitted request, then
//! exit), and wakes the poller, which stops re-arming reads, answers
//! still-arriving connections `503 draining`, renders every in-flight
//! response with `Connection: close`, and exits once the last connection
//! flushes — an *idle* keep-alive client cannot hang the drain.

use crate::conn::{CompletedResponse, ConnState, ReadEvent, ReadOutcome, ReqTiming, RespKind};
use crate::edf::{EdfQueue, PushError};
use crate::http::{self, Request};
use crate::poller::{self, PollFd, WakeReceiver, Waker, INTEREST_READ, INTEREST_WRITE};
use qos_obs::{
    FlightConfig, FlightRecorder, FlightRing, Json, StageClock, TailExemplars, TraceRecord,
};
use qos_service::telemetry::health_body_from;
use qos_service::QosPredictionService;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Schema tag of every JSON body the plane emits.
pub const SERVE_SCHEMA: &str = "amf-serve/v1";

/// Poller tick: upper bound on how long completions/timeouts wait when no
/// socket readiness arrives (wakes cut it short).
const TICK: Duration = Duration::from_millis(25);

/// Serving-plane configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Fixed worker-pool size.
    pub workers: usize,
    /// Bounded EDF-queue capacity; beyond it requests fast-reject `503`.
    pub max_pending: usize,
    /// Per-request body cap (`413` beyond it).
    pub max_body_bytes: usize,
    /// Read window for a partial request (`408` + close past it) and the
    /// write-stall bound for an unresponsive reader.
    pub io_timeout: Duration,
    /// Deadline budget applied when a request carries no
    /// `x-amf-deadline-ms` header.
    pub default_deadline: Duration,
    /// Hard cap on client-supplied deadlines (keeps one client from
    /// pinning a worker arbitrarily long).
    pub max_deadline: Duration,
    /// Bounded connection-table size; at the cap the listener is not
    /// polled (accept backpressure via the SYN backlog).
    pub max_connections: usize,
    /// Requests served per connection before it is closed
    /// (`Connection: close` on the final response).
    pub max_requests_per_conn: u64,
    /// Idle keep-alive connections are closed after this long.
    pub idle_timeout: Duration,
    /// Per-connection in-flight quota: beyond it reads pause (TCP
    /// backpressure) until responses flush.
    pub max_inflight_per_conn: u64,
    /// Seed of the minted-trace-id counter (ids are `amf-<16 hex>`);
    /// distinct planes in one process should use distinct seeds.
    pub trace_seed: u64,
    /// Slowest-N requests kept per interval as tail exemplars.
    pub exemplar_capacity: usize,
    /// Recent trace records retained for flight dumps.
    pub flight_ring_capacity: usize,
    /// Deadline-reject fraction per interval that triggers an automatic
    /// flight dump (with a minimum sample floor).
    pub slo_dump_threshold: f64,
    /// Minimum spacing between automatic flight dumps (manual
    /// `POST /debug/dump` bypasses it).
    pub flight_cooldown: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_pending: 128,
            max_body_bytes: 1024 * 1024,
            io_timeout: Duration::from_secs(2),
            default_deadline: Duration::from_secs(1),
            max_deadline: Duration::from_secs(30),
            max_connections: 256,
            max_requests_per_conn: 1024,
            idle_timeout: Duration::from_secs(30),
            max_inflight_per_conn: 32,
            trace_seed: 1,
            exemplar_capacity: 8,
            flight_ring_capacity: 256,
            slo_dump_threshold: 0.5,
            flight_cooldown: Duration::from_millis(500),
        }
    }
}

/// Operational counters of a [`ServePlane`] (all cumulative).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections admitted into the connection table.
    pub accepted: u64,
    /// Requests fully parsed and admitted for routing.
    pub requests: u64,
    /// `200` responses.
    pub ok: u64,
    /// `4xx` protocol-error responses (400/404/405/408/413/422/431).
    pub client_errors: u64,
    /// Fast-rejects: EDF pending queue full (`503`).
    pub rejected_overload: u64,
    /// Deadline rejects: zero budget on arrival, budget burned in queue,
    /// or mid-batch expiry (`503`).
    pub rejected_deadline: u64,
    /// Rejected because the plane was draining (`503`).
    pub rejected_draining: u64,
    /// Worker panics caught by the pool (must stay 0; the pool survives).
    pub worker_panics: u64,
    /// Connections lost to transport errors with work pending.
    pub io_errors: u64,
    /// Keep-alive connections reaped by the idle timeout.
    pub idle_closed: u64,
    /// Observation records queued for training.
    pub observe_queued: u64,
    /// Observation records shed by the bounded input queue.
    pub observe_shed: u64,
    /// Individual predictions served.
    pub predictions: u64,
    /// Predictions answered below the `model` rung (degraded answers).
    pub degraded_answers: u64,
    /// Rank queries served.
    pub ranks: u64,
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    requests: AtomicU64,
    ok: AtomicU64,
    client_errors: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_deadline: AtomicU64,
    rejected_draining: AtomicU64,
    worker_panics: AtomicU64,
    io_errors: AtomicU64,
    idle_closed: AtomicU64,
    observe_queued: AtomicU64,
    observe_shed: AtomicU64,
    predictions: AtomicU64,
    degraded_answers: AtomicU64,
    ranks: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServeStats {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServeStats {
            accepted: get(&self.accepted),
            requests: get(&self.requests),
            ok: get(&self.ok),
            client_errors: get(&self.client_errors),
            rejected_overload: get(&self.rejected_overload),
            rejected_deadline: get(&self.rejected_deadline),
            rejected_draining: get(&self.rejected_draining),
            worker_panics: get(&self.worker_panics),
            io_errors: get(&self.io_errors),
            idle_closed: get(&self.idle_closed),
            observe_queued: get(&self.observe_queued),
            observe_shed: get(&self.observe_shed),
            predictions: get(&self.predictions),
            degraded_answers: get(&self.degraded_answers),
            ranks: get(&self.ranks),
        }
    }
}

/// One admitted request travelling to the worker pool.
struct Job {
    conn_id: usize,
    gen: u64,
    seq: u64,
    request: Box<Request>,
    expires: Instant,
    enqueued: Instant,
    keep_alive_wanted: bool,
    trace_id: String,
    endpoint: &'static str,
    stages: StageClock,
}

/// A worker's answer travelling back to the poller.
struct Completion {
    conn_id: usize,
    gen: u64,
    seq: u64,
    response: CompletedResponse,
}

struct PlaneState {
    service: Arc<QosPredictionService>,
    config: ServeConfig,
    counters: Counters,
    stop: AtomicBool,
    draining: AtomicBool,
    open_connections: AtomicU64,
    queue: EdfQueue<Job>,
    /// Minted-trace-id counter (seeded by [`ServeConfig::trace_seed`]).
    trace_seq: AtomicU64,
    /// Slowest-N requests of the current/previous interval.
    exemplars: TailExemplars,
    /// Last-N completed requests, whatever their latency.
    flight_ring: FlightRing,
    /// Hot-path histograms, resolved once: the registry's by-name lookup
    /// (lock + string scan) is too heavy to repeat per request.
    queue_wait_us: std::sync::Arc<qos_obs::Histogram>,
    deadline_slack_us: std::sync::Arc<qos_obs::Histogram>,
    /// Incident dump sink (file-backed when started with a flight config).
    flight: FlightRecorder,
    /// Cooldown clock for automatic dumps.
    last_dump: Mutex<Option<Instant>>,
}

impl PlaneState {
    /// Mirrors the plane's counters into the process-global registry so
    /// `/metrics` scrapes and snapshots carry `serve.*` families alongside
    /// the service/engine instrumentation.
    fn publish_metrics(&self) {
        let stats = self.counters.snapshot();
        let global = qos_obs::global();
        for (name, value) in [
            ("serve.accepted", stats.accepted),
            ("serve.requests", stats.requests),
            ("serve.ok", stats.ok),
            ("serve.client_errors", stats.client_errors),
            ("serve.rejected_overload", stats.rejected_overload),
            ("serve.rejected_deadline", stats.rejected_deadline),
            ("serve.rejected_draining", stats.rejected_draining),
            ("serve.worker_panics", stats.worker_panics),
            ("serve.io_errors", stats.io_errors),
            ("serve.idle_closed", stats.idle_closed),
            ("serve.observe_queued", stats.observe_queued),
            ("serve.observe_shed", stats.observe_shed),
            ("serve.predictions", stats.predictions),
            ("serve.degraded_answers", stats.degraded_answers),
            ("serve.ranks", stats.ranks),
            ("serve.flight_dumps", self.flight.dumps()),
            ("serve.flight_write_errors", self.flight.write_errors()),
        ] {
            global.counter(name).set(value);
        }
        global
            .gauge("serve.open_connections")
            .set(self.open_connections.load(Ordering::Relaxed) as f64);
        // Mean requests served per admitted connection: the keep-alive
        // reuse signal (1.0 ≙ the old one-request-per-connection plane).
        let per_conn = if stats.accepted > 0 {
            stats.requests as f64 / stats.accepted as f64
        } else {
            0.0
        };
        global.gauge("serve.requests_per_conn").set(per_conn);
        global
            .gauge("serve.draining")
            .set(if self.draining.load(Ordering::Relaxed) {
                1.0
            } else {
                0.0
            });
    }

    fn snapshot(&self) -> Json {
        self.publish_metrics();
        let mut snap = self.service.stats_snapshot();
        snap.set(
            "exemplars",
            Json::Arr(
                self.exemplars
                    .snapshot()
                    .iter()
                    .map(TraceRecord::to_json)
                    .collect(),
            ),
        );
        snap
    }

    /// Extracts (or mints) the trace id for a parsed request. A malformed
    /// client id is *replaced*, never rejected.
    fn trace_id_for(&self, request: &Request) -> String {
        match request.header("x-amf-trace-id") {
            Some(id) if qos_obs::valid_trace_id(id) => id.to_string(),
            _ => qos_obs::mint_trace_id(&self.trace_seq),
        }
    }

    /// Captures the flight recorder's context window (recent records, tail
    /// exemplars, trace events, metrics snapshot) and dumps it. Automatic
    /// triggers (`force == false`) respect the cooldown and return `None`
    /// when suppressed; the manual poke always dumps.
    fn flight_dump(&self, reason: &str, force: bool) -> Option<Json> {
        {
            let mut last = match self.last_dump.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            if !force {
                if let Some(at) = *last {
                    if at.elapsed() < self.config.flight_cooldown {
                        return None;
                    }
                }
            }
            *last = Some(Instant::now());
        }
        let records = self.flight_ring.recent();
        let exemplars = self.exemplars.snapshot();
        let events = qos_obs::global().trace().events();
        let metrics = self.snapshot();
        Some(
            self.flight
                .dump(reason, &records, &exemplars, &events, &metrics),
        )
    }
}

/// The serving plane. See the module docs for the request lifecycle.
pub struct ServePlane {
    state: Arc<PlaneState>,
    addr: SocketAddr,
    waker: Arc<Waker>,
    poller: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServePlane {
    /// Binds `addr` (port 0 for ephemeral) and starts the poller and the
    /// worker pool.
    ///
    /// # Errors
    ///
    /// Returns the bind/spawn error.
    pub fn start(
        addr: &str,
        service: Arc<QosPredictionService>,
        config: ServeConfig,
    ) -> std::io::Result<Self> {
        Self::start_with_flight(addr, service, config, FlightConfig::default())
    }

    /// [`ServePlane::start`] with a file-backed flight recorder: incident
    /// dumps (worker panic, drift alarm, SLO burst, `POST /debug/dump`)
    /// are appended as `amf-flight/v1` JSONL to `flight.path`.
    ///
    /// # Errors
    ///
    /// Returns the bind/spawn error.
    pub fn start_with_flight(
        addr: &str,
        service: Arc<QosPredictionService>,
        config: ServeConfig,
        flight: FlightConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        let state = Arc::new(PlaneState {
            service,
            config,
            counters: Counters::default(),
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            open_connections: AtomicU64::new(0),
            queue: EdfQueue::new(config.max_pending.max(1)),
            trace_seq: AtomicU64::new(config.trace_seed),
            exemplars: TailExemplars::new(config.exemplar_capacity),
            flight_ring: FlightRing::new(config.flight_ring_capacity),
            queue_wait_us: qos_obs::global().histogram("serve.queue_wait_us"),
            deadline_slack_us: qos_obs::global().histogram("serve.deadline_slack_us"),
            flight: FlightRecorder::new(flight),
            last_dump: Mutex::new(None),
        });

        let (waker, wake_rx) = poller::wake_pair()?;
        let waker = Arc::new(waker);
        let (completion_tx, completion_rx) = mpsc::channel::<Completion>();

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for i in 0..config.workers.max(1) {
            let worker_state = Arc::clone(&state);
            let tx = completion_tx.clone();
            let worker_waker = Arc::clone(&waker);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("amf-serve-worker-{i}"))
                    .spawn(move || worker_loop(&worker_state, &tx, &worker_waker))?,
            );
        }
        drop(completion_tx);

        let poll_state = Arc::clone(&state);
        let poller = std::thread::Builder::new()
            .name("amf-serve-poller".into())
            .spawn(move || poller_loop(&poll_state, &listener, wake_rx, &completion_rx))?;

        qos_obs::global()
            .trace()
            .event("serve_plane_start", bound.to_string());
        Ok(Self {
            state,
            addr: bound,
            waker,
            poller: Some(poller),
            workers,
        })
    }

    /// The bound address (the real port for port-0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current operational counters.
    pub fn stats(&self) -> ServeStats {
        self.state.counters.snapshot()
    }

    /// Connections currently held in the table.
    pub fn open_connections(&self) -> u64 {
        self.state.open_connections.load(Ordering::Relaxed)
    }

    /// Whether the plane is draining (stop initiated).
    pub fn draining(&self) -> bool {
        self.state.draining.load(Ordering::Relaxed)
    }

    /// Graceful drain: stop admitting, flush every queued and in-flight
    /// request (responses carry `Connection: close`), join all threads,
    /// publish a final snapshot. Returns the final counters.
    pub fn stop(mut self) -> ServeStats {
        self.shutdown();
        self.state.counters.snapshot()
    }

    fn shutdown(&mut self) {
        let Some(poller) = self.poller.take() else {
            return;
        };
        // Order matters: draining first (healthz flips, late requests get
        // 503), then stop + queue close so workers flush every admitted
        // job and exit, then wake the poller so it observes the flags
        // without waiting out its tick.
        self.state.draining.store(true, Ordering::SeqCst);
        self.state.stop.store(true, Ordering::SeqCst);
        self.state.queue.close();
        self.waker.wake();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Workers are gone; every completion is in the channel. Wake once
        // more so the poller flushes them all and winds down.
        self.waker.wake();
        let _ = poller.join();
        self.state.publish_metrics();
        qos_obs::global()
            .trace()
            .event("serve_plane_stop", self.addr.to_string());
    }
}

impl Drop for ServePlane {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ServePlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServePlane")
            .field("addr", &self.addr)
            .field("stats", &self.stats())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

fn worker_loop(state: &PlaneState, completions: &mpsc::Sender<Completion>, waker: &Waker) {
    while let Some(mut job) = state.queue.pop() {
        let wait = job.enqueued.elapsed();
        state
            .queue_wait_us
            .record(u64::try_from(wait.as_micros()).unwrap_or(u64::MAX));
        job.stages.set(
            StageClock::QUEUE,
            u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX),
        );

        let mut now = Instant::now();
        let response = if now > job.expires {
            // Reject-after-wait: the queue time burned the whole budget —
            // the client has given up; serving it would be wasted work.
            CompletedResponse::new(
                503,
                "application/json",
                error_body("deadline exceeded in queue"),
                job.keep_alive_wanted,
                RespKind::RejDeadline,
            )
        } else {
            // A panic in one request's handler must never take down the
            // pool; it is counted, answered 500, and the worker moves on.
            let started = now;
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                route(&job.request, state, job.expires)
            }));
            now = Instant::now();
            job.stages.set(
                StageClock::EXECUTE,
                u64::try_from(
                    now.checked_duration_since(started)
                        .unwrap_or(Duration::ZERO)
                        .as_nanos(),
                )
                .unwrap_or(u64::MAX),
            );
            match outcome {
                Ok((status, content_type, body)) => CompletedResponse::new(
                    status,
                    content_type,
                    body,
                    job.keep_alive_wanted,
                    RespKind::from_status(status),
                ),
                Err(_) => {
                    state.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
                    qos_obs::global().trace().event(
                        "serve_worker_panic",
                        format!("endpoint={} trace_id={}", job.endpoint, job.trace_id),
                    );
                    // A handler panic is exactly the incident the flight
                    // recorder exists for: capture the context window now.
                    state.flight_dump("worker_panic", false);
                    CompletedResponse::new(
                        500,
                        "application/json",
                        error_body("internal error"),
                        // A panicked handler leaves no framing doubt, but
                        // trust is gone: close the connection.
                        false,
                        RespKind::Panic,
                    )
                }
            }
        };
        let slack_us = match job.expires.checked_duration_since(now) {
            Some(left) => i64::try_from(left.as_micros()).unwrap_or(i64::MAX),
            None => now
                .checked_duration_since(job.expires)
                .and_then(|over| i64::try_from(over.as_micros()).ok())
                .map_or(i64::MIN, |over| -over),
        };
        let response = response.with_trace(TraceRecord {
            trace_id: std::mem::take(&mut job.trace_id),
            endpoint: job.endpoint,
            status: 0, // bound at flush
            stages: job.stages,
            deadline_slack_us: slack_us,
        });
        if completions
            .send(Completion {
                conn_id: job.conn_id,
                gen: job.gen,
                seq: job.seq,
                response,
            })
            .is_err()
        {
            return;
        }
        waker.wake();
    }
}

// ---------------------------------------------------------------------------
// Poller (event loop)
// ---------------------------------------------------------------------------

enum Token {
    Waker,
    Listener,
    Conn(usize),
}

struct ConnTable {
    slots: Vec<Option<ConnState>>,
    free: Vec<usize>,
    open: usize,
    next_gen: u64,
}

impl ConnTable {
    fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            open: 0,
            next_gen: 1,
        }
    }

    fn insert(&mut self, stream: TcpStream, peer: SocketAddr, now: Instant) -> usize {
        let gen = self.next_gen;
        self.next_gen += 1;
        let conn = ConnState::new(stream, peer, gen, now);
        self.open += 1;
        if let Some(id) = self.free.pop() {
            self.slots[id] = Some(conn);
            id
        } else {
            self.slots.push(Some(conn));
            self.slots.len() - 1
        }
    }

    fn close(&mut self, id: usize) {
        if self.slots[id].take().is_some() {
            self.free.push(id);
            self.open -= 1;
        }
    }
}

fn poller_loop(
    state: &PlaneState,
    listener: &TcpListener,
    mut wake_rx: WakeReceiver,
    completions: &mpsc::Receiver<Completion>,
) {
    let config = state.config;
    let mut table = ConnTable::new();
    let mut fds: Vec<PollFd> = Vec::new();
    let mut tokens: Vec<Token> = Vec::new();
    let mut ready_reads: Vec<usize> = Vec::new();
    let mut drain_started: Option<Instant> = None;
    let drain_grace = config.io_timeout.max(Duration::from_millis(250)) + Duration::from_secs(2);
    // Flight-recorder maintenance cadence: exemplar-window rotation plus
    // the drift-alarm and SLO-burst triggers, once per interval.
    const FLIGHT_INTERVAL: Duration = Duration::from_secs(1);
    let mut last_interval = Instant::now();
    let mut prev_drift = {
        let (user_alarms, service_alarms) = state.service.drift_alarms();
        user_alarms + service_alarms
    };
    let mut prev_requests = 0u64;
    let mut prev_deadline_rejects = 0u64;

    loop {
        let draining = state.draining.load(Ordering::SeqCst);
        let stop = state.stop.load(Ordering::SeqCst);
        if stop {
            if drain_started.is_none() {
                drain_started = Some(Instant::now());
            }
            let grace_over = drain_started.is_some_and(|t| t.elapsed() > drain_grace);
            if table.open == 0 || grace_over {
                break; // remaining connections (if any) drop force-closed
            }
        }

        fds.clear();
        tokens.clear();
        fds.push(PollFd::new(&wake_rx, INTEREST_READ));
        tokens.push(Token::Waker);
        // Accept backpressure: at the table cap the listener is simply not
        // polled — new connections queue in the kernel backlog. During a
        // drain the listener stays polled so late arrivals get a prompt
        // `503 draining` instead of a hang.
        if draining || table.open < config.max_connections {
            fds.push(PollFd::new(listener, INTEREST_READ));
            tokens.push(Token::Listener);
        }
        for (id, slot) in table.slots.iter().enumerate() {
            let Some(conn) = slot else { continue };
            let mut interest = 0i16;
            if conn.wants_read(config.max_inflight_per_conn, request_budget(conn, &config)) {
                interest |= INTEREST_READ;
            }
            if conn.wants_write() {
                interest |= INTEREST_WRITE;
            }
            if interest != 0 {
                fds.push(PollFd::new(&conn.stream, interest));
                tokens.push(Token::Conn(id));
            }
        }

        let _ = poller::poll(&mut fds, TICK);
        let now = Instant::now();

        let mut accept_ready = false;
        ready_reads.clear();
        for (fd, token) in fds.iter().zip(tokens.iter()) {
            match token {
                Token::Waker => {
                    if fd.readable() {
                        wake_rx.drain();
                    }
                }
                Token::Listener => accept_ready = fd.readable(),
                Token::Conn(id) => {
                    if fd.readable() {
                        ready_reads.push(*id);
                    }
                }
            }
        }

        // 1. Worker completions — park each response on its connection
        //    (generation-checked so a recycled slot never gets a stale
        //    response).
        while let Ok(completion) = completions.try_recv() {
            if let Some(conn) = table
                .slots
                .get_mut(completion.conn_id)
                .and_then(Option::as_mut)
            {
                if conn.gen == completion.gen {
                    conn.complete(completion.seq, completion.response);
                }
            }
        }

        // 2. New connections.
        if accept_ready {
            accept_burst(state, listener, &mut table, draining, now);
        }

        // 3. Reads: sockets that turned readable, plus buffered pipelines
        //    whose quota freed up.
        for id in 0..table.slots.len() {
            let Some(conn) = table.slots[id].as_mut() else {
                continue;
            };
            let readable = ready_reads.contains(&id);
            let budget = request_budget(conn, &config);
            if !readable && !conn.wants_parse(config.max_inflight_per_conn, budget) {
                continue;
            }
            let (events, outcome) = conn.read_and_parse(
                config.max_body_bytes,
                config.max_inflight_per_conn,
                budget,
                now,
            );
            for event in events {
                match event {
                    ReadEvent::Request(request, seq, timing) => {
                        admit_request(state, conn, id, seq, request, timing, now);
                    }
                    ReadEvent::Error(e, seq) => {
                        state.counters.requests.fetch_add(1, Ordering::Relaxed);
                        conn.complete(
                            seq,
                            reject(
                                e.status().unwrap_or(400),
                                e.message(),
                                RespKind::ClientError,
                            ),
                        );
                    }
                }
            }
            if outcome == ReadOutcome::HardClose {
                if conn.outstanding() > 0 || conn.wants_write() || conn.has_buffered() {
                    state.counters.io_errors.fetch_add(1, Ordering::Relaxed);
                }
                table.close(id);
            }
        }

        // 4. Flush + write + sweep every connection.
        for id in 0..table.slots.len() {
            let Some(conn) = table.slots[id].as_mut() else {
                continue;
            };
            if draining {
                conn.reads_stopped = true;
            }
            absorb_flushed(
                state,
                conn.flush_ready(draining, config.max_requests_per_conn),
            );
            if conn.wants_write() && conn.write_some(now).is_err() {
                state.counters.io_errors.fetch_add(1, Ordering::Relaxed);
                table.close(id);
                continue;
            }
            let Some(conn) = table.slots[id].as_mut() else {
                continue;
            };
            if conn.done() {
                table.close(id);
                continue;
            }
            // Slowloris guard: a request mid-arrival past the read window
            // is answered 408 and the connection winds down.
            if conn
                .partial_since
                .is_some_and(|t| now.duration_since(t) > config.io_timeout)
            {
                let seq = conn.fail_partial();
                state.counters.requests.fetch_add(1, Ordering::Relaxed);
                conn.complete(
                    seq,
                    reject(408, "request read timed out", RespKind::ClientError),
                );
                absorb_flushed(
                    state,
                    conn.flush_ready(draining, config.max_requests_per_conn),
                );
                let _ = conn.write_some(now);
                continue;
            }
            // Write stall: pending bytes but no progress for a full read
            // window — the peer stopped reading; drop it.
            if conn.wants_write() && now.duration_since(conn.last_activity) > config.io_timeout {
                state.counters.io_errors.fetch_add(1, Ordering::Relaxed);
                table.close(id);
                continue;
            }
            // Idle keep-alive reap (drain closes idles immediately).
            let idle_for = now.duration_since(conn.last_activity);
            let idle = conn.outstanding() == 0 && !conn.wants_write() && !conn.has_buffered();
            if idle && (draining || idle_for > config.idle_timeout) {
                if !draining {
                    state.counters.idle_closed.fetch_add(1, Ordering::Relaxed);
                }
                table.close(id);
            }
        }

        // 5. Flight-recorder maintenance: rotate the exemplar window and
        //    evaluate the automatic dump triggers once per interval.
        if now.duration_since(last_interval) >= FLIGHT_INTERVAL {
            last_interval = now;
            state.exemplars.rotate();
            let (user_alarms, service_alarms) = state.service.drift_alarms();
            let drift = user_alarms + service_alarms;
            if drift > prev_drift {
                state.flight_dump("drift_alarm", false);
            }
            prev_drift = drift;
            let requests = state.counters.requests.load(Ordering::Relaxed);
            let deadline_rejects = state.counters.rejected_deadline.load(Ordering::Relaxed);
            let d_requests = requests.saturating_sub(prev_requests);
            let d_rejects = deadline_rejects.saturating_sub(prev_deadline_rejects);
            // Minimum sample floor so a lone reject on a quiet plane does
            // not read as an SLO incident.
            if d_requests >= 20 && d_rejects as f64 / d_requests as f64 > config.slo_dump_threshold
            {
                state.flight_dump("slo_violation", false);
            }
            prev_requests = requests;
            prev_deadline_rejects = deadline_rejects;
        }

        state
            .open_connections
            .store(table.open as u64, Ordering::Relaxed);
    }
    state.open_connections.store(0, Ordering::Relaxed);
}

/// Counts each rendered response and feeds its trace record (when present)
/// into the flight ring and the tail exemplars.
fn absorb_flushed(state: &PlaneState, rendered: Vec<(u16, RespKind, Option<TraceRecord>)>) {
    for (_, kind, trace) in rendered {
        count_response(state, kind);
        if let Some(record) = trace {
            state.exemplars.offer(&record);
            state.flight_ring.push(record);
        }
    }
}

/// Remaining request budget before `max_requests_per_conn` closes `conn`.
fn request_budget(conn: &ConnState, config: &ServeConfig) -> u64 {
    config
        .max_requests_per_conn
        .saturating_sub(conn.served + conn.outstanding())
}

fn accept_burst(
    state: &PlaneState,
    listener: &TcpListener,
    table: &mut ConnTable,
    draining: bool,
    now: Instant,
) {
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                if draining {
                    state
                        .counters
                        .rejected_draining
                        .fetch_add(1, Ordering::Relaxed);
                    reject_inline(state, stream, "draining");
                    continue;
                }
                if table.open >= state.config.max_connections {
                    // Raced past the backpressure gate (burst within one
                    // poll round): shed instead of overfilling the table.
                    state
                        .counters
                        .rejected_overload
                        .fetch_add(1, Ordering::Relaxed);
                    reject_inline(state, stream, "overloaded");
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    state.counters.io_errors.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let _ = stream.set_nodelay(true);
                state.counters.accepted.fetch_add(1, Ordering::Relaxed);
                table.insert(stream, peer, now);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(_) => return,
        }
    }
}

/// Best-effort `503` written synchronously from the poller (short write
/// timeout so a slow peer cannot stall the event loop).
fn reject_inline(state: &PlaneState, mut stream: TcpStream, error: &str) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let bytes = http::render_response(503, "application/json", &error_body(error), false);
    if std::io::Write::write_all(&mut stream, &bytes).is_err() {
        state.counters.io_errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// Parses the deadline header and either fast-rejects inline (bad header,
/// zero budget, queue full, draining) or admits the request into the EDF
/// queue. Every path stamps the request's trace: inline rejects finish
/// their stage clock here; admitted jobs carry it to the worker.
fn admit_request(
    state: &PlaneState,
    conn: &mut ConnState,
    conn_id: usize,
    seq: u64,
    request: Box<Request>,
    timing: ReqTiming,
    now: Instant,
) {
    state.counters.requests.fetch_add(1, Ordering::Relaxed);
    let keep_alive_wanted = request.wants_keep_alive();
    let trace_id = state.trace_id_for(&request);
    let endpoint = endpoint_label(&request);
    let admit_started = Instant::now();
    let mut stages = StageClock::new();
    stages.set(StageClock::ACCEPT, timing.accept_ns);
    stages.set(StageClock::PARSE, timing.parse_ns);
    // Finishes the stage clock for a request answered inline from the
    // poller (never queued, never executed).
    let inline_trace =
        |trace_id: String, endpoint: &'static str, mut stages: StageClock, slack_us: i64| {
            stages.set(
                StageClock::ADMISSION,
                u64::try_from(admit_started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
            TraceRecord {
                trace_id,
                endpoint,
                status: 0, // bound at flush
                stages,
                deadline_slack_us: slack_us,
            }
        };
    let deadline = match request.header("x-amf-deadline-ms") {
        Some(raw) => match raw.parse::<u64>() {
            Ok(ms) => Duration::from_millis(ms).min(state.config.max_deadline),
            Err(_) => {
                conn.complete(
                    seq,
                    respond(
                        400,
                        error_body("bad x-amf-deadline-ms"),
                        RespKind::ClientError,
                        keep_alive_wanted,
                    )
                    .with_trace(inline_trace(trace_id, endpoint, stages, 0)),
                );
                return;
            }
        },
        None => state.config.default_deadline,
    };
    // Slack available at admission: the whole remaining budget. Observed
    // for every request with a well-formed deadline (including the zero
    // budgets below) so reject-on-arrival tuning sees the full
    // distribution.
    let slack_us = i64::try_from(deadline.as_micros()).unwrap_or(i64::MAX);
    state
        .deadline_slack_us
        .record(u64::try_from(deadline.as_micros()).unwrap_or(u64::MAX));
    // Reject-on-arrival: a zero budget can never be met — answer from the
    // poller without spending a queue slot or a worker.
    if deadline.is_zero() {
        conn.complete(
            seq,
            respond(
                503,
                error_body("deadline exceeded in queue"),
                RespKind::RejDeadline,
                keep_alive_wanted,
            )
            .with_trace(inline_trace(trace_id, endpoint, stages, 0)),
        );
        return;
    }
    stages.set(
        StageClock::ADMISSION,
        u64::try_from(admit_started.elapsed().as_nanos()).unwrap_or(u64::MAX),
    );
    let expires = now + deadline;
    let job = Job {
        conn_id,
        gen: conn.gen,
        seq,
        request,
        expires,
        enqueued: now,
        keep_alive_wanted,
        trace_id,
        endpoint,
        stages,
    };
    match state.queue.try_push(expires, job) {
        Ok(()) => {}
        Err(PushError::Full(job)) => conn.complete(
            seq,
            respond(
                503,
                error_body("overloaded"),
                RespKind::RejOverload,
                keep_alive_wanted,
            )
            .with_trace(inline_trace(
                job.trace_id,
                job.endpoint,
                job.stages,
                slack_us,
            )),
        ),
        Err(PushError::Closed(job)) => conn.complete(
            seq,
            respond(
                503,
                error_body("draining"),
                RespKind::RejDraining,
                keep_alive_wanted,
            )
            .with_trace(inline_trace(
                job.trace_id,
                job.endpoint,
                job.stages,
                slack_us,
            )),
        ),
    }
}

fn respond(
    status: u16,
    body: String,
    kind: RespKind,
    keep_alive_wanted: bool,
) -> CompletedResponse {
    CompletedResponse::new(status, "application/json", body, keep_alive_wanted, kind)
}

/// An error response that also ends the connection (protocol trust gone).
fn reject(status: u16, message: &str, kind: RespKind) -> CompletedResponse {
    respond(status, error_body(message), kind, false)
}

/// Status-class accounting, applied exactly once per response at render
/// time (handler-level counters live in the handlers).
fn count_response(state: &PlaneState, kind: RespKind) {
    let counter = match kind {
        RespKind::Ok => &state.counters.ok,
        RespKind::ClientError => &state.counters.client_errors,
        RespKind::RejOverload => &state.counters.rejected_overload,
        RespKind::RejDeadline => &state.counters.rejected_deadline,
        RespKind::RejDraining => &state.counters.rejected_draining,
        // The panic itself was counted by the worker; the 500 is not an
        // ok/client-error/reject.
        RespKind::Panic => return,
    };
    counter.fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Routing (unchanged protocol semantics from the blocking plane)
// ---------------------------------------------------------------------------

type RouteResponse = (u16, String, String);

/// Static trace label for a request's route. Known paths get themselves;
/// everything else shares one label so trace storage never allocates on
/// the hot path and dump cardinality cannot be driven by client paths.
fn endpoint_label(request: &Request) -> &'static str {
    match request.route() {
        "/v1/observe" => "/v1/observe",
        "/v1/predict" => "/v1/predict",
        "/v1/rank" => "/v1/rank",
        "/metrics" => "/metrics",
        "/snapshot.json" => "/snapshot.json",
        "/healthz" => "/healthz",
        "/debug/exemplars" => "/debug/exemplars",
        "/debug/dump" => "/debug/dump",
        _ => "other",
    }
}

fn route(request: &Request, state: &PlaneState, expires: Instant) -> RouteResponse {
    let json = |status: u16, body: String| (status, "application/json".to_string(), body);
    match (request.method.as_str(), request.route()) {
        ("POST", "/v1/observe") => handle_observe(request, state),
        ("POST", "/v1/predict") => handle_predict(request, state, expires),
        ("POST", "/v1/rank") => handle_rank(request, state),
        ("GET", "/metrics") => {
            let snapshot = state.snapshot();
            (
                200,
                qos_obs::CONTENT_TYPE.to_string(),
                qos_obs::render_prometheus(&snapshot),
            )
        }
        ("GET", "/snapshot.json") => json(200, state.snapshot().to_string_compact()),
        ("GET", "/healthz") => json(200, health_body_from(&state.snapshot())),
        ("GET", "/debug/exemplars") => {
            let mut out = Json::obj();
            out.set("schema", Json::Str(SERVE_SCHEMA.into()))
                .set("op", Json::Str("exemplars".into()))
                .set(
                    "exemplars",
                    Json::Arr(
                        state
                            .exemplars
                            .snapshot()
                            .iter()
                            .map(TraceRecord::to_json)
                            .collect(),
                    ),
                );
            json(200, out.to_string_compact())
        }
        ("POST", "/debug/dump") => {
            // The manual flight-recorder poke: always dumps (no cooldown)
            // and answers with the dump document itself so callers can
            // inspect it without file access.
            let doc = state.flight_dump("manual", true).unwrap_or_else(Json::obj);
            json(200, doc.to_string_compact())
        }
        ("GET" | "POST", _) => json(404, error_body("not found")),
        _ => json(405, error_body("method not allowed")),
    }
}

/// `POST /v1/observe` — newline-delimited JSON records. Not idempotent:
/// clients must never retry (DESIGN.md §14 retry-safety table). Garbage
/// lines are counted, never fatal; valid records ride the bounded input
/// queue (load-shedding) and are applied in one batch drain.
fn handle_observe(request: &Request, state: &PlaneState) -> RouteResponse {
    let body = match request.body_str() {
        Ok(body) => body,
        Err(e) => return (400, "application/json".to_string(), error_body(e.message())),
    };
    let mut queued = 0u64;
    let mut shed = 0u64;
    let mut invalid = 0u64;
    for line in body.lines().filter(|l| !l.trim().is_empty()) {
        let Some(record) = parse_observe_line(line) else {
            invalid += 1;
            continue;
        };
        if state.service.offer(record) {
            queued += 1;
        } else {
            shed += 1;
        }
    }
    let applied = state.service.drain_inputs() as u64;
    state
        .counters
        .observe_queued
        .fetch_add(queued, Ordering::Relaxed);
    state
        .counters
        .observe_shed
        .fetch_add(shed, Ordering::Relaxed);
    let mut out = Json::obj();
    out.set("schema", Json::Str(SERVE_SCHEMA.into()))
        .set("op", Json::Str("observe".into()))
        .set("queued", Json::UInt(queued))
        .set("shed", Json::UInt(shed))
        .set("invalid", Json::UInt(invalid))
        .set("applied", Json::UInt(applied));
    (200, "application/json".to_string(), out.to_string_compact())
}

fn parse_observe_line(line: &str) -> Option<qos_service::QosRecord> {
    let parsed = Json::parse(line).ok()?;
    let user = parsed.get("user")?.as_str()?.to_string();
    let service = parsed.get("service")?.as_str()?.to_string();
    let timestamp = parsed.get("timestamp").and_then(Json::as_u64).unwrap_or(0);
    // `null` (JSON's only spelling of a non-finite float) maps to NaN so
    // the value still reaches the guard and is *counted* as quarantined
    // garbage rather than silently vanishing at the protocol layer.
    let value = match parsed.get("value") {
        Some(Json::Null) => f64::NAN,
        Some(v) => v.as_f64()?,
        None => return None,
    };
    Some(qos_service::QosRecord {
        user,
        service,
        timestamp,
        value,
    })
}

/// `POST /v1/predict` — newline-delimited `{"user","service"}` pairs.
/// Idempotent (read-only): safe to retry. Every answer is a degraded-mode
/// prediction tagged with its fallback-ladder source; the deadline budget
/// is re-checked between items.
fn handle_predict(request: &Request, state: &PlaneState, expires: Instant) -> RouteResponse {
    let body = match request.body_str() {
        Ok(body) => body,
        Err(e) => return (400, "application/json".to_string(), error_body(e.message())),
    };
    let mut results = Vec::new();
    let mut invalid = 0u64;
    let mut degraded = 0u64;
    for line in body.lines().filter(|l| !l.trim().is_empty()) {
        if Instant::now() > expires {
            // Budget burned mid-batch: a partial answer is not a valid
            // prediction set, and predict is idempotent — fail cleanly and
            // let the client retry with a fresh budget.
            return (
                503,
                "application/json".to_string(),
                error_body("deadline exceeded mid-batch"),
            );
        }
        let pair = Json::parse(line).ok().and_then(|parsed| {
            let user = parsed.get("user")?.as_str()?.to_string();
            let service = parsed.get("service")?.as_str()?.to_string();
            Some((user, service))
        });
        let Some((user, service)) = pair else {
            invalid += 1;
            continue;
        };
        let prediction = state.service.predict_degraded(&user, &service);
        if !prediction.source.is_model() {
            degraded += 1;
        }
        let mut entry = Json::obj();
        entry
            .set("user", Json::Str(user))
            .set("service", Json::Str(service))
            .set("value", Json::Num(prediction.value))
            .set("source", Json::Str(prediction.source.label().into()));
        results.push(entry);
    }
    state
        .counters
        .predictions
        .fetch_add(results.len() as u64, Ordering::Relaxed);
    state
        .counters
        .degraded_answers
        .fetch_add(degraded, Ordering::Relaxed);
    let mut out = Json::obj();
    out.set("schema", Json::Str(SERVE_SCHEMA.into()))
        .set("op", Json::Str("predict".into()))
        .set("invalid", Json::UInt(invalid))
        .set("degraded", Json::UInt(degraded))
        .set("results", Json::Arr(results));
    (200, "application/json".to_string(), out.to_string_compact())
}

/// `POST /v1/rank` — one JSON object `{"user": ..., "k": ...}`. Idempotent
/// (read-only): safe to retry. An unknown user is a clean `422`, not a
/// degraded guess — ranking candidates for nobody is a caller bug.
fn handle_rank(request: &Request, state: &PlaneState) -> RouteResponse {
    let json = |status: u16, body: String| (status, "application/json".to_string(), body);
    let body = match request.body_str() {
        Ok(body) => body,
        Err(e) => return json(400, error_body(e.message())),
    };
    let Ok(parsed) = Json::parse(body.trim()) else {
        return json(400, error_body("rank body is not valid JSON"));
    };
    let Some(user) = parsed.get("user").and_then(Json::as_str) else {
        return json(400, error_body("rank body missing \"user\""));
    };
    let k = parsed
        .get("k")
        .and_then(Json::as_u64)
        .unwrap_or(5)
        .min(1000) as usize;
    match state.service.rank_candidates(user, k) {
        Ok(ranked) => {
            state.counters.ranks.fetch_add(1, Ordering::Relaxed);
            let results = ranked
                .into_iter()
                .map(|(service, value)| {
                    let mut entry = Json::obj();
                    entry
                        .set("service", Json::Str(service))
                        .set("value", Json::Num(value));
                    entry
                })
                .collect();
            let mut out = Json::obj();
            out.set("schema", Json::Str(SERVE_SCHEMA.into()))
                .set("op", Json::Str("rank".into()))
                .set("user", Json::Str(user.to_string()))
                .set("results", Json::Arr(results));
            json(200, out.to_string_compact())
        }
        Err(e) => json(422, error_body_owned(e.to_string())),
    }
}

fn error_body(message: &str) -> String {
    error_body_owned(message.to_string())
}

fn error_body_owned(message: String) -> String {
    let mut out = Json::obj();
    out.set("schema", Json::Str(SERVE_SCHEMA.into()))
        .set("error", Json::Str(message));
    out.to_string_compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_service::ServiceConfig;
    use std::io::{Read, Write};

    fn test_plane(config: ServeConfig) -> ServePlane {
        let service = Arc::new(QosPredictionService::new(ServiceConfig {
            input_queue_capacity: 1024,
            ..ServiceConfig::default()
        }));
        ServePlane::start("127.0.0.1:0", service, config).expect("bind")
    }

    /// Writes `raw`, half-closes, and reads everything the server sends
    /// (the EOF makes the keep-alive server flush and close).
    fn raw_request(addr: SocketAddr, raw: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    fn post(addr: SocketAddr, path: &str, body: &str, headers: &str) -> (u16, String) {
        let (status, _, body) = post_with_head(addr, path, body, headers);
        (status, body)
    }

    fn post_with_head(
        addr: SocketAddr,
        path: &str,
        body: &str,
        headers: &str,
    ) -> (u16, String, String) {
        let raw = format!(
            "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n{headers}\r\n{body}",
            body.len()
        );
        let response = raw_request(addr, raw.as_bytes());
        let (head, body) = response.split_once("\r\n\r\n").expect("blank line");
        let status = head
            .split_whitespace()
            .nth(1)
            .expect("status")
            .parse()
            .unwrap();
        (status, head.to_string(), body.to_string())
    }

    /// Case-insensitive header lookup in a raw response head.
    fn header_value(head: &str, name: &str) -> Option<String> {
        head.lines().find_map(|line| {
            let (key, value) = line.split_once(':')?;
            key.trim()
                .eq_ignore_ascii_case(name)
                .then(|| value.trim().to_string())
        })
    }

    /// Reads exactly one response off an open keep-alive stream.
    fn read_one_response(stream: &mut TcpStream) -> (u16, String) {
        let (status, _, body) = read_one_response_full(stream);
        (status, body)
    }

    /// Like [`read_one_response`], also returning the raw head.
    fn read_one_response_full(stream: &mut TcpStream) -> (u16, String, String) {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        let (head_end, body_len) = loop {
            if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = std::str::from_utf8(&buf[..pos]).unwrap();
                let len = head
                    .lines()
                    .find_map(|l| {
                        l.to_ascii_lowercase()
                            .strip_prefix("content-length:")
                            .map(str::to_string)
                    })
                    .and_then(|v| v.trim().parse::<usize>().ok())
                    .unwrap_or(0);
                break (pos + 4, len);
            }
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "EOF before response head");
            buf.extend_from_slice(&chunk[..n]);
        };
        while buf.len() < head_end + body_len {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "EOF before response body");
            buf.extend_from_slice(&chunk[..n]);
        }
        let head = std::str::from_utf8(&buf[..head_end]).unwrap().to_string();
        let status = head.split_whitespace().nth(1).unwrap().parse().unwrap();
        let body = String::from_utf8(buf[head_end..head_end + body_len].to_vec()).unwrap();
        (status, head, body)
    }

    #[test]
    fn observe_predict_rank_round_trip() {
        let plane = test_plane(ServeConfig::default());
        let addr = plane.local_addr();
        let mut observations = String::new();
        for t in 0..60u64 {
            observations.push_str(&format!(
                "{{\"user\":\"u{}\",\"service\":\"s{}\",\"timestamp\":{t},\"value\":{}}}\n",
                t % 3,
                t % 4,
                0.5 + (t % 5) as f64
            ));
        }
        let (status, body) = post(addr, "/v1/observe", &observations, "");
        assert_eq!(status, 200, "{body}");
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(parsed.get("queued").and_then(Json::as_u64), Some(60));
        assert_eq!(parsed.get("applied").and_then(Json::as_u64), Some(60));
        assert_eq!(parsed.get("shed").and_then(Json::as_u64), Some(0));

        let (status, body) = post(
            addr,
            "/v1/predict",
            "{\"user\":\"u0\",\"service\":\"s1\"}\n{\"user\":\"ghost\",\"service\":\"s1\"}\n",
            "",
        );
        assert_eq!(status, 200, "{body}");
        let parsed = Json::parse(&body).unwrap();
        let results = parsed.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(results.len(), 2);
        for entry in results {
            let value = entry.get("value").and_then(Json::as_f64).unwrap();
            assert!(value.is_finite());
            assert!(entry.get("source").and_then(Json::as_str).is_some());
        }

        let (status, body) = post(addr, "/v1/rank", "{\"user\":\"u0\",\"k\":2}", "");
        assert_eq!(status, 200, "{body}");
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(
            parsed
                .get("results")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );

        let stats = plane.stop();
        assert_eq!(stats.worker_panics, 0);
        assert_eq!(stats.ok, 3);
        assert_eq!(stats.predictions, 2);
        assert_eq!(stats.ranks, 1);
        assert!(stats.degraded_answers >= 1, "ghost user degrades");
    }

    #[test]
    fn client_trace_ids_echo_and_minted_ids_are_stable_format() {
        let plane = test_plane(ServeConfig::default());
        let addr = plane.local_addr();

        // A well-formed client id is echoed verbatim.
        let observe = "{\"user\":\"u0\",\"service\":\"s0\",\"timestamp\":1,\"value\":0.5}\n";
        let (status, head, _) = post_with_head(
            addr,
            "/v1/observe",
            observe,
            "x-amf-trace-id: my-trace.01\r\n",
        );
        assert_eq!(status, 200);
        assert_eq!(
            header_value(&head, "x-amf-trace-id").as_deref(),
            Some("my-trace.01")
        );
        // The stage breakdown header parses back through the shared codec.
        let stage_us = header_value(&head, "x-amf-stage-us").expect("stage header");
        let parsed = qos_obs::StageClock::parse_header_us(&stage_us).expect("parseable stages");
        assert!(parsed.iter().sum::<u64>() > 0, "{stage_us}");

        // Without a client id the server mints one (amf-<16 hex>).
        let (status, head, _) = post_with_head(addr, "/v1/observe", observe, "");
        assert_eq!(status, 200);
        let minted = header_value(&head, "x-amf-trace-id").expect("minted id");
        assert!(minted.starts_with("amf-"), "{minted}");
        assert_eq!(minted.len(), 4 + 16, "{minted}");

        plane.stop();
    }

    #[test]
    fn malformed_trace_ids_are_replaced_not_rejected() {
        let plane = test_plane(ServeConfig::default());
        let addr = plane.local_addr();
        for bad in ["has space", "semi;colon", &"x".repeat(65)] {
            let (status, head, body) = post_with_head(
                addr,
                "/v1/observe",
                "{\"user\":\"u0\",\"service\":\"s0\",\"timestamp\":1,\"value\":0.5}\n",
                &format!("x-amf-trace-id: {bad}\r\n"),
            );
            assert_eq!(status, 200, "'{bad}' must not 400: {body}");
            let echoed = header_value(&head, "x-amf-trace-id").expect("id header");
            assert_ne!(echoed, bad, "malformed id must be replaced");
            assert!(echoed.starts_with("amf-"), "{echoed}");
        }
        plane.stop();
    }

    #[test]
    fn pipelined_trace_ids_come_back_in_request_order() {
        let plane = test_plane(ServeConfig::default());
        // Three pipelined requests in one write, distinct trace ids.
        let mut batch = String::new();
        for id in ["t-a", "t-b", "t-c"] {
            batch.push_str(&format!(
                "GET /healthz HTTP/1.1\r\nHost: x\r\nx-amf-trace-id: {id}\r\n\r\n"
            ));
        }
        let raw = raw_request(plane.local_addr(), batch.as_bytes());
        // Walk the concatenated responses in arrival order.
        let mut rest = raw.as_str();
        for id in ["t-a", "t-b", "t-c"] {
            let (head, tail) = rest.split_once("\r\n\r\n").expect("response head");
            assert!(head.contains(" 200 "), "{head}");
            assert_eq!(
                header_value(head, "x-amf-trace-id").as_deref(),
                Some(id),
                "responses must flush in request order"
            );
            let body_len: usize = header_value(head, "content-length")
                .and_then(|v| v.parse().ok())
                .expect("content-length");
            rest = &tail[body_len..];
        }
        let stats = plane.stop();
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.ok, 3);
    }

    #[test]
    fn exemplars_and_slack_histogram_surface_after_traffic() {
        let plane = test_plane(ServeConfig::default());
        let addr = plane.local_addr();
        for i in 0..6 {
            let (status, _) = post(
                addr,
                "/v1/observe",
                &format!(
                    "{{\"user\":\"u{i}\",\"service\":\"s0\",\"timestamp\":1,\"value\":0.5}}\n"
                ),
                "x-amf-deadline-ms: 400\r\n",
            );
            assert_eq!(status, 200);
        }
        // /debug/exemplars exposes the slowest recent requests with ids.
        let response = raw_request(addr, b"GET /debug/exemplars HTTP/1.1\r\nHost: x\r\n\r\n");
        let (_, body) = response.split_once("\r\n\r\n").unwrap();
        let parsed = Json::parse(body).unwrap();
        let exemplars = parsed.get("exemplars").and_then(Json::as_arr).unwrap();
        assert!(!exemplars.is_empty());
        for ex in exemplars {
            assert!(ex.get("trace_id").and_then(Json::as_str).is_some());
            assert!(ex.get("total_us").and_then(Json::as_u64).is_some());
            assert!(ex.get("stages_us").is_some());
        }
        // The deadline-slack histogram rendered into /metrics.
        let metrics = raw_request(addr, b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(
            metrics.contains("amf_serve_deadline_slack_us_bucket"),
            "slack histogram missing from exposition"
        );
        plane.stop();
    }

    #[test]
    fn manual_dump_returns_inline_flight_document() {
        let plane = test_plane(ServeConfig::default());
        let addr = plane.local_addr();
        let (status, body) = post(
            addr,
            "/v1/observe",
            "{\"user\":\"u0\",\"service\":\"s0\",\"timestamp\":1,\"value\":0.5}\n",
            "",
        );
        assert_eq!(status, 200, "{body}");
        let (status, body) = post(addr, "/debug/dump", "", "");
        assert_eq!(status, 200, "{body}");
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("amf-flight/v1")
        );
        assert_eq!(parsed.get("reason").and_then(Json::as_str), Some("manual"));
        assert!(!parsed
            .get("records")
            .and_then(Json::as_arr)
            .unwrap()
            .is_empty());
        plane.stop();
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        let plane = test_plane(ServeConfig::default());
        let mut stream = TcpStream::connect(plane.local_addr()).unwrap();
        for round in 0..5 {
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            let (status, body) = read_one_response(&mut stream);
            assert_eq!(status, 200, "round {round}: {body}");
        }
        let stats = plane.stop();
        assert_eq!(stats.accepted, 1, "one connection served every request");
        assert_eq!(stats.ok, 5);
    }

    #[test]
    fn zero_deadline_is_rejected_on_arrival() {
        let plane = test_plane(ServeConfig::default());
        let addr = plane.local_addr();
        let (status, body) = post(
            addr,
            "/v1/predict",
            "{\"user\":\"u\",\"service\":\"s\"}\n",
            "x-amf-deadline-ms: 0\r\n",
        );
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("deadline"));
        let stats = plane.stop();
        assert_eq!(stats.rejected_deadline, 1);
        assert_eq!(stats.worker_panics, 0);
    }

    #[test]
    fn bad_deadline_header_is_400() {
        let plane = test_plane(ServeConfig::default());
        let (status, body) = post(
            plane.local_addr(),
            "/v1/predict",
            "{}",
            "x-amf-deadline-ms: soon\r\n",
        );
        assert_eq!(status, 400, "{body}");
        plane.stop();
    }

    #[test]
    fn unknown_rank_user_is_422_and_routes_404_405() {
        let plane = test_plane(ServeConfig::default());
        let addr = plane.local_addr();
        let (status, _) = post(addr, "/v1/rank", "{\"user\":\"nobody\"}", "");
        assert_eq!(status, 422);
        let (status, _) = post(addr, "/v1/unknown", "{}", "");
        assert_eq!(status, 404);
        let response = raw_request(addr, b"DELETE /v1/rank HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 405"));
        let stats = plane.stop();
        assert_eq!(stats.worker_panics, 0);
    }

    #[test]
    fn health_metrics_snapshot_served() {
        let plane = test_plane(ServeConfig::default());
        let addr = plane.local_addr();
        let health = raw_request(addr, b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        assert!(health.contains("\"status\":\"ok\""), "{health}");
        let metrics = raw_request(addr, b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(
            metrics.contains("amf_serve_requests"),
            "serve counters exported"
        );
        assert!(
            metrics.contains("amf_serve_open_connections"),
            "connection gauge exported: {}",
            &metrics[..metrics.len().min(400)]
        );
        let snapshot = raw_request(addr, b"GET /snapshot.json HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(snapshot.contains(qos_obs::SCHEMA));
        plane.stop();
    }

    #[test]
    fn drain_is_graceful_and_port_released() {
        let plane = test_plane(ServeConfig::default());
        let addr = plane.local_addr();
        let (status, _) = post(
            addr,
            "/v1/observe",
            "{\"user\":\"u\",\"service\":\"s\",\"value\":1.0}\n",
            "",
        );
        assert_eq!(status, 200);
        let stats = plane.stop();
        assert_eq!(stats.worker_panics, 0);
        // Fully drained: the port rebinds immediately.
        assert!(
            TcpListener::bind(addr).is_ok(),
            "port still held after stop"
        );
    }

    #[test]
    fn drain_does_not_hang_on_idle_keep_alive_client() {
        // The PR 8 drain regression: an idle persistent connection (no
        // request in flight, no EOF) must not block stop().
        let plane = test_plane(ServeConfig::default());
        let mut stream = TcpStream::connect(plane.local_addr()).unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let (status, _) = read_one_response(&mut stream);
        assert_eq!(status, 200);
        // The connection now sits idle; stop() must still return promptly.
        let started = Instant::now();
        let stats = plane.stop();
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "drain hung on an idle keep-alive client: {:?}",
            started.elapsed()
        );
        assert_eq!(stats.worker_panics, 0);
        // And the idle client observes the close.
        let mut rest = Vec::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let _ = stream.read_to_end(&mut rest);
    }

    #[test]
    fn repeated_start_stop_never_hangs() {
        // The drain-path regression pin (poller shape): shutdown must
        // terminate promptly every time, scrape or no scrape.
        for round in 0..25 {
            let plane = test_plane(ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            });
            if round % 3 == 0 {
                let health = raw_request(plane.local_addr(), b"GET /healthz HTTP/1.1\r\n\r\n");
                assert!(health.starts_with("HTTP/1.1 200"));
            }
            let stats = plane.stop();
            assert_eq!(stats.worker_panics, 0, "round {round}");
        }
    }
}
