//! Hardened serving plane for the QoS prediction service (ROADMAP item 3).
//!
//! Everything before this crate assumed callers hold a
//! [`qos_service::QosPredictionService`] in-process; a runtime-adaptation
//! loop talks to the predictor over a socket, under real traffic, while
//! parts of the system are unhealthy. This crate is that edge, std-only:
//!
//! * [`ServePlane`] — an HTTP/1.1 endpoint for `observe` / `predict` /
//!   `rank` batches (newline-delimited JSON bodies, reusing [`qos_obs::Json`])
//!   plus the observability routes (`/metrics`, `/healthz`,
//!   `/snapshot.json`). A fixed worker pool feeds the prediction service; a
//!   bounded accept queue gives **two-level admission control** (fast-reject
//!   `503` when the queue is full, degraded-but-answered predictions via the
//!   fallback ladder while the engine is unhealthy); **per-request
//!   deadlines** (`x-amf-deadline-ms`) propagate as a budget — a request
//!   whose queue wait already exceeds its budget is rejected on arrival
//!   without touching the model, and batch handlers re-check the budget
//!   between items. Connections are hardened: read/write timeouts, a head
//!   cap, a body cap, and malformed-request `400`s that never panic.
//!   Shutdown is a **graceful drain**: stop accepting, flush in-flight
//!   requests, publish a final snapshot.
//! * [`http`] — the minimal request reader / response writer behind it,
//!   written for hostile input (truncated heads, bad `Content-Length`,
//!   oversized bodies, early FIN).
//! * [`client`] + [`loadgen`] — the load harness: a closed/open-loop
//!   generator with per-request timeouts, bounded retry (idempotent
//!   `predict`/`rank` only — `observe` is never retried) with exponential
//!   backoff + jitter, and deterministic network-fault injection
//!   ([`amf_core::NetFault`]: conn-reset, slow-read, black-hole) so the
//!   hardening claims are measured, not asserted (`BENCH_SERVE.json`,
//!   schema `amf-bench-serve/v1`).
//!
//! The protocol and its retry-safety rules are specified in DESIGN.md §14.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod client;
pub mod http;
pub mod loadgen;
pub mod plane;

pub use client::{ClientConfig, ClientError, HttpResponse, ServeClient};
pub use loadgen::{LoadConfig, LoadMode, LoadReport, LoadRunner, BENCH_SERVE_SCHEMA};
pub use plane::{ServeConfig, ServePlane, ServeStats, SERVE_SCHEMA};
