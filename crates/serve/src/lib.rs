//! Hardened serving plane for the QoS prediction service (ROADMAP item 3).
//!
//! Everything before this crate assumed callers hold a
//! [`qos_service::QosPredictionService`] in-process; a runtime-adaptation
//! loop talks to the predictor over a socket, under real traffic, while
//! parts of the system are unhealthy. This crate is that edge, std-only:
//!
//! * [`ServePlane`] — an HTTP/1.1 endpoint for `observe` / `predict` /
//!   `rank` batches (newline-delimited JSON bodies, reusing [`qos_obs::Json`])
//!   plus the observability routes (`/metrics`, `/healthz`,
//!   `/snapshot.json`). A fixed worker pool feeds the prediction service; a
//!   bounded accept queue gives **two-level admission control** (fast-reject
//!   `503` when the queue is full, degraded-but-answered predictions via the
//!   fallback ladder while the engine is unhealthy); **per-request
//!   deadlines** (`x-amf-deadline-ms`) propagate as a budget — a request
//!   whose queue wait already exceeds its budget is rejected on arrival
//!   without touching the model, and batch handlers re-check the budget
//!   between items. Connections are hardened: read/write timeouts, a head
//!   cap, a body cap, and malformed-request `400`s that never panic.
//!   Shutdown is a **graceful drain**: stop accepting, flush in-flight
//!   requests, publish a final snapshot.
//! * [`http`] — the incremental, buffer-based request parser / response
//!   renderer behind it, written for hostile input (truncated heads, bad
//!   `Content-Length`, oversized bodies, early FIN) and for pipelining
//!   (leftover bytes after one request are the next request).
//! * [`poller`] + [`conn`] + [`edf`] — the readiness-loop machinery
//!   (PR 8): a std-only `poll(2)` binding with a cross-thread waker, the
//!   per-connection state machine (keep-alive, in-order pipelined
//!   responses, read backpressure), and the earliest-deadline-first
//!   pending queue that replaced FIFO ordering.
//! * [`client`] + [`loadgen`] — the load harness: a closed/open-loop
//!   generator with per-connection and keep-alive transports, per-request
//!   timeouts, bounded retry (idempotent `predict`/`rank` only —
//!   `observe` is never retried) with exponential backoff + jitter, and
//!   deterministic network-fault injection ([`amf_core::NetFault`]:
//!   conn-reset, slow-read, black-hole) so the hardening claims are
//!   measured, not asserted (`BENCH_SERVE.json`, schema
//!   `amf-bench-serve/v3`).
//!
//! Every request carries a trace id (client-supplied `x-amf-trace-id` or
//! minted) and a per-stage [`qos_obs::StageClock`] breakdown echoed as
//! `x-amf-stage-us`; the slowest requests per interval surface as tail
//! exemplars (`/debug/exemplars`), and a black-box flight recorder dumps
//! recent traces + metrics as `amf-flight/v1` JSONL on worker panic, drift
//! alarm, SLO bursts, or `POST /debug/dump` (DESIGN.md §17).
//!
//! The protocol and its retry-safety rules are specified in DESIGN.md §14;
//! the connection state machine and EDF semantics in §15; the trace model
//! in §17.

// The only unsafe in the crate is the single `poll(2)` FFI call in
// `poller::sys` (std offers no readiness API); everything else stays
// forbidden by the deny + the module-scoped allow.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod client;
pub mod conn;
pub mod edf;
pub mod http;
pub mod loadgen;
pub mod plane;
pub mod poller;

pub use client::{ClientConfig, ClientError, HttpResponse, KeepAliveClient, ServeClient};
pub use edf::{EdfQueue, PushError};
pub use loadgen::{
    LoadConfig, LoadMode, LoadReport, LoadRunner, StageReconciliation, BENCH_SERVE_SCHEMA,
};
pub use plane::{ServeConfig, ServePlane, ServeStats, SERVE_SCHEMA};
