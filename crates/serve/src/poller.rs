//! Readiness primitives for the serving plane's event loop: a thin,
//! std-only binding to `poll(2)` plus a cross-thread waker.
//!
//! The workspace builds offline with no external crates, so instead of
//! `mio`/`epoll` wrappers this module declares the one libc symbol it
//! needs (`poll` — POSIX, linked into every Rust binary already) behind a
//! safe interface. This is the only `unsafe` in the crate, confined to
//! [`sys`]: a single FFI call whose argument is a `&mut [PollFd]` slice
//! whose pointer/length pair is valid by construction.
//!
//! The [`Waker`] is a self-connected loopback TCP pair (the same idiom the
//! MetricsServer shutdown uses): the poller holds the read end in its
//! `poll` set; workers write one byte to the write end to interrupt a
//! sleeping `poll`. Wakes coalesce — the poller drains the read end each
//! iteration, so N wakes cost at most one syscall storm, never N.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::time::Duration;

/// Readable readiness (or a peer hangup folded in by the caller).
pub const INTEREST_READ: i16 = sys::POLLIN;
/// Writable readiness.
pub const INTEREST_WRITE: i16 = sys::POLLOUT;

/// One registered descriptor + interest set, mirrored from `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// Registers `source` with the given interest bits.
    pub fn new<F: AsRawFd>(source: &F, interest: i16) -> Self {
        Self {
            fd: source.as_raw_fd(),
            events: interest,
            revents: 0,
        }
    }

    /// Whether the descriptor is readable (or the peer hung up / errored —
    /// both surface through a read attempt, which is where the caller
    /// learns the close reason).
    pub fn readable(&self) -> bool {
        self.revents & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) != 0
    }

    /// Whether the descriptor is writable (write errors also fold in, so a
    /// broken pipe is discovered by the write attempt).
    pub fn writable(&self) -> bool {
        self.revents & (sys::POLLOUT | sys::POLLHUP | sys::POLLERR) != 0
    }

    /// Whether any readiness bit fired.
    pub fn ready(&self) -> bool {
        self.revents != 0
    }
}

/// Blocks until at least one descriptor is ready or `timeout` elapses.
/// Returns the number of ready descriptors (0 on timeout). `EINTR` is
/// retried internally; other errors are returned (the event loop treats
/// them as a brief sleep, never a crash).
///
/// # Errors
///
/// Propagates the OS error from `poll(2)` (already `EINTR`-filtered).
pub fn poll(fds: &mut [PollFd], timeout: Duration) -> std::io::Result<usize> {
    let timeout_ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX);
    loop {
        match sys::poll(fds, timeout_ms) {
            Ok(n) => return Ok(n),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Cross-thread wakeup for a poller blocked in [`poll`]. Cloneable-by-Arc;
/// see the module docs for the transport.
#[derive(Debug)]
pub struct Waker {
    tx: TcpStream,
}

impl Waker {
    /// Interrupts the poller. Best-effort: a full socket buffer means
    /// wakeups are already pending, which is just as good.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }
}

/// The poller-side read end of a [`Waker`] pair.
#[derive(Debug)]
pub struct WakeReceiver {
    rx: TcpStream,
}

impl WakeReceiver {
    /// Drains every pending wake byte (call once per loop iteration).
    pub fn drain(&mut self) {
        let mut sink = [0u8; 64];
        while matches!(self.rx.read(&mut sink), Ok(n) if n > 0) {}
    }
}

impl AsRawFd for WakeReceiver {
    fn as_raw_fd(&self) -> std::os::fd::RawFd {
        self.rx.as_raw_fd()
    }
}

/// Builds a connected (waker, receiver) pair over an ephemeral loopback
/// socket. Both ends are non-blocking.
///
/// # Errors
///
/// Propagates bind/connect/accept failures.
pub fn wake_pair() -> std::io::Result<(Waker, WakeReceiver)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    Ok((Waker { tx }, WakeReceiver { rx }))
}

/// The one FFI seam. `poll(2)` is POSIX and present in the libc every Rust
/// program on a unix target already links; no crate dependency needed.
#[allow(unsafe_code)]
mod sys {
    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    extern "C" {
        // int poll(struct pollfd *fds, nfds_t nfds, int timeout);
        // nfds_t is unsigned long on every supported unix target.
        #[link_name = "poll"]
        fn libc_poll(fds: *mut super::PollFd, nfds: core::ffi::c_ulong, timeout: i32) -> i32;
    }

    pub fn poll(fds: &mut [super::PollFd], timeout_ms: i32) -> std::io::Result<usize> {
        // SAFETY: `fds` is a live, exclusively-borrowed slice; the pointer
        // and length describe exactly its elements, whose layout matches
        // `struct pollfd` via `#[repr(C)]`. The kernel writes only the
        // `revents` fields within those bounds.
        let rc = unsafe {
            libc_poll(
                fds.as_mut_ptr(),
                fds.len() as core::ffi::c_ulong,
                timeout_ms,
            )
        };
        if rc < 0 {
            Err(std::io::Error::last_os_error())
        } else {
            Ok(rc as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn poll_times_out_on_silence() {
        let (_waker, rx) = wake_pair().unwrap();
        let mut fds = [PollFd::new(&rx, INTEREST_READ)];
        let started = Instant::now();
        let n = poll(&mut fds, Duration::from_millis(40)).unwrap();
        assert_eq!(n, 0, "nothing was ready");
        assert!(started.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn wake_interrupts_a_sleeping_poll() {
        let (waker, rx) = wake_pair().unwrap();
        let handle = std::thread::spawn(move || {
            let mut fds = [PollFd::new(&rx, INTEREST_READ)];
            let started = Instant::now();
            let n = poll(&mut fds, Duration::from_secs(5)).unwrap();
            (n, fds[0].readable(), started.elapsed(), rx)
        });
        std::thread::sleep(Duration::from_millis(30));
        waker.wake();
        let (n, readable, waited, mut rx) = handle.join().unwrap();
        assert_eq!(n, 1);
        assert!(readable);
        assert!(
            waited < Duration::from_secs(2),
            "woke early, not by timeout"
        );
        rx.drain();
    }

    #[test]
    fn wakes_coalesce_through_drain() {
        let (waker, mut rx) = wake_pair().unwrap();
        for _ in 0..100 {
            waker.wake();
        }
        std::thread::sleep(Duration::from_millis(20));
        rx.drain();
        let mut fds = [PollFd::new(&rx, INTEREST_READ)];
        let n = poll(&mut fds, Duration::from_millis(20)).unwrap();
        assert_eq!(n, 0, "drain consumed every pending wake byte");
    }

    #[test]
    fn listener_accept_readiness_is_visible() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut fds = [PollFd::new(&listener, INTEREST_READ)];
        assert_eq!(poll(&mut fds, Duration::from_millis(10)).unwrap(), 0);
        let _client = TcpStream::connect(addr).unwrap();
        let n = poll(&mut fds, Duration::from_secs(2)).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        listener.accept().unwrap();
    }
}
