//! Minimal, hardened HTTP/1.1 reader/writer for the serving plane.
//!
//! This is deliberately not a general HTTP implementation: one request per
//! connection (`Connection: close`), no chunked transfer encoding, no
//! keep-alive. What it *is* careful about is hostile input — every
//! malformed shape the load harness can produce (truncated heads, bad
//! `Content-Length`, oversized bodies, early FIN, header floods) maps to a
//! typed [`HttpError`] and a clean `4xx`, never a panic and never an
//! unbounded allocation.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Hard cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request path with any query string still attached.
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (exactly `Content-Length` of them).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == &name.to_ascii_lowercase())
            .map(|(_, v)| v.as_str())
    }

    /// Path without a query string.
    pub fn route(&self) -> &str {
        self.path.split('?').next().unwrap_or(&self.path)
    }

    /// Body as UTF-8.
    ///
    /// # Errors
    ///
    /// Returns [`HttpError::BadRequest`] on invalid UTF-8.
    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| HttpError::BadRequest("body is not UTF-8"))
    }
}

/// A request-reading failure, each variant mapping to one response status.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request (`400`): the static message names the defect.
    BadRequest(&'static str),
    /// Request head exceeded [`MAX_HEAD_BYTES`] (`431`).
    HeadTooLarge,
    /// Declared body exceeds the configured cap (`413`).
    BodyTooLarge,
    /// The socket read timed out mid-request (`408`).
    Timeout,
    /// The peer closed before sending anything (no response owed).
    CleanClose,
    /// Transport failure mid-read (no response possible).
    Io(std::io::Error),
}

impl HttpError {
    /// The response status for this error, when one can still be written.
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::BadRequest(_) => Some(400),
            HttpError::HeadTooLarge => Some(431),
            HttpError::BodyTooLarge => Some(413),
            HttpError::Timeout => Some(408),
            HttpError::CleanClose | HttpError::Io(_) => None,
        }
    }

    /// Human-readable description for the error body.
    pub fn message(&self) -> &'static str {
        match self {
            HttpError::BadRequest(msg) => msg,
            HttpError::HeadTooLarge => "request head too large",
            HttpError::BodyTooLarge => "request body too large",
            HttpError::Timeout => "request read timed out",
            HttpError::CleanClose => "connection closed",
            HttpError::Io(_) => "i/o error",
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
            _ => HttpError::Io(e),
        }
    }
}

/// Reads one request from the stream, enforcing the head cap and
/// `max_body_bytes`.
///
/// # Errors
///
/// Every malformed or hostile shape returns a typed [`HttpError`]; see the
/// module docs.
pub fn read_request(stream: &mut TcpStream, max_body_bytes: usize) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(end) = find_head_end(&buf) {
            break end;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                return Err(HttpError::CleanClose);
            }
            return Err(HttpError::BadRequest("truncated request head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end.start])
        .map_err(|_| HttpError::BadRequest("request head is not UTF-8"))?;
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m, p, v),
        _ => return Err(HttpError::BadRequest("malformed request line")),
    };
    if !version.starts_with("HTTP/") {
        return Err(HttpError::BadRequest("malformed HTTP version"));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::BadRequest("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };

    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::BadRequest("transfer-encoding not supported"));
    }

    let content_length = match request.header("content-length") {
        None => 0usize,
        Some(raw) => raw
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest("bad content-length"))?,
    };
    if content_length > max_body_bytes {
        return Err(HttpError::BodyTooLarge);
    }

    // Bytes past the head terminator already read belong to the body.
    let mut body = buf.split_off(head_end.end);
    if body.len() > content_length {
        // More bytes than declared: pipelining is unsupported, treat as a
        // framing violation rather than silently discarding.
        return Err(HttpError::BadRequest("body longer than content-length"));
    }
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want])?;
        if n == 0 {
            return Err(HttpError::BadRequest("truncated body (early close)"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    request.body = body;
    Ok(request)
}

struct HeadEnd {
    /// Offset of the first terminator byte (end of the head text).
    start: usize,
    /// Offset of the first body byte.
    end: usize,
}

fn find_head_end(buf: &[u8]) -> Option<HeadEnd> {
    if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
        return Some(HeadEnd {
            start: i,
            end: i + 4,
        });
    }
    buf.windows(2).position(|w| w == b"\n\n").map(|i| HeadEnd {
        start: i,
        end: i + 2,
    })
}

/// Writes a full response with `Connection: close`.
///
/// # Errors
///
/// Propagates socket write failures (the caller counts them; nothing more
/// can be sent on this connection anyway).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = reason_phrase(status);
    let retry = if status == 503 {
        "Retry-After: 1\r\n"
    } else {
        ""
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\n{retry}Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Standard reason phrase for the statuses the plane emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Runs `read_request` against raw bytes written from a peer socket.
    fn parse_raw(raw: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(&raw).unwrap();
            // Close (FIN) after writing everything we have.
        });
        let (mut stream, _) = listener.accept().unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(2)))
            .unwrap();
        let out = read_request(&mut stream, max_body);
        writer.join().unwrap();
        out
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\
                    X-Amf-Deadline-Ms: 250\r\n\r\nhello world";
        let req = parse_raw(raw, 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.route(), "/v1/predict");
        assert_eq!(req.header("x-amf-deadline-ms"), Some("250"));
        assert_eq!(req.body_str().unwrap(), "hello world");
    }

    #[test]
    fn truncated_head_is_bad_request() {
        let err = parse_raw(b"POST /v1/observe HTTP/1.1\r\nContent-Len", 1024).unwrap_err();
        assert_eq!(err.status(), Some(400));
    }

    #[test]
    fn early_fin_mid_body_is_bad_request() {
        let raw = b"POST /v1/observe HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort";
        let err = parse_raw(raw, 1024).unwrap_err();
        assert_eq!(err.status(), Some(400));
        assert!(err.message().contains("truncated body"));
    }

    #[test]
    fn bad_content_length_is_bad_request() {
        for bad in ["abc", "-5", "1e3", ""] {
            let raw = format!("POST / HTTP/1.1\r\nContent-Length: {bad}\r\n\r\n");
            let err = parse_raw(raw.as_bytes(), 1024).unwrap_err();
            assert_eq!(err.status(), Some(400), "content-length {bad:?}");
        }
    }

    #[test]
    fn oversized_body_is_payload_too_large() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 4096\r\n\r\n";
        let err = parse_raw(raw, 64).unwrap_err();
        assert_eq!(err.status(), Some(413));
    }

    #[test]
    fn oversized_head_is_431() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice("X-Junk: ".as_bytes());
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 1024));
        let err = parse_raw(&raw, 1024).unwrap_err();
        assert_eq!(err.status(), Some(431));
    }

    #[test]
    fn immediate_close_is_clean() {
        let err = parse_raw(b"", 1024).unwrap_err();
        assert!(matches!(err, HttpError::CleanClose));
        assert_eq!(err.status(), None);
    }

    #[test]
    fn garbage_request_line_is_bad_request() {
        for bad in &[
            "\r\n\r\n",
            "GET\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / TELNET\r\n\r\n",
        ] {
            let err = parse_raw(bad.as_bytes(), 1024).unwrap_err();
            assert_eq!(err.status(), Some(400), "line {bad:?}");
        }
    }

    #[test]
    fn chunked_encoding_rejected() {
        let raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        let err = parse_raw(raw, 1024).unwrap_err();
        assert_eq!(err.status(), Some(400));
    }
}
