//! Minimal, hardened HTTP/1.1 parser/renderer for the serving plane.
//!
//! Rewritten for the readiness-loop I/O model (DESIGN.md §15): parsing is
//! **incremental and buffer-based** instead of stream-based. The poller
//! accumulates whatever bytes `read(2)` produced into a per-connection
//! buffer and calls [`parse_request`] — which either yields a complete
//! request plus the number of bytes it consumed (leftover bytes are the
//! *next* pipelined request), reports that more bytes are needed, or fails
//! with a typed [`HttpError`]. Keep-alive and pipelining fall out of this
//! shape for free; what stays from the original design is the hostility
//! budget — truncated heads, bad `Content-Length`, oversized heads/bodies,
//! and header floods all map to a clean `4xx`, never a panic and never an
//! unbounded allocation.

/// Hard cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request path with any query string still attached.
    pub path: String,
    /// HTTP minor version (`1` for `HTTP/1.1`, `0` for `HTTP/1.0`).
    pub minor_version: u8,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (exactly `Content-Length` of them).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == &name.to_ascii_lowercase())
            .map(|(_, v)| v.as_str())
    }

    /// Path without a query string.
    pub fn route(&self) -> &str {
        self.path.split('?').next().unwrap_or(&self.path)
    }

    /// Body as UTF-8.
    ///
    /// # Errors
    ///
    /// Returns [`HttpError::BadRequest`] on invalid UTF-8.
    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| HttpError::BadRequest("body is not UTF-8"))
    }

    /// Whether the client asked to keep the connection open after this
    /// request: explicit `Connection: close` wins, explicit
    /// `Connection: keep-alive` wins, else the HTTP/1.1 default is
    /// keep-alive and the HTTP/1.0 default is close.
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.minor_version >= 1,
        }
    }
}

/// A request-reading failure, each variant mapping to one response status.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request (`400`): the static message names the defect.
    BadRequest(&'static str),
    /// Request head exceeded [`MAX_HEAD_BYTES`] (`431`).
    HeadTooLarge,
    /// Declared body exceeds the configured cap (`413`).
    BodyTooLarge,
    /// The request stayed incomplete past the configured read window
    /// (`408`).
    Timeout,
    /// The peer closed before sending anything (no response owed).
    CleanClose,
    /// Transport failure mid-read (no response possible).
    Io(std::io::Error),
}

impl HttpError {
    /// The response status for this error, when one can still be written.
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::BadRequest(_) => Some(400),
            HttpError::HeadTooLarge => Some(431),
            HttpError::BodyTooLarge => Some(413),
            HttpError::Timeout => Some(408),
            HttpError::CleanClose | HttpError::Io(_) => None,
        }
    }

    /// Human-readable description for the error body.
    pub fn message(&self) -> &'static str {
        match self {
            HttpError::BadRequest(msg) => msg,
            HttpError::HeadTooLarge => "request head too large",
            HttpError::BodyTooLarge => "request body too large",
            HttpError::Timeout => "request read timed out",
            HttpError::CleanClose => "connection closed",
            HttpError::Io(_) => "i/o error",
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
            _ => HttpError::Io(e),
        }
    }
}

/// Outcome of one [`parse_request`] attempt over a byte buffer.
#[derive(Debug)]
pub enum Parsed {
    /// Not enough bytes yet for one full request; read more and retry.
    Incomplete,
    /// One complete request, plus how many buffer bytes it consumed
    /// (anything after `consumed` is the next pipelined request).
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer belonging to this request.
        consumed: usize,
    },
}

/// Tries to parse one request from the front of `buf`.
///
/// Incremental: returns [`Parsed::Incomplete`] until the head terminator
/// and the declared body have both arrived. Never consumes bytes on its
/// own — the caller drains `consumed` bytes on [`Parsed::Complete`].
///
/// # Errors
///
/// Every malformed or hostile shape returns a typed [`HttpError`]; see the
/// module docs. Errors are sticky for a connection: the buffer is in an
/// unrecoverable framing state and the connection must close after the
/// error response.
pub fn parse_request(buf: &[u8], max_body_bytes: usize) -> Result<Parsed, HttpError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        return Ok(Parsed::Incomplete);
    };
    if head_end.start > MAX_HEAD_BYTES {
        return Err(HttpError::HeadTooLarge);
    }

    let head = std::str::from_utf8(&buf[..head_end.start])
        .map_err(|_| HttpError::BadRequest("request head is not UTF-8"))?;
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m, p, v),
        _ => return Err(HttpError::BadRequest("malformed request line")),
    };
    let minor_version = match version {
        "HTTP/1.1" => 1,
        "HTTP/1.0" => 0,
        v if v.starts_with("HTTP/") => 1,
        _ => return Err(HttpError::BadRequest("malformed HTTP version")),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::BadRequest("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = Request {
        method: method.to_string(),
        path: path.to_string(),
        minor_version,
        headers,
        body: Vec::new(),
    };

    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::BadRequest("transfer-encoding not supported"));
    }

    let content_length = match request.header("content-length") {
        None => 0usize,
        Some(raw) => raw
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest("bad content-length"))?,
    };
    // Rejected from the declared length, before the body arrives, so an
    // attacker cannot make the plane buffer it first.
    if content_length > max_body_bytes {
        return Err(HttpError::BodyTooLarge);
    }

    let body_start = head_end.end;
    if buf.len() < body_start + content_length {
        return Ok(Parsed::Incomplete);
    }
    request.body = buf[body_start..body_start + content_length].to_vec();
    Ok(Parsed::Complete {
        request,
        consumed: body_start + content_length,
    })
}

struct HeadEnd {
    /// Offset of the first terminator byte (end of the head text).
    start: usize,
    /// Offset of the first body byte.
    end: usize,
}

fn find_head_end(buf: &[u8]) -> Option<HeadEnd> {
    // Scan for whichever terminator comes FIRST — a bare-LF head followed
    // by a pipelined CRLF request must not be framed by the later CRLFCRLF.
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n");
    let lf = buf.windows(2).position(|w| w == b"\n\n");
    match (crlf, lf) {
        (Some(c), Some(l)) if l + 1 < c => Some(HeadEnd {
            start: l,
            end: l + 2,
        }),
        (Some(c), _) => Some(HeadEnd {
            start: c,
            end: c + 4,
        }),
        (None, Some(l)) => Some(HeadEnd {
            start: l,
            end: l + 2,
        }),
        (None, None) => None,
    }
}

/// Renders a full response. `keep_alive` selects the `Connection` header;
/// 503s always carry `Retry-After: 1` (the promise the load harness's
/// retry policy relies on).
pub fn render_response(status: u16, content_type: &str, body: &str, keep_alive: bool) -> Vec<u8> {
    render_response_with(status, content_type, body, keep_alive, &[])
}

/// [`render_response`] with extra response headers (trace id, stage
/// breakdown, ...) inserted before the `Connection` header. Header names
/// must be well-formed tokens; values must not contain CR/LF.
pub fn render_response_with(
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> Vec<u8> {
    let reason = reason_phrase(status);
    let retry = if status == 503 {
        "Retry-After: 1\r\n"
    } else {
        ""
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    // Formatted straight into the output buffer: response rendering is
    // per-request work, so no intermediate head/extras Strings.
    use std::io::Write as _;
    let mut out = Vec::with_capacity(192 + body.len());
    let _ = write!(
        out,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\n{retry}",
        body.len()
    );
    for (name, value) in extra_headers {
        let _ = write!(out, "{name}: {value}\r\n");
    }
    let _ = write!(out, "Connection: {connection}\r\n\r\n");
    out.extend_from_slice(body.as_bytes());
    out
}

/// Standard reason phrase for the statuses the plane emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(raw: &[u8], max_body: usize) -> Result<Request, HttpError> {
        match parse_request(raw, max_body)? {
            Parsed::Complete { request, .. } => Ok(request),
            Parsed::Incomplete => Err(HttpError::BadRequest("incomplete in test")),
        }
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\
                    X-Amf-Deadline-Ms: 250\r\n\r\nhello world";
        let req = parse_one(raw, 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.route(), "/v1/predict");
        assert_eq!(req.header("x-amf-deadline-ms"), Some("250"));
        assert_eq!(req.body_str().unwrap(), "hello world");
        assert!(req.wants_keep_alive(), "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let close = parse_one(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", 1024).unwrap();
        assert!(!close.wants_keep_alive());
        let ka10 = parse_one(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n", 1024).unwrap();
        assert!(ka10.wants_keep_alive());
        let plain10 = parse_one(b"GET / HTTP/1.0\r\n\r\n", 1024).unwrap();
        assert!(!plain10.wants_keep_alive(), "HTTP/1.0 defaults to close");
    }

    #[test]
    fn incremental_parse_reports_incomplete_until_whole() {
        let raw = b"POST /v1/observe HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        for cut in 0..raw.len() {
            match parse_request(&raw[..cut], 1024) {
                Ok(Parsed::Incomplete) => {}
                other => panic!("prefix {cut} should be incomplete, got {other:?}"),
            }
        }
        let Parsed::Complete { request, consumed } = parse_request(raw, 1024).unwrap() else {
            panic!("full buffer parses");
        };
        assert_eq!(consumed, raw.len());
        assert_eq!(request.body_str().unwrap(), "hello");
    }

    #[test]
    fn pipelined_requests_parse_in_sequence() {
        let raw = b"POST /v1/observe HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi\
                    GET /healthz HTTP/1.1\r\n\r\n";
        let Parsed::Complete { request, consumed } = parse_request(raw, 1024).unwrap() else {
            panic!("first request parses");
        };
        assert_eq!(request.route(), "/v1/observe");
        assert_eq!(request.body_str().unwrap(), "hi");
        let Parsed::Complete {
            request: second,
            consumed: second_len,
        } = parse_request(&raw[consumed..], 1024).unwrap()
        else {
            panic!("second pipelined request parses");
        };
        assert_eq!(second.route(), "/healthz");
        assert_eq!(consumed + second_len, raw.len());
    }

    #[test]
    fn bad_content_length_is_bad_request() {
        for bad in ["abc", "-5", "1e3", ""] {
            let raw = format!("POST / HTTP/1.1\r\nContent-Length: {bad}\r\n\r\n");
            let err = parse_request(raw.as_bytes(), 1024).unwrap_err();
            assert_eq!(err.status(), Some(400), "content-length {bad:?}");
        }
    }

    #[test]
    fn oversized_body_is_payload_too_large_before_body_arrives() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 4096\r\n\r\n";
        let err = parse_request(raw, 64).unwrap_err();
        assert_eq!(err.status(), Some(413));
    }

    #[test]
    fn oversized_head_is_431() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice("X-Junk: ".as_bytes());
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 1024));
        let err = parse_request(&raw, 1024).unwrap_err();
        assert_eq!(err.status(), Some(431));
    }

    #[test]
    fn garbage_request_line_is_bad_request() {
        for bad in &[
            "\r\n\r\n",
            "GET\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / TELNET\r\n\r\n",
        ] {
            let err = parse_request(bad.as_bytes(), 1024).unwrap_err();
            assert_eq!(err.status(), Some(400), "line {bad:?}");
        }
    }

    #[test]
    fn chunked_encoding_rejected() {
        let raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        let err = parse_request(raw, 1024).unwrap_err();
        assert_eq!(err.status(), Some(400));
    }

    #[test]
    fn render_sets_connection_and_retry_after() {
        let ka = String::from_utf8(render_response(200, "application/json", "{}", true)).unwrap();
        assert!(ka.contains("Connection: keep-alive\r\n"), "{ka}");
        assert!(!ka.contains("Retry-After"), "{ka}");
        let closed =
            String::from_utf8(render_response(503, "application/json", "{}", false)).unwrap();
        assert!(closed.contains("Connection: close\r\n"), "{closed}");
        assert!(closed.contains("Retry-After: 1\r\n"), "{closed}");
        assert!(closed.contains("Content-Length: 2\r\n"), "{closed}");
    }

    #[test]
    fn render_with_extra_headers_places_them_before_connection() {
        let extras = [
            ("x-amf-trace-id", "amf-0000000000000001"),
            ("x-amf-stage-us", "accept=0;parse=3"),
        ];
        let raw = String::from_utf8(render_response_with(
            200,
            "application/json",
            "{}",
            true,
            &extras,
        ))
        .unwrap();
        assert!(
            raw.contains("x-amf-trace-id: amf-0000000000000001\r\n"),
            "{raw}"
        );
        assert!(
            raw.contains("x-amf-stage-us: accept=0;parse=3\r\n"),
            "{raw}"
        );
        let head_end = raw.find("\r\n\r\n").unwrap();
        assert!(raw.find("x-amf-trace-id").unwrap() < head_end);
        assert!(raw.find("x-amf-trace-id").unwrap() < raw.find("Connection:").unwrap());
        // The parameterless variant stays byte-identical to the old output.
        assert_eq!(
            render_response(200, "application/json", "{}", true),
            render_response_with(200, "application/json", "{}", true, &[])
        );
    }
}
