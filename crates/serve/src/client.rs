//! Hardened HTTP client for the load harness: per-request timeouts,
//! bounded retry with exponential backoff + jitter, and client-side
//! network-fault injection.
//!
//! Fault injection happens *here*, on the client, because the point of the
//! harness is to measure how the **server** behaves when the network
//! misbehaves — std-only sockets cannot force an RST (`SO_LINGER` is
//! unavailable), so each [`NetFault`] verb is approximated by what the
//! server actually observes on the wire:
//!
//! * [`NetFault::ConnReset`] — write part of the request head, then close
//!   abruptly: the server reads an early FIN mid-request.
//! * [`NetFault::SlowRead`] — trickle the request a few bytes at a time
//!   with sleeps (a classic slowloris-shaped client); the request
//!   eventually completes and must still be answered correctly.
//! * [`NetFault::Blackhole`] — connect, send nothing, and hold the socket
//!   open until the client's own timeout; the server's read deadline must
//!   reap the connection.
//!
//! Retries obey the retry-safety table in DESIGN.md §14: only idempotent
//! requests (`predict`, `rank`, `GET`s) may be retried; `observe` mutates
//! the model, so a retried observe would double-count a sample — the
//! harness never retries it, per the `idempotent` flag on
//! [`ServeClient::request`]. Injected faults apply to the *first* attempt
//! only, modelling a transient network fault that a retry rides out.

use amf_core::NetFault;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side configuration for the load harness.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Socket read/write timeout per request.
    pub request_timeout: Duration,
    /// Retry attempts *beyond* the first, for idempotent requests only.
    pub max_retries: u32,
    /// Base backoff; attempt `n` sleeps `base * 2^n` plus jitter.
    pub backoff_base: Duration,
    /// Optional deadline propagated as `x-amf-deadline-ms`.
    pub deadline_ms: Option<u64>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(2),
            max_retries: 2,
            backoff_base: Duration::from_millis(25),
            deadline_ms: None,
        }
    }
}

/// A parsed HTTP response (non-2xx statuses are data, not errors — the
/// harness classifies them).
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// Attempts spent beyond the first (0 = first try succeeded).
    pub retries: u32,
    /// `x-amf-trace-id` echoed by the server (empty when absent).
    pub trace_id: String,
    /// Raw `x-amf-stage-us` breakdown from the server (empty when absent).
    pub stage_us: String,
}

impl HttpResponse {
    /// Whether the status is 2xx.
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// Sum of the server-reported stage breakdown in µs (`None` when the
    /// response carried no parsable `x-amf-stage-us` header).
    pub fn stage_total_us(&self) -> Option<u64> {
        qos_obs::StageClock::parse_header_us(&self.stage_us).map(|us| us.iter().sum())
    }
}

/// Transport-level failure after all permitted attempts.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect.
    Connect(std::io::Error),
    /// Connection established but the exchange failed.
    Io(std::io::Error),
    /// The socket timed out (includes a black-holed request reaped by the
    /// client's own deadline).
    Timeout,
    /// The response could not be parsed as HTTP.
    Protocol(&'static str),
    /// The request was sacrificed to an injected fault and (being
    /// non-idempotent) could not be retried.
    Faulted(NetFault),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect failed: {e}"),
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Timeout => write!(f, "request timed out"),
            ClientError::Protocol(msg) => write!(f, "malformed response: {msg}"),
            ClientError::Faulted(fault) => write!(f, "injected fault: {}", fault.label()),
        }
    }
}

impl std::error::Error for ClientError {}

/// One connection-per-request HTTP/1.1 client with fault injection and
/// idempotent-only retry. Each load-generator thread owns one (the jitter
/// RNG state makes it `&mut self`).
#[derive(Debug)]
pub struct ServeClient {
    addr: SocketAddr,
    config: ClientConfig,
    rng: u64,
}

impl ServeClient {
    /// Creates a client for `addr`; `seed` derives backoff jitter (two
    /// clients with the same seed behave identically).
    pub fn new(addr: SocketAddr, config: ClientConfig, seed: u64) -> Self {
        Self {
            addr,
            config,
            rng: seed | 1,
        }
    }

    /// Issues `method path` with `body`, injecting `fault` on the first
    /// attempt. `idempotent` gates retry: non-idempotent requests get
    /// exactly one attempt, whatever happens.
    ///
    /// # Errors
    ///
    /// Returns the last transport failure once attempts are exhausted.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        fault: Option<NetFault>,
        idempotent: bool,
    ) -> Result<HttpResponse, ClientError> {
        let attempts = if idempotent {
            1 + self.config.max_retries
        } else {
            1
        };
        let mut last_err = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.backoff(attempt);
            }
            // A fault models a transient network event: it hits the first
            // attempt only, so a permitted retry goes out clean.
            let injected = if attempt == 0 { fault } else { None };
            match self.attempt(method, path, body, injected) {
                Ok(mut response) => {
                    // 503 is the server shedding load (fast-reject, deadline,
                    // draining): retryable for idempotent requests, final
                    // otherwise.
                    if response.status == 503 && attempt + 1 < attempts {
                        last_err = None;
                        continue;
                    }
                    response.retries = attempt;
                    return Ok(response);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or(ClientError::Faulted(fault.unwrap_or(NetFault::ConnReset))))
    }

    fn attempt(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        fault: Option<NetFault>,
    ) -> Result<HttpResponse, ClientError> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)
            .map_err(ClientError::Connect)?;
        stream
            .set_read_timeout(Some(self.config.request_timeout))
            .map_err(ClientError::Io)?;
        stream
            .set_write_timeout(Some(self.config.request_timeout))
            .map_err(ClientError::Io)?;

        let deadline_header = match self.config.deadline_ms {
            Some(ms) => format!("x-amf-deadline-ms: {ms}\r\n"),
            None => String::new(),
        };
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: amf\r\nContent-Length: {}\r\n\
             {deadline_header}Connection: close\r\n\r\n{body}",
            body.len()
        );
        let raw = raw.as_bytes();

        match fault {
            Some(NetFault::ConnReset) => {
                // Early FIN mid-request: send roughly half the head, then
                // close without shutdown ceremony.
                let cut = (raw.len() / 2).max(1).min(raw.len().saturating_sub(1));
                let _ = stream.write_all(&raw[..cut]);
                drop(stream);
                return Err(ClientError::Faulted(NetFault::ConnReset));
            }
            Some(NetFault::Blackhole) => {
                // Hold the connection silent until our own deadline; the
                // server's read timeout must reap it on its side.
                let mut sink = [0u8; 16];
                let _ = stream.read(&mut sink);
                drop(stream);
                return Err(ClientError::Faulted(NetFault::Blackhole));
            }
            Some(NetFault::SlowRead) => {
                // Byte-trickle: the request arrives, eventually. Chunks are
                // sized so the total added delay stays ~tens of ms.
                for chunk in raw.chunks(8.max(raw.len() / 64)) {
                    stream.write_all(chunk).map_err(map_io)?;
                    stream.flush().map_err(map_io)?;
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            None => {
                stream.write_all(raw).map_err(map_io)?;
            }
        }
        stream.flush().map_err(map_io)?;
        let _ = stream.shutdown(std::net::Shutdown::Write);

        let mut response = Vec::new();
        stream.read_to_end(&mut response).map_err(map_io)?;
        parse_response(&response)
    }

    fn backoff(&mut self, attempt: u32) {
        backoff_sleep(&mut self.rng, self.config.backoff_base, attempt);
    }
}

/// Exponential backoff with deterministic jitter: `base * 2^(n-1)` plus
/// up to 50% extra, so synchronized clients de-correlate their retries.
fn backoff_sleep(rng: &mut u64, base: Duration, attempt: u32) {
    let base = base.as_micros() as u64;
    let exp = base.saturating_mul(1u64 << (attempt - 1).min(16));
    // xorshift64* step for the jitter roll.
    *rng ^= *rng << 13;
    *rng ^= *rng >> 7;
    *rng ^= *rng << 17;
    let jitter = *rng % (exp / 2).max(1);
    std::thread::sleep(Duration::from_micros(exp + jitter));
}

/// Persistent-connection HTTP/1.1 client (PR 8): requests ride one
/// keep-alive socket, responses are framed by `Content-Length` (leftover
/// bytes stay buffered for the next response), and the connection is
/// re-established transparently when the server closes it (`Connection:
/// close`, max-requests budget, idle reap). Connection-reuse accounting
/// ([`KeepAliveClient::connects`] / [`KeepAliveClient::reuses`]) feeds the
/// loadtest's `BENCH_SERVE.json` v2 fields.
///
/// Retry semantics match [`ServeClient`]: idempotent requests only, faults
/// hit the first attempt, 503 is retryable. A failed exchange always drops
/// the connection — a half-read socket cannot be trusted for framing.
#[derive(Debug)]
pub struct KeepAliveClient {
    addr: SocketAddr,
    config: ClientConfig,
    stream: Option<TcpStream>,
    buf: Vec<u8>,
    connects: u64,
    requests_sent: u64,
    rng: u64,
}

impl KeepAliveClient {
    /// Creates a client for `addr`; `seed` derives backoff jitter.
    pub fn new(addr: SocketAddr, config: ClientConfig, seed: u64) -> Self {
        Self {
            addr,
            config,
            stream: None,
            buf: Vec::new(),
            connects: 0,
            requests_sent: 0,
            rng: seed | 1,
        }
    }

    /// TCP connections opened so far.
    pub fn connects(&self) -> u64 {
        self.connects
    }

    /// Requests that reused an already-open connection.
    pub fn reuses(&self) -> u64 {
        self.requests_sent.saturating_sub(self.connects)
    }

    /// Issues `method path` with `body` over the persistent connection.
    /// Same contract as [`ServeClient::request`].
    ///
    /// # Errors
    ///
    /// Returns the last transport failure once attempts are exhausted.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        fault: Option<NetFault>,
        idempotent: bool,
    ) -> Result<HttpResponse, ClientError> {
        let attempts = if idempotent {
            1 + self.config.max_retries
        } else {
            1
        };
        let mut last_err = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                backoff_sleep(&mut self.rng, self.config.backoff_base, attempt);
            }
            let injected = if attempt == 0 { fault } else { None };
            match self.attempt(method, path, body, injected) {
                Ok(mut response) => {
                    if response.status == 503 && attempt + 1 < attempts {
                        last_err = None;
                        continue;
                    }
                    response.retries = attempt;
                    return Ok(response);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or(ClientError::Faulted(fault.unwrap_or(NetFault::ConnReset))))
    }

    /// Writes `requests` back-to-back (HTTP pipelining) and reads the
    /// responses in order. Clean path only — no fault injection or retry;
    /// any transport failure drops the connection and surfaces as the
    /// error for the whole batch.
    ///
    /// # Errors
    ///
    /// Returns the first transport/protocol failure.
    pub fn pipeline(
        &mut self,
        requests: &[(&str, &str, &str)],
    ) -> Result<Vec<HttpResponse>, ClientError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        self.ensure_connected()?;
        let Some(mut stream) = self.stream.take() else {
            return Err(ClientError::Protocol("no connection"));
        };
        let mut raw = Vec::new();
        for (method, path, body) in requests {
            raw.extend_from_slice(self.render_request(method, path, body).as_bytes());
        }
        self.requests_sent += requests.len() as u64;
        if let Err(e) = stream.write_all(&raw).and_then(|()| stream.flush()) {
            self.buf.clear();
            return Err(map_io(e));
        }
        let mut responses = Vec::with_capacity(requests.len());
        let mut closed = false;
        for _ in requests {
            if closed {
                self.buf.clear();
                return Err(ClientError::Protocol("connection closed mid-pipeline"));
            }
            match read_framed_response(&mut stream, &mut self.buf) {
                Ok((response, close)) => {
                    closed = close;
                    responses.push(response);
                }
                Err(e) => {
                    self.buf.clear();
                    return Err(e);
                }
            }
        }
        if !closed {
            self.stream = Some(stream);
        } else {
            self.buf.clear();
        }
        Ok(responses)
    }

    fn ensure_connected(&mut self) -> Result<(), ClientError> {
        if self.stream.is_some() {
            return Ok(());
        }
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)
            .map_err(ClientError::Connect)?;
        stream
            .set_read_timeout(Some(self.config.request_timeout))
            .map_err(ClientError::Io)?;
        stream
            .set_write_timeout(Some(self.config.request_timeout))
            .map_err(ClientError::Io)?;
        let _ = stream.set_nodelay(true);
        self.connects += 1;
        self.buf.clear();
        self.stream = Some(stream);
        Ok(())
    }

    fn render_request(&self, method: &str, path: &str, body: &str) -> String {
        let deadline_header = match self.config.deadline_ms {
            Some(ms) => format!("x-amf-deadline-ms: {ms}\r\n"),
            None => String::new(),
        };
        format!(
            "{method} {path} HTTP/1.1\r\nHost: amf\r\nContent-Length: {}\r\n\
             {deadline_header}\r\n{body}",
            body.len()
        )
    }

    fn attempt(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        fault: Option<NetFault>,
    ) -> Result<HttpResponse, ClientError> {
        self.ensure_connected()?;
        let Some(mut stream) = self.stream.take() else {
            return Err(ClientError::Protocol("no connection"));
        };
        self.requests_sent += 1;
        let raw = self.render_request(method, path, body);
        let raw = raw.as_bytes();

        match fault {
            Some(NetFault::ConnReset) => {
                // Early FIN mid-request on a (possibly reused) keep-alive
                // connection — the server must 400-and-close without
                // poisoning other connections.
                let cut = (raw.len() / 2).max(1).min(raw.len().saturating_sub(1));
                let _ = stream.write_all(&raw[..cut]);
                drop(stream);
                self.buf.clear();
                return Err(ClientError::Faulted(NetFault::ConnReset));
            }
            Some(NetFault::Blackhole) => {
                let mut sink = [0u8; 16];
                let _ = stream.read(&mut sink);
                drop(stream);
                self.buf.clear();
                return Err(ClientError::Faulted(NetFault::Blackhole));
            }
            Some(NetFault::SlowRead) => {
                for chunk in raw.chunks(8.max(raw.len() / 64)) {
                    if let Err(e) = stream.write_all(chunk).and_then(|()| stream.flush()) {
                        self.buf.clear();
                        return Err(map_io(e));
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            None => {
                if let Err(e) = stream.write_all(raw).and_then(|()| stream.flush()) {
                    self.buf.clear();
                    return Err(map_io(e));
                }
            }
        }

        match read_framed_response(&mut stream, &mut self.buf) {
            Ok((response, close)) => {
                if !close {
                    self.stream = Some(stream);
                } else {
                    self.buf.clear();
                }
                Ok(response)
            }
            Err(e) => {
                self.buf.clear();
                Err(e)
            }
        }
    }
}

/// Reads exactly one `Content-Length`-framed response; bytes beyond it
/// stay in `buf` for the next response. Returns the response and whether
/// the server announced `Connection: close`.
fn read_framed_response(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
) -> Result<(HttpResponse, bool), ClientError> {
    let mut chunk = [0u8; 8 * 1024];
    let (head_end, status, content_length, close, trace_id, stage_us) = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&buf[..pos])
                .map_err(|_| ClientError::Protocol("response head is not UTF-8"))?;
            let mut lines = head.split("\r\n");
            let status_line = lines.next().unwrap_or("");
            if !status_line.starts_with("HTTP/") {
                return Err(ClientError::Protocol("missing HTTP version"));
            }
            let status = status_line
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse::<u16>().ok())
                .ok_or(ClientError::Protocol("unparsable status code"))?;
            let mut content_length = 0usize;
            let mut close = false;
            let mut trace_id = String::new();
            let mut stage_us = String::new();
            for line in lines {
                let Some((name, value)) = line.split_once(':') else {
                    continue;
                };
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim();
                if name == "content-length" {
                    content_length = value
                        .parse()
                        .map_err(|_| ClientError::Protocol("bad content-length"))?;
                } else if name == "connection" && value.eq_ignore_ascii_case("close") {
                    close = true;
                } else if name == "x-amf-trace-id" {
                    trace_id = value.to_string();
                } else if name == "x-amf-stage-us" {
                    stage_us = value.to_string();
                }
            }
            break (pos + 4, status, content_length, close, trace_id, stage_us);
        }
        let n = stream.read(&mut chunk).map_err(map_io)?;
        if n == 0 {
            return Err(ClientError::Protocol("connection closed before response"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    while buf.len() < head_end + content_length {
        let n = stream.read(&mut chunk).map_err(map_io)?;
        if n == 0 {
            return Err(ClientError::Protocol("connection closed mid-body"));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8_lossy(&buf[head_end..head_end + content_length]).to_string();
    buf.drain(..head_end + content_length);
    Ok((
        HttpResponse {
            status,
            body,
            retries: 0,
            trace_id,
            stage_us,
        },
        close,
    ))
}

fn map_io(e: std::io::Error) -> ClientError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ClientError::Timeout,
        _ => ClientError::Io(e),
    }
}

fn parse_response(raw: &[u8]) -> Result<HttpResponse, ClientError> {
    if raw.is_empty() {
        return Err(ClientError::Protocol("empty response"));
    }
    let text = String::from_utf8_lossy(raw);
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(ClientError::Protocol("no header/body separator"));
    };
    let mut parts = head.split_whitespace();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/") {
        return Err(ClientError::Protocol("missing HTTP version"));
    }
    let status = parts
        .next()
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or(ClientError::Protocol("unparsable status code"))?;
    let header_value = |name: &str| {
        head.split("\r\n").skip(1).find_map(|line| {
            let (n, v) = line.split_once(':')?;
            n.trim()
                .eq_ignore_ascii_case(name)
                .then(|| v.trim().to_string())
        })
    };
    Ok(HttpResponse {
        status,
        body: body.to_string(),
        retries: 0,
        trace_id: header_value("x-amf-trace-id").unwrap_or_default(),
        stage_us: header_value("x-amf-stage-us").unwrap_or_default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// One-shot server returning a canned response.
    fn canned_server(response: &'static [u8], accept_count: usize) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for _ in 0..accept_count {
                let Ok((mut stream, _)) = listener.accept() else {
                    return;
                };
                let mut sink = [0u8; 4096];
                while let Ok(n) = stream.read(&mut sink) {
                    if n == 0 || sink[..n].windows(4).any(|w| w == b"\r\n\r\n") {
                        break;
                    }
                }
                let _ = stream.write_all(response);
            }
        });
        addr
    }

    #[test]
    fn parses_a_plain_response() {
        let addr = canned_server(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi", 1);
        let mut client = ServeClient::new(addr, ClientConfig::default(), 7);
        let response = client.request("GET", "/healthz", "", None, true).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, "hi");
        assert_eq!(response.retries, 0);
    }

    #[test]
    fn conn_reset_fault_fails_non_idempotent_without_retry() {
        let addr = canned_server(b"HTTP/1.1 200 OK\r\n\r\n", 4);
        let mut client = ServeClient::new(addr, ClientConfig::default(), 7);
        let err = client
            .request(
                "POST",
                "/v1/observe",
                "{}",
                Some(NetFault::ConnReset),
                false,
            )
            .unwrap_err();
        assert!(matches!(err, ClientError::Faulted(NetFault::ConnReset)));
    }

    #[test]
    fn idempotent_request_retries_through_a_fault() {
        let addr = canned_server(b"HTTP/1.1 200 OK\r\n\r\nok", 4);
        let mut client = ServeClient::new(addr, ClientConfig::default(), 7);
        let response = client
            .request("POST", "/v1/predict", "{}", Some(NetFault::ConnReset), true)
            .unwrap();
        assert_eq!(response.status, 200);
        assert!(response.retries >= 1, "fault consumed the first attempt");
    }

    #[test]
    fn blackhole_is_reaped_by_client_timeout() {
        let addr = canned_server(b"HTTP/1.1 200 OK\r\n\r\n", 1);
        let mut client = ServeClient::new(
            addr,
            ClientConfig {
                request_timeout: Duration::from_millis(100),
                max_retries: 0,
                ..ClientConfig::default()
            },
            7,
        );
        let started = std::time::Instant::now();
        let err = client
            .request("POST", "/v1/predict", "{}", Some(NetFault::Blackhole), true)
            .unwrap_err();
        assert!(matches!(err, ClientError::Faulted(NetFault::Blackhole)));
        assert!(started.elapsed() < Duration::from_secs(2), "bounded hold");
    }

    fn live_plane() -> crate::plane::ServePlane {
        let service = std::sync::Arc::new(qos_service::QosPredictionService::new(
            qos_service::ServiceConfig::default(),
        ));
        crate::plane::ServePlane::start(
            "127.0.0.1:0",
            service,
            crate::plane::ServeConfig::default(),
        )
        .expect("bind")
    }

    #[test]
    fn keep_alive_client_reuses_the_connection() {
        let plane = live_plane();
        let mut client = KeepAliveClient::new(plane.local_addr(), ClientConfig::default(), 7);
        for round in 0..5 {
            let response = client.request("GET", "/healthz", "", None, true).unwrap();
            assert_eq!(response.status, 200, "round {round}");
        }
        assert_eq!(client.connects(), 1, "one socket for the whole run");
        assert_eq!(client.reuses(), 4);
        let stats = plane.stop();
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.ok, 5);
    }

    #[test]
    fn keep_alive_pipeline_answers_in_order() {
        let plane = live_plane();
        let mut client = KeepAliveClient::new(plane.local_addr(), ClientConfig::default(), 7);
        let responses = client
            .pipeline(&[
                ("GET", "/healthz", ""),
                ("GET", "/snapshot.json", ""),
                ("GET", "/healthz", ""),
            ])
            .unwrap();
        assert_eq!(responses.len(), 3);
        assert!(responses.iter().all(|r| r.status == 200));
        assert!(responses[1].body.contains("schema"), "snapshot in slot 1");
        assert_eq!(client.connects(), 1);
        plane.stop();
    }

    #[test]
    fn keep_alive_client_reconnects_after_server_close() {
        let plane = live_plane();
        let mut client = KeepAliveClient::new(plane.local_addr(), ClientConfig::default(), 7);
        assert_eq!(
            client
                .request("GET", "/healthz", "", None, true)
                .unwrap()
                .status,
            200
        );
        // A conn-reset fault kills the persistent socket; the next request
        // must transparently open a fresh one.
        let err = client
            .request(
                "POST",
                "/v1/observe",
                "{}",
                Some(NetFault::ConnReset),
                false,
            )
            .unwrap_err();
        assert!(matches!(err, ClientError::Faulted(NetFault::ConnReset)));
        assert_eq!(
            client
                .request("GET", "/healthz", "", None, true)
                .unwrap()
                .status,
            200
        );
        assert!(client.connects() >= 2, "reconnected after the fault");
        let stats = plane.stop();
        assert_eq!(stats.worker_panics, 0);
    }

    #[test]
    fn connect_refused_is_a_connect_error() {
        // Bind-then-drop leaves a port nothing listens on.
        let addr = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let mut client = ServeClient::new(
            addr,
            ClientConfig {
                max_retries: 1,
                backoff_base: Duration::from_millis(1),
                ..ClientConfig::default()
            },
            7,
        );
        let err = client
            .request("GET", "/healthz", "", None, true)
            .unwrap_err();
        assert!(matches!(err, ClientError::Connect(_)), "{err}");
    }
}
