//! Earliest-deadline-first pending queue for the serving plane.
//!
//! PR 7's plane queued work FIFO, so a request with 50 ms of budget left
//! could sit behind a convoy of 30 s-budget batches and die in the queue.
//! This queue orders on each request's **deadline expiry**: workers always
//! pop the request that will expire soonest, which minimizes deadline
//! misses under transient overload (classic EDF optimality for a single
//! resource). Ties break FIFO on an admission sequence number so equal
//! deadlines keep arrival order and the ordering is total.
//!
//! The queue is bounded — [`EdfQueue::try_push`] refuses beyond capacity,
//! which is what the poller turns into an inline `503 overloaded`
//! fast-reject — and closable: after [`EdfQueue::close`], pushes fail and
//! [`EdfQueue::pop`] drains whatever is left before returning `None`, so a
//! graceful drain flushes every admitted request.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// One queued entry: ordered by earliest `expires`, then admission order.
struct Entry<T> {
    expires: Instant,
    seq: u64,
    value: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.expires == other.expires && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // BinaryHeap is a max-heap: reverse so the EARLIEST expiry (and,
        // among equals, the lowest sequence number) is the root.
        other
            .expires
            .cmp(&self.expires)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Inner<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
    closed: bool,
}

/// Bounded, closable earliest-deadline-first queue (see module docs).
pub struct EdfQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the caller should fast-reject.
    Full(T),
    /// The queue is closed (plane draining); no new work is admitted.
    Closed(T),
}

impl<T> EdfQueue<T> {
    /// Creates a queue admitting at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(Inner {
                heap: BinaryHeap::with_capacity(capacity.min(4096)),
                seq: 0,
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Admits `value` keyed on its deadline expiry.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`EdfQueue::close`]; both return the value to the caller.
    pub fn try_push(&self, expires: Instant, value: T) -> Result<(), PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(value));
        }
        if inner.heap.len() >= self.capacity {
            return Err(PushError::Full(value));
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.heap.push(Entry {
            expires,
            seq,
            value,
        });
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the entry with the earliest deadline. Returns `None`
    /// only once the queue is closed AND empty — admitted work is always
    /// flushed before workers see the shutdown.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(entry) = inner.heap.pop() {
                return Some(entry.value);
            }
            if inner.closed {
                return None;
            }
            inner = match self.available.wait(inner) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.lock().heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: future pushes fail, poppers drain the remainder
    /// and then observe the close.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T> std::fmt::Debug for EdfQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdfQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::time::Duration;

    #[test]
    fn pops_earliest_deadline_first() {
        let queue = EdfQueue::new(8);
        let base = Instant::now();
        queue
            .try_push(base + Duration::from_millis(500), "slack")
            .unwrap();
        queue
            .try_push(base + Duration::from_millis(50), "tight")
            .unwrap();
        queue
            .try_push(base + Duration::from_millis(200), "middle")
            .unwrap();
        assert_eq!(queue.pop(), Some("tight"));
        assert_eq!(queue.pop(), Some("middle"));
        assert_eq!(queue.pop(), Some("slack"));
    }

    #[test]
    fn equal_deadlines_keep_fifo_order() {
        let queue = EdfQueue::new(8);
        let expires = Instant::now() + Duration::from_millis(100);
        for i in 0..5 {
            queue.try_push(expires, i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(queue.pop(), Some(i), "FIFO among equal deadlines");
        }
    }

    #[test]
    fn full_and_closed_pushes_return_the_value() {
        let queue = EdfQueue::new(1);
        let t = Instant::now();
        queue.try_push(t, 1).unwrap();
        assert_eq!(queue.try_push(t, 2), Err(PushError::Full(2)));
        queue.close();
        assert_eq!(queue.try_push(t, 3), Err(PushError::Closed(3)));
        // Close drains the remainder before poppers see None.
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let queue = std::sync::Arc::new(EdfQueue::<u32>::new(4));
        let popper = {
            let queue = std::sync::Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        std::thread::sleep(Duration::from_millis(30));
        queue.close();
        assert_eq!(popper.join().unwrap(), None);
    }

    proptest! {
        /// Dequeue order is non-decreasing in deadline, whatever the
        /// insertion order (the EDF satellite property).
        #[test]
        fn dequeue_order_is_non_decreasing_in_deadline(
            offsets_ms in proptest::collection::vec(0u64..10_000, 1..128),
        ) {
            let queue = EdfQueue::new(offsets_ms.len());
            let base = Instant::now();
            for (i, ms) in offsets_ms.iter().enumerate() {
                queue
                    .try_push(base + Duration::from_millis(*ms), (i, *ms))
                    .unwrap();
            }
            let mut last = 0u64;
            for _ in 0..offsets_ms.len() {
                let (_, ms) = queue.pop().expect("queued entry");
                prop_assert!(
                    ms >= last,
                    "deadline went backwards: {ms} after {last}"
                );
                last = ms;
            }
            prop_assert!(queue.is_empty());
        }
    }
}
