//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's guard-returning (never
//! `Result`) API. Lock poisoning is deliberately ignored — parking_lot locks
//! do not poison, so recovering the guard from a `PoisonError` reproduces
//! the semantics the calling code was written against.

use std::sync::{self, PoisonError};

/// Mutual exclusion with parking_lot's `lock() -> guard` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex owning `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's `read()`/`write()` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock owning `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock stays usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
