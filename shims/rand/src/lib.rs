//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a small, self-contained implementation of the `rand 0.9` API subset it
//! actually uses: `SeedableRng::seed_from_u64`, `rngs::StdRng`, and the
//! [`Rng`] extension methods [`Rng::random`] / [`Rng::random_range`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic,
//! fast, and statistically solid for the simulation / property-testing
//! workloads in this repository. It makes no attempt to be reproducible
//! against the real `rand` crate's stream, only against itself.

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Sampling extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of a type with a canonical uniform distribution
    /// (`f64`/`f32` in `[0, 1)`, full range for integers, fair `bool`).
    fn random<T: Distributed>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a range (`low..high` or `low..=high`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (xoshiro256**).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Types with a canonical uniform distribution for [`Rng::random`].
pub trait Distributed: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Distributed for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distributed for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distributed for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! distributed_int {
    ($($t:ty),+) => {$(
        impl Distributed for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
distributed_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform u64 in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let raw = rng.next_u64();
        if raw <= zone {
            return raw % span;
        }
    }
}

macro_rules! range_int {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )+};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u: f64 = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a = rng.random_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.random_range(0usize..=4);
            assert!(b <= 4);
            let c = rng.random_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&c));
            let d = rng.random_range(5u64..6);
            assert_eq!(d, 5);
        }
    }

    #[test]
    fn unit_f64_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5usize..5);
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw(rng: &mut dyn super::RngCore) -> u64 {
            use super::Rng;
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let _ = draw(&mut rng);
    }
}
