//! Offline stand-in for `serde`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` to document
//! intent — all actual persistence is the hand-rolled text format in
//! `amf_core::persistence`, and no code calls serde's (de)serialization
//! machinery. This shim therefore provides marker traits and a no-op derive
//! so the annotations keep compiling without crates.io access.

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
