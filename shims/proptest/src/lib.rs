//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro over named-argument strategies, numeric range
//! strategies, tuple strategies, [`collection::vec`], [`bool::ANY`], and the
//! `prop_assert*` macros. Unlike real proptest there is no shrinking and no
//! persisted failure seeds: each test runs a fixed number of cases from a
//! generator seeded deterministically by the test's name, so failures
//! reproduce exactly across runs and thread counts.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of cases each property runs (fixed; override per call site by
/// looping in the test body if ever needed).
pub const CASES: usize = 64;

/// The RNG handed to strategies by the [`proptest!`] runner.
#[derive(Debug, Clone)]
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Deterministic runner for a named test.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy`.
///
/// Only generation is supported (no shrinking), so `Value` is produced
/// directly rather than through a value tree.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                use rand::Rng;
                runner.rng().random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                use rand::Rng;
                runner.rng().random_range(self.clone())
            }
        }
    )+};
}
range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRunner};

    /// Strategy for `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        lengths: core::ops::Range<usize>,
    }

    /// `vec(element, lengths)` generates vectors whose length is uniform in
    /// `lengths` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, lengths: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, lengths }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            let len = self.lengths.clone().generate(runner);
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    use super::{Strategy, TestRunner};

    /// Strategy yielding fair coin flips.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// A fair boolean.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, runner: &mut TestRunner) -> bool {
            use rand::Rng;
            runner.rng().random()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn property_name(x in 0.0..1.0f64, v in proptest::collection::vec(0u8..4, 0..16)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])+ fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])+
            fn $name() {
                let mut runner = $crate::TestRunner::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut runner);)+
                    $body
                }
            }
        )+
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_is_deterministic_per_name() {
        let mut a = crate::TestRunner::from_name("x");
        let mut b = crate::TestRunner::from_name("x");
        let s = 0.0..1.0f64;
        assert_eq!(s.generate(&mut a).to_bits(), s.generate(&mut b).to_bits());
    }

    proptest! {
        #[test]
        fn macro_generates_all_argument_kinds(
            x in -5.0..5.0f64,
            n in 0u8..4,
            pair in (0.0..1.0f64, 1usize..3),
            v in crate::collection::vec((crate::bool::ANY, 0u8..8), 0..20),
        ) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!(n < 4);
            prop_assert!(pair.0 < 1.0 && pair.1 >= 1);
            prop_assert!(v.len() < 20);
            for (_flag, k) in v {
                prop_assert!(k < 8);
            }
        }
    }
}
