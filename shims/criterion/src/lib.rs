//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! wall-clock measurement loop: a few warm-up iterations, then `sample_size`
//! timed samples whose mean/min are printed to stdout. There is no
//! statistical analysis, HTML report, or baseline comparison.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported like criterion's.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration measurement driver passed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Total time spent in measured iterations.
    elapsed: Duration,
    /// Number of measured iterations.
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }

    /// Times `routine` on a fresh input from `setup`, excluding setup time.
    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iters += 1;
    }

    /// Criterion 0.5 name for [`Bencher::iter_with_setup`] (batched input
    /// generation; the shim runs one input per sample).
    pub fn iter_batched<I, O, S, F>(&mut self, setup: S, routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.iter_with_setup(setup, routine);
    }
}

/// Batch sizing hint (accepted, ignored: one input per sample).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchSize {
    /// Small inputs.
    #[default]
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// Per-iteration inputs.
    PerIteration,
}

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`, like criterion renders it.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        Self {
            name: format!("{name}/{parameter}"),
        }
    }

    /// A bare parameter id (criterion's `from_parameter`).
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

fn run_case(label: &str, sample_size: usize, mut routine: impl FnMut(&mut Bencher)) {
    // Warm-up pass, then timed samples.
    let mut warm = Bencher::default();
    routine(&mut warm);
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    let mut iters = 0u64;
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher::default();
        routine(&mut b);
        let per_iter = if b.iters > 0 {
            b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX)
        } else {
            Duration::ZERO
        };
        best = best.min(per_iter);
        total += b.elapsed;
        iters += b.iters.max(1);
    }
    let mean = total / u32::try_from(iters.max(1)).unwrap_or(u32::MAX);
    println!("bench: {label:<48} mean {mean:>12.3?}   best {best:>12.3?}");
}

/// Group of related benchmark cases sharing settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per case.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Overrides the target measurement time (accepted, ignored: this
    /// harness is sample-count driven).
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Benchmarks a named case.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, f: F) {
        run_case(&format!("{}/{}", self.name, id), self.sample_size, f);
    }

    /// Benchmarks a case parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_case(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input);
        });
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Accepts command-line configuration (no-op in the shim).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Default number of timed samples per case.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks a named case.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_case(name, self.effective_sample_size(), f);
        self
    }

    /// Opens a named group of cases.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.effective_sample_size();
        BenchmarkGroup {
            name: name.to_string(),
            sample_size,
            _criterion: self,
        }
    }

    /// Final analysis hook (no-op).
    pub fn final_summary(&mut self) {}

    fn effective_sample_size(&self) -> usize {
        if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        }
    }
}

/// Declares a group function running each target against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("double", 21), &21u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("k", 4).to_string(), "k/4");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
