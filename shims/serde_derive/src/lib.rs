//! No-op `Serialize`/`Deserialize` derives for the offline serde stand-in.
//!
//! The derives accept the `#[serde(...)]` helper attribute and expand to
//! nothing: the workspace never calls serde's runtime machinery, it only
//! annotates types (see the `serde` shim's crate docs).

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
