//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel`'s MPMC semantics — cloneable, `Sync`
//! senders *and* receivers — on top of a `Mutex<VecDeque>` + `Condvar`.
//! Throughput is adequate for the workspace's channel-ingestion paths; the
//! lock-free performance of real crossbeam is not reproduced.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        available: Condvar,
        /// Signalled when a slot frees up in a bounded channel.
        space: Condvar,
        /// `None` = unbounded.
        capacity: Option<usize>,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; cloneable across threads.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half; cloneable across threads.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned when sending into a channel with no receivers.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error for [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Error for [`Receiver::recv`]: all senders dropped, queue drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and currently full; the message is
        /// returned to the caller.
        Full(T),
        /// All receivers dropped; the message is returned to the caller.
        Disconnected(T),
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            available: Condvar::new(),
            space: Condvar::new(),
            capacity,
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded MPMC channel holding at most `capacity` messages
    /// (at least 1 — the real crossbeam's zero-capacity rendezvous channel
    /// is not reproduced).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(capacity.max(1)))
    }

    impl<T> Sender<T> {
        /// Enqueues a message, blocking while a bounded channel is full;
        /// fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.queue.lock().expect("channel mutex");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.0.capacity {
                    Some(cap) if state.items.len() >= cap => {
                        state = self.0.space.wait(state).expect("channel mutex");
                    }
                    _ => break,
                }
            }
            state.items.push_back(value);
            drop(state);
            self.0.available.notify_one();
            Ok(())
        }

        /// Enqueues without blocking: on a full bounded channel the message
        /// comes straight back as [`TrySendError::Full`].
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.0.queue.lock().expect("channel mutex");
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.0.capacity {
                if state.items.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            state.items.push_back(value);
            drop(state);
            self.0.available.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().expect("channel mutex").senders += 1;
            Self(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.queue.lock().expect("channel mutex");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.0.available.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.0.queue.lock().expect("channel mutex");
            match state.items.pop_front() {
                Some(v) => {
                    drop(state);
                    self.0.space.notify_one();
                    Ok(v)
                }
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Dequeues, blocking until a message or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.queue.lock().expect("channel mutex");
            loop {
                if let Some(v) = state.items.pop_front() {
                    drop(state);
                    self.0.space.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.available.wait(state).expect("channel mutex");
            }
        }

        /// Non-blocking iterator over currently queued messages.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.0.queue.lock().expect("channel mutex").items.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().expect("channel mutex").receivers += 1;
            Self(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.0.queue.lock().expect("channel mutex");
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                // Wake senders blocked on a full bounded channel so they can
                // observe the disconnection.
                self.0.space.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};

    #[test]
    fn send_and_try_recv() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnection_is_observable() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        let (tx2, rx2) = unbounded::<u8>();
        drop(rx2);
        assert!(tx2.send(1).is_err());
    }

    #[test]
    fn cross_thread_fifo_per_sender() {
        let (tx, rx) = unbounded();
        let producer = std::thread::spawn(move || {
            for k in 0..100 {
                tx.send(k).unwrap();
            }
        });
        producer.join().unwrap();
        let got: Vec<i32> = rx.try_iter().collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_try_send_reports_full() {
        use super::channel::{bounded, TrySendError};
        let (tx, rx) = bounded(2);
        assert!(tx.try_send(1).is_ok());
        assert!(tx.try_send(2).is_ok());
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.try_recv(), Ok(1));
        assert!(tx.try_send(3).is_ok(), "recv frees a slot");
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn bounded_send_blocks_until_space() {
        use super::channel::bounded;
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let producer = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        producer.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn blocking_recv_wakes() {
        let (tx, rx) = unbounded();
        let consumer = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(7u8).unwrap();
        assert_eq!(consumer.join().unwrap(), 7);
    }
}
